//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]`, `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, and
//! `proptest::collection::vec`. Case generation is deterministic — the
//! per-test RNG is seeded from the test's name — so failures reproduce
//! across runs. No shrinking is performed: the failing inputs are
//! reported as-is via the panic message.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values for one bound variable.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { source: self, map }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length bound accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Common imports for property tests (`use proptest::prelude::*`).
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares deterministic property tests.
///
/// Supported grammar (the subset upstream `proptest!` accepts that this
/// workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0.0f64..1.0, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $pat = $crate::Strategy::generate(&($strategy), &mut rng); )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_from_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in 0.5f64..1.5, (a, b) in (0usize..4, 0usize..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
            prop_assert!(a < 4 && b < 4);
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }
    }
}
