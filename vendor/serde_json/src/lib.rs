//! Offline vendored stand-in for `serde_json`.
//!
//! Re-exports the [`Value`] data model from the stub `serde` crate and
//! provides the text layer: a JSON parser ([`from_str`]), writers
//! ([`to_string`], [`to_string_pretty`]), value conversions
//! ([`to_value`], [`from_value`]), and the [`json!`] macro.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

// Re-exported so the `json!` macro can reach the Serialize trait from any
// caller crate via `$crate`.
#[doc(hidden)]
pub use serde as _serde;

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json(&value)
}

/// Renders compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_json_string())
}

/// Renders pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_json_string_pretty())
}

/// Parses JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse::parse(input)?;
    T::from_json(&value)
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports `null`, `true`/`false`, literals, arbitrary expressions,
/// arrays, and objects with string-literal keys; object and array
/// positions may nest.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let __array = {
            let mut __array = ::std::vec::Vec::new();
            $crate::json_array_internal!(__array; $($tt)+);
            __array
        };
        $crate::Value::Array(__array)
    }};
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __object = $crate::Map::new();
        $crate::json_object_internal!(__object; $($tt)+);
        $crate::Value::Object(__object)
    }};
    ($other:expr) => { $crate::_serde::Serialize::to_json(&$other) };
}

/// Implementation detail of [`json!`]: folds `key: value` pairs into an
/// object binding.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($obj:ident; ) => {};
    ($obj:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_object_internal!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.insert(($key).to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.insert(($key).to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $obj.insert(($key).to_string(), $crate::json!($value));
        $crate::json_object_internal!($obj; $($($rest)*)?);
    };
}

/// Implementation detail of [`json!`]: folds elements into a vec binding.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($arr:ident; ) => {};
    ($arr:ident; null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $crate::json_array_internal!($arr; $($($rest)*)?);
    };
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_array_internal!($arr; $($($rest)*)?);
    };
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_array_internal!($arr; $($($rest)*)?);
    };
    ($arr:ident; $value:expr $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!($value));
        $crate::json_array_internal!($arr; $($($rest)*)?);
    };
}

mod parse {
    //! A small recursive-descent JSON parser.

    use super::{Error, Map, Value};
    use serde::value::Number;

    pub fn parse(input: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn bump(&mut self) -> Result<u8, Error> {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unexpected end of JSON input"))?;
            self.pos += 1;
            Ok(b)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            let got = self.bump()?;
            if got != b {
                return Err(Error::custom(format!(
                    "expected `{}`, found `{}` at byte {}",
                    b as char,
                    got as char,
                    self.pos - 1
                )));
            }
            Ok(())
        }

        fn keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                Ok(value)
            } else {
                Err(Error::custom(format!(
                    "invalid literal at byte {}",
                    self.pos
                )))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self
                .peek()
                .ok_or_else(|| Error::custom("unexpected end of JSON input"))?
            {
                b'n' => self.keyword("null", Value::Null),
                b't' => self.keyword("true", Value::Bool(true)),
                b'f' => self.keyword("false", Value::Bool(false)),
                b'"' => self.string().map(Value::String),
                b'[' => self.array(),
                b'{' => self.object(),
                b'-' | b'0'..=b'9' => self.number(),
                other => Err(Error::custom(format!(
                    "unexpected character `{}` at byte {}",
                    other as char, self.pos
                ))),
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.bump()? {
                    b',' => continue,
                    b']' => return Ok(Value::Array(items)),
                    other => {
                        return Err(Error::custom(format!(
                            "expected `,` or `]`, found `{}`",
                            other as char
                        )))
                    }
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut map = Map::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                map.insert(key, value);
                self.skip_ws();
                match self.bump()? {
                    b',' => continue,
                    b'}' => return Ok(Value::Object(map)),
                    other => {
                        return Err(Error::custom(format!(
                            "expected `,` or `}}`, found `{}`",
                            other as char
                        )))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let b = self.bump()?;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => match self.bump()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    },
                    _ => {
                        // Collect the full UTF-8 sequence starting here.
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        self.pos = start + len;
                        if self.pos > self.bytes.len() {
                            return Err(Error::custom("truncated UTF-8 in string"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                        out.push_str(s);
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, Error> {
            let mut code = 0u32;
            for _ in 0..4 {
                let b = self.bump()?;
                let digit = (b as char)
                    .to_digit(16)
                    .ok_or_else(|| Error::custom("invalid hex digit in \\u escape"))?;
                code = code * 16 + digit;
            }
            Ok(code)
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut is_float = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::custom("invalid number"))?;
            if is_float {
                let f: f64 = text
                    .parse()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?;
                Number::from_f64(f)
                    .map(Value::Number)
                    .ok_or_else(|| Error::custom("non-finite number"))
            } else if text.starts_with('-') {
                let i: i64 = text
                    .parse()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?;
                Ok(Value::Number(Number::from_i64(i)))
            } else {
                let u: u64 = text
                    .parse()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?;
                Ok(Value::Number(Number::from_u64(u)))
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<Value>("42").unwrap(), 42u64);
        assert_eq!(from_str::<Value>("-7").unwrap(), -7i64);
        assert_eq!(from_str::<Value>("2.5").unwrap(), 2.5f64);
        assert_eq!(from_str::<Value>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn parse_nested() {
        let v: Value = from_str(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["c"], "x");
    }

    #[test]
    fn text_roundtrip() {
        let v = json!({"name": "chain", "depth": 10, "p": 0.5, "tags": [1, 2]});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3), 3u64);
        let x = 7u64;
        assert_eq!(
            json!({"worker": x}),
            from_str::<Value>(r#"{"worker": 7}"#).unwrap()
        );
        assert_eq!(json!([1, 2, 3]).as_array().unwrap().len(), 3);
    }

    #[test]
    fn unicode_strings() {
        let v: Value = from_str(r#""café 😀 ü""#).unwrap();
        assert_eq!(v, "café 😀 ü");
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
