//! Offline vendored `serde_derive` stand-in.
//!
//! Generates impls of the stub `serde::Serialize` / `serde::Deserialize`
//! traits (`to_json`/`from_json` over `serde::Value`) for the shapes this
//! workspace uses: named-field structs, tuple structs (newtypes and
//! wider), unit structs, and enums with unit / tuple / struct variants.
//! The input is parsed directly from the token stream — no `syn`/`quote`,
//! since those cannot be fetched offline.
//!
//! Honored attributes: `#[serde(default)]` / `#[serde(default = "path")]`,
//! `#[serde(skip_serializing_if = "path")]`, `#[serde(with = "module")]`
//! on fields and `#[serde(rename_all = "...")]` on containers. `Option`
//! fields are implicitly optional on deserialization. Other serde
//! attributes are ignored; generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    rename_all: Option<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    is_option: bool,
    default: bool,
    /// Path of the function producing the default (`default = "path"`).
    default_path: Option<String>,
    skip_serializing_if: Option<String>,
    with: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    rename_all: Option<String>,
    default: bool,
    default_path: Option<String>,
    skip_serializing_if: Option<String>,
    with: Option<String>,
}

fn ident_of(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Strips the surrounding quotes from a string-literal token.
fn literal_str(tt: &TokenTree) -> Option<String> {
    let s = match tt {
        TokenTree::Literal(l) => l.to_string(),
        _ => return None,
    };
    let s = s.strip_prefix('"')?.strip_suffix('"')?;
    Some(s.to_string())
}

/// Consumes leading attributes at `i`, folding any `#[serde(...)]` metas
/// into the returned summary.
fn collect_attrs(tts: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *i < tts.len() && is_punct(&tts[*i], '#') {
        *i += 1;
        let TokenTree::Group(group) = &tts[*i] else {
            panic!("expected [...] after `#` in derive input");
        };
        *i += 1;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if inner.first().and_then(ident_of).as_deref() != Some("serde") {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        parse_serde_meta(args.stream(), &mut attrs);
    }
    attrs
}

/// Parses the inside of `#[serde(...)]`: comma-separated `name` or
/// `name = "value"` items. Unknown names are ignored.
fn parse_serde_meta(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tts.len() {
        let Some(name) = ident_of(&tts[i]) else {
            i += 1;
            continue;
        };
        i += 1;
        let mut value = None;
        if i < tts.len() && is_punct(&tts[i], '=') {
            i += 1;
            value = literal_str(&tts[i]);
            i += 1;
        }
        match (name.as_str(), value) {
            ("default", path) => {
                attrs.default = true;
                attrs.default_path = path;
            }
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            ("with", Some(v)) => attrs.with = Some(v),
            _ => {}
        }
        // Skip to the comma (or end) separating meta items.
        while i < tts.len() && !is_punct(&tts[i], ',') {
            i += 1;
        }
        if i < tts.len() {
            i += 1;
        }
    }
}

fn skip_visibility(tts: &[TokenTree], i: &mut usize) {
    if *i < tts.len() && ident_of(&tts[*i]).as_deref() == Some("pub") {
        *i += 1;
        if *i < tts.len() {
            if let TokenTree::Group(g) = &tts[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Consumes type tokens until a top-level comma, returning whether the
/// type's head is `Option`.
fn skip_type(tts: &[TokenTree], i: &mut usize) -> bool {
    let is_option = ident_of(&tts[*i]).as_deref() == Some("Option");
    let mut angle_depth = 0i32;
    while *i < tts.len() {
        match &tts[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        *i += 1;
    }
    is_option
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tts.len() {
        let attrs = collect_attrs(&tts, &mut i);
        skip_visibility(&tts, &mut i);
        let name = ident_of(&tts[i]).expect("field name");
        i += 1;
        assert!(is_punct(&tts[i], ':'), "expected `:` after field name");
        i += 1;
        let is_option = skip_type(&tts, &mut i);
        // Consume the trailing comma, if present.
        if i < tts.len() && is_punct(&tts[i], ',') {
            i += 1;
        }
        fields.push(Field {
            name,
            is_option,
            default: attrs.default,
            default_path: attrs.default_path,
            skip_serializing_if: attrs.skip_serializing_if,
            with: attrs.with,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    if tts.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tt in &tts {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if is_punct(tts.last().unwrap(), ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tts.len() {
        let _attrs = collect_attrs(&tts, &mut i);
        let name = ident_of(&tts[i]).expect("variant name");
        i += 1;
        let kind = if i < tts.len() {
            match &tts[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    i += 1;
                    VariantKind::Named(fields)
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    i += 1;
                    VariantKind::Tuple(n)
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        // Skip an explicit discriminant and advance past the separator.
        while i < tts.len() && !is_punct(&tts[i], ',') {
            i += 1;
        }
        if i < tts.len() {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_attrs = collect_attrs(&tts, &mut i);
    skip_visibility(&tts, &mut i);
    let keyword = ident_of(&tts[i]).expect("struct/enum keyword");
    i += 1;
    let name = ident_of(&tts[i]).expect("type name");
    i += 1;
    if i < tts.len() && is_punct(&tts[i], '<') {
        panic!("serde derive stub does not support generic types ({name})");
    }
    let kind = match keyword.as_str() {
        "struct" => {
            if i >= tts.len() || is_punct(&tts[i], ';') {
                Kind::UnitStruct
            } else {
                match &tts[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        Kind::NamedStruct(parse_named_fields(g.stream()))
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        Kind::TupleStruct(count_tuple_fields(g.stream()))
                    }
                    other => panic!("unexpected token in struct body: {other}"),
                }
            }
        }
        "enum" => {
            let TokenTree::Group(g) = &tts[i] else {
                panic!("expected enum body");
            };
            Kind::Enum(parse_variants(g.stream()))
        }
        other => panic!("serde derive stub supports struct/enum, found `{other}`"),
    };
    Item {
        name,
        rename_all: container_attrs.rename_all,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn apply_rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => camel_to_delimited(name, '_'),
        Some("kebab-case") => camel_to_delimited(name, '-'),
        Some("SCREAMING_SNAKE_CASE") => camel_to_delimited(name, '_').to_uppercase(),
        _ => name.to_string(),
    }
}

fn camel_to_delimited(name: &str, sep: char) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn field_ser_expr(field: &Field, access: &str) -> String {
    match &field.with {
        Some(module) => format!("{module}::to_json(&{access})"),
        None => format!("::serde::Serialize::to_json(&{access})"),
    }
}

fn field_de_expr(field: &Field, value: &str) -> String {
    match &field.with {
        Some(module) => format!("{module}::from_json({value})?"),
        None => format!("::serde::Deserialize::from_json({value})?"),
    }
}

fn gen_named_ser_body(fields: &[Field], self_prefix: &str, map_var: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let access = format!("{}{}", self_prefix, f.name);
        let insert = format!(
            "{map_var}.insert(\"{key}\".to_string(), {expr});\n",
            key = f.name,
            expr = field_ser_expr(f, &access)
        );
        if let Some(pred) = &f.skip_serializing_if {
            out.push_str(&format!("if !{pred}(&{access}) {{ {insert} }}\n"));
        } else {
            out.push_str(&insert);
        }
    }
    out
}

fn gen_named_de_fields(fields: &[Field], obj_var: &str, container: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let on_missing = if let Some(path) = &f.default_path {
            format!("{path}()")
        } else if f.default || f.is_option {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::missing_field(\"{}\", \"{container}\"))",
                f.name
            )
        };
        out.push_str(&format!(
            "{name}: match {obj_var}.get(\"{name}\") {{\n\
             ::std::option::Option::Some(__field_value) => {expr},\n\
             ::std::option::Option::None => {on_missing},\n\
             }},\n",
            name = f.name,
            expr = field_de_expr(f, "__field_value")
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            format!(
                "let mut __map = ::serde::Map::new();\n{}\n::serde::Value::Object(__map)",
                gen_named_ser_body(fields, "self.", "__map")
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = apply_rename(&v.name, item.rename_all.as_deref());
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::String(\"{key}\".to_string()),\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(\"{key}\".to_string(), {inner});\n\
                             ::serde::Value::Object(__map)\n\
                             }},\n",
                            v = v.name,
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n\
                             {inserts}\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(\"{key}\".to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__map)\n\
                             }},\n",
                            v = v.name,
                            binds = binders.join(", "),
                            inserts = gen_named_ser_body(fields, "*", "__inner")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            format!(
                "let __obj = __value.as_object().ok_or_else(|| ::serde::Error::expected(\"object for {name}\", __value))?;\n\
                 ::std::result::Result::Ok({name} {{\n{fields}\n}})",
                fields = gen_named_de_fields(fields, "__obj", name)
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(__value)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| ::serde::Error::expected(\"array for {name}\", __value))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_variants: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let payload_variants: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();

            let mut out = String::new();
            if !unit_variants.is_empty() {
                let mut arms = String::new();
                for v in &unit_variants {
                    let key = apply_rename(&v.name, item.rename_all.as_deref());
                    arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
                out.push_str(&format!(
                    "if let ::std::option::Option::Some(__s) = __value.as_str() {{\n\
                     return match __s {{\n{arms}\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{__s}}` of {name}\"))),\n\
                     }};\n\
                     }}\n"
                ));
            }
            if payload_variants.is_empty() {
                out.push_str(&format!(
                    "::std::result::Result::Err(::serde::Error::expected(\"variant string for {name}\", __value))"
                ));
            } else {
                let mut arms = String::new();
                for v in &payload_variants {
                    let key = apply_rename(&v.name, item.rename_all.as_deref());
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Tuple(1) => {
                            arms.push_str(&format!(
                                "\"{key}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_json(__inner)?)),\n",
                                v = v.name
                            ));
                        }
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_json(&__items[{i}])?"))
                                .collect();
                            arms.push_str(&format!(
                                "\"{key}\" => {{\n\
                                 let __items = __inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array variant payload\", __inner))?;\n\
                                 if __items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for variant {key}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{v}({items}))\n\
                                 }},\n",
                                v = v.name,
                                items = items.join(", ")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            arms.push_str(&format!(
                                "\"{key}\" => {{\n\
                                 let __vobj = __inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object variant payload\", __inner))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{\n{fields}\n}})\n\
                                 }},\n",
                                v = v.name,
                                fields = gen_named_de_fields(fields, "__vobj", &v.name)
                            ));
                        }
                    }
                }
                out.push_str(&format!(
                    "let __obj = __value.as_object().ok_or_else(|| ::serde::Error::expected(\"variant for {name}\", __value))?;\n\
                     let (__k, __inner) = __obj.iter().next().ok_or_else(|| ::serde::Error::custom(\"empty variant object for {name}\"))?;\n\
                     match __k.as_str() {{\n{arms}\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{__k}}` of {name}\"))),\n\
                     }}"
                ));
            }
            out
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_json(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Derives the stub `serde::Serialize` (`to_json`) impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

/// Derives the stub `serde::Deserialize` (`from_json`) impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}
