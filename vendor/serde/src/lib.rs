//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! a self-contained serialization layer with serde-compatible *spelling*
//! (`use serde::{Serialize, Deserialize}` plus `#[derive(...)]` via the
//! companion `serde_derive` stub) over a much simpler data model: every
//! type serializes directly to the JSON [`Value`] tree defined here.
//!
//! The contract differs from upstream serde:
//!
//! - [`Serialize::to_json`] returns a [`Value`];
//! - [`Deserialize::from_json`] reads from a [`Value`];
//! - `#[serde(with = "module")]` expects the module to provide
//!   `to_json(&T) -> Value` and `from_json(&Value) -> Result<T, Error>`.
//!
//! Supported field attributes: `default`, `skip_serializing_if = "path"`,
//! `with = "module"`, and the container attribute `rename_all`
//! (`lowercase`/`snake_case`/`UPPERCASE`/`kebab-case`). `Option` fields
//! are implicitly optional, as with upstream serde.

mod impls;
pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Serialization to the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value tree.
    fn from_json(value: &Value) -> Result<Self, Error>;
}

/// Error produced by deserialization (and JSON parsing upstream in
/// `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Builds a type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        Error {
            message: format!("expected {what}, found {kind}"),
        }
    }

    /// Builds a missing-field error.
    pub fn missing_field(field: &str, container: &str) -> Self {
        Error {
            message: format!("missing field `{field}` in {container}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
