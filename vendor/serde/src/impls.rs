//! `Serialize`/`Deserialize` implementations for std types.

use crate::value::{Number, Value};
use crate::{Deserialize, Error, Serialize};
use std::collections::{BTreeMap, HashMap};

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

macro_rules! ser_via_from {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

ser_via_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Map keys that can be represented as JSON object keys.
///
/// Mirrors `serde_json`'s behavior of stringifying integer keys, and
/// extends it with `(usize, usize)` index pairs (encoded `"i,j"`), which
/// this workspace uses for edge-probability tables.
pub trait MapKey: Sized {
    /// The JSON object key for this value.
    fn to_map_key(&self) -> String;
    /// Parses the value back from a JSON object key.
    fn from_map_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_map_key(&self) -> String {
        self.clone()
    }
    fn from_map_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_map_key(&self) -> String {
                self.to_string()
            }
            fn from_map_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!("invalid {} map key `{key}`", stringify!($t)))
                })
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for (usize, usize) {
    fn to_map_key(&self) -> String {
        format!("{},{}", self.0, self.1)
    }
    fn from_map_key(key: &str) -> Result<Self, Error> {
        let (a, b) = key
            .split_once(',')
            .ok_or_else(|| Error::custom(format!("invalid index-pair map key `{key}`")))?;
        Ok((usize::from_map_key(a)?, usize::from_map_key(b)?))
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Value {
        // BTreeMap target: key order is deterministic regardless of the
        // hash map's iteration order.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_map_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_map_key(), v.to_json()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::expected(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::expected(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json(value: &Value) -> Result<Self, Error> {
        // Null stands in for non-finite floats, which JSON cannot carry.
        if value.is_null() {
            return Ok(f64::NAN);
        }
        value.as_f64().ok_or_else(|| Error::expected("f64", value))
    }
}

impl Deserialize for f32 {
    fn from_json(value: &Value) -> Result<Self, Error> {
        f64::from_json(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

impl Deserialize for String {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Deserialize for char {
    fn from_json(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Deserialize for () {
    fn from_json(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(Error::expected("null", value))
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        T::from_json(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

fn expect_tuple(value: &Value, len: usize) -> Result<&[Value], Error> {
    let items = value
        .as_array()
        .ok_or_else(|| Error::expected("tuple array", value))?;
    if items.len() != len {
        return Err(Error::custom(format!(
            "expected array of length {len}, found {}",
            items.len()
        )));
    }
    Ok(items)
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(value: &Value) -> Result<Self, Error> {
        let items = expect_tuple(value, 2)?;
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json(value: &Value) -> Result<Self, Error> {
        let items = expect_tuple(value, 3)?;
        Ok((
            A::from_json(&items[0])?,
            B::from_json(&items[1])?,
            C::from_json(&items[2])?,
        ))
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_map_key(k)?, V::from_json(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_map_key(k)?, V::from_json(v)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_json(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for Number {
    fn to_json(&self) -> Value {
        Value::Number(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u64::from_json(&42u64.to_json()).unwrap(), 42);
        assert_eq!(i64::from_json(&(-5i64).to_json()).unwrap(), -5);
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert_eq!(String::from_json(&"hi".to_json()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_json(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&7u32.to_json()).unwrap(), Some(7));
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(u64, String)>::from_json(&v.to_json()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert("k".to_string(), 3u32);
        let back = HashMap::<String, u32>::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u64::from_json(&Value::String("x".into())).is_err());
        assert!(bool::from_json(&Value::Null).is_err());
        assert!(<(u32, u32)>::from_json(&vec![1u32].to_json()).is_err());
    }
}
