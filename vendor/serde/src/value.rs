//! The JSON-like value tree serving as this stub's serde data model.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. A `BTreeMap` keeps key order deterministic,
/// which the workspace relies on for byte-identical rendered output.
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub struct Number(pub(crate) N);

#[derive(Clone, Copy, Debug)]
pub(crate) enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// Builds from an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number(N::U(v))
    }

    /// Builds from a signed integer (normalized to unsigned when possible).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number(N::U(v as u64))
        } else {
            Number(N::I(v))
        }
    }

    /// Builds from a float. Returns `None` for non-finite values, which
    /// JSON cannot represent.
    pub fn from_f64(v: f64) -> Option<Self> {
        v.is_finite().then_some(Number(N::F(v)))
    }

    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::U(v) => v as f64,
            N::I(v) => v as f64,
            N::F(v) => v,
        })
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(v) => i64::try_from(v).ok(),
            N::I(v) => Some(v),
            N::F(_) => None,
        }
    }

    /// The value as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(v) => Some(v),
            N::I(v) => u64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// Whether this number was parsed/stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (N::F(a), N::F(b)) => a == b,
            (N::F(_), _) | (_, N::F(_)) => false,
            (a, b) => int_of(a) == int_of(b),
        }
    }
}

fn int_of(n: N) -> i128 {
    match n {
        N::U(v) => i128::from(v),
        N::I(v) => i128::from(v),
        N::F(_) => unreachable!("int_of called on float"),
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(v) => write!(f, "{v}"),
            N::I(v) => write!(f, "{v}"),
            N::F(v) => {
                // Keep a decimal point on integral floats so the value
                // parses back as a float ("2.0", not "2").
                if v.fract() == 0.0 && v.abs() < 1e16 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value: the in-memory serialization target for the whole
/// workspace (mirrors `serde_json::Value`).
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (deterministically ordered).
    Object(Map<String, Value>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Numeric view as `i64` (integral numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Numeric view as `u64` (integral, non-negative numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Borrows the string, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably borrows the array, if this is an `Array`.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutably borrows the object, if this is an `Object`.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }

    /// Mutable lookup of `key` if this is an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(o) => o.get_mut(key),
            _ => None,
        }
    }

    /// Renders compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Renders pretty-printed JSON text (two-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, &mut out, 0);
        out
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Indexes into an object; yields `Null` for missing keys or
    /// non-object values (matching `serde_json` semantics).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Indexes into an array; yields `Null` when out of bounds or not an
    /// array.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_json_str(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_json_str(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                escape_json_str(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number(N::U(u64::from(v)))) }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from_i64(i64::from(v))) }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64);
from_signed!(i8, i16, i32, i64);

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number(N::U(v as u64)))
    }
}

impl From<isize> for Value {
    fn from(v: isize) -> Value {
        Value::Number(Number::from_i64(v as i64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match i64::try_from(*other) {
                    Ok(v) => self.as_i64() == Some(v),
                    Err(_) => self.as_u64() == Some(*other as u64),
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! eq_float {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(f64::from(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_float!(f32, f64);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}
