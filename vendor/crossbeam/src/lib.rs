//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset used by this workspace is provided
//! (`unbounded`, `bounded`, `Sender`, `Receiver`, `try_recv`,
//! `recv_timeout`), implemented over `std::sync::mpsc`.

pub mod channel {
    //! MPMC-flavored channel API over `std::sync::mpsc`.
    //!
    //! The workspace only ever uses single-consumer patterns, so an mpsc
    //! backing is behaviorally equivalent for our purposes.

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned when the receiving side has disconnected.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out waiting for a message.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error for [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if a bounded channel is full. Returns
        /// the value back if the receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel with capacity `cap` (sends block when full).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_recv_timeout() {
            let (tx, rx) = bounded(1);
            tx.send("x").unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok("x"));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
