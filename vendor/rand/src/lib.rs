//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation of the
//! subset of the `rand 0.8` API it actually uses:
//!
//! - [`rngs::SmallRng`] (an xoshiro256++ generator seeded via SplitMix64)
//! - [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait with
//!   `gen::<T>()` and `gen_range(range)` for the integer/float ranges the
//!   simulator draws from.
//!
//! Streams are **not** bit-compatible with upstream `rand`; the workspace
//! only requires determinism for a fixed build, which this provides.

/// Core trait for generators: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the `rand` trait of the same name.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the `Standard` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly (`SampleRange` upstream).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw unbiased for any bound.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the generator's native stream.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Not bit-compatible with upstream `rand`'s `SmallRng`; seeded via
    /// SplitMix64 like the reference xoshiro implementation.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_same_seed() {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = SmallRng::seed_from_u64(1);
            let mut b = SmallRng::seed_from_u64(2);
            assert_ne!(
                (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn unit_float_in_range() {
            let mut r = SmallRng::seed_from_u64(7);
            for _ in 0..1000 {
                let f: f64 = r.gen();
                assert!((0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut r = SmallRng::seed_from_u64(9);
            for _ in 0..1000 {
                let v = r.gen_range(10u64..20);
                assert!((10..20).contains(&v));
                let w = r.gen_range(5u64..=5);
                assert_eq!(w, 5);
            }
        }
    }
}
