//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple calibrated timing loop
//! instead of criterion's full statistical machinery. Results are
//! printed as `<name> ... time: <mean> per iter (<iters> iters)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark. Small enough to keep `cargo bench`
/// quick, large enough for a stable mean on micro-benchmarks.
const TARGET_MEASURE: Duration = Duration::from_millis(200);
const TARGET_WARMUP: Duration = Duration::from_millis(50);

/// Identifies a benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Types accepted wherever a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean wall time per iteration from the measurement phase.
    last_mean: Duration,
    /// Iterations actually measured.
    last_iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            last_mean: Duration::ZERO,
            last_iters: 0,
        }
    }

    /// Runs `routine` repeatedly: a short warmup to calibrate the
    /// per-iteration cost, then a measurement phase sized to the target
    /// budget. The mean per-iteration time is recorded for reporting.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: run until the warmup budget elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < TARGET_WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((TARGET_MEASURE.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_mean = elapsed / u32::try_from(iters.min(u64::from(u32::MAX))).unwrap_or(1);
        self.last_iters = iters;
    }
}

fn report(name: &str, bencher: &Bencher) {
    println!(
        "{name:<50} time: {:>12?} per iter ({} iters)",
        bencher.last_mean, bencher.last_iters
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into_id()), &b);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.into_id()), &b);
        self
    }

    /// Finishes the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&id.into_id(), &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Prints the final summary (no-op; provided for API parity).
    pub fn final_summary(&mut self) {}
}

/// Opaque-to-the-optimizer identity, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}
