//! Per-request execution timelines.
//!
//! The platform records, for every request, the sequence of orchestration
//! events that Figure 10 of the paper narrates — planning-driven
//! deployments, function invocations, dispatches into workers, completions
//! and prediction misses — as a [`Trace`]. Traces power debugging, the
//! CLI's `--trace` output, and assertions about *when* things happened
//! rather than only aggregate latencies.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use xanadu_simcore::{SimDuration, SimTime};

/// One traced orchestration event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// The workflow trigger arrived.
    Triggered,
    /// A sandbox deployment started for `function` (speculation/JIT plan
    /// or on-demand).
    DeployStarted {
        /// The function being provisioned.
        function: String,
        /// Whether a waiting request forced this provision.
        on_demand: bool,
    },
    /// The orchestrator invoked `function` (its dependencies were met).
    Invoked {
        /// The invoked function.
        function: String,
    },
    /// `function` began executing in a worker.
    ExecStarted {
        /// The executing function.
        function: String,
        /// Whether its sandbox was warm at invocation.
        warm: bool,
    },
    /// `function` finished executing.
    ExecEnded {
        /// The finished function.
        function: String,
    },
    /// `function` was invoked but absent from the speculation plan.
    PredictionMiss {
        /// The mispredicted function.
        function: String,
    },
    /// The request completed.
    Completed,
}

/// A timestamped trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The ordered event timeline of one request.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Records an event (events arrive in simulation order).
    pub(crate) fn record(&mut self, at: SimTime, kind: TraceEventKind) {
        self.events.push(TraceEvent { at, kind });
    }

    /// The events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The execution interval of `function` (exec start → exec end), if it
    /// ran to completion.
    pub fn exec_interval(&self, function: &str) -> Option<(SimTime, SimTime)> {
        let start = self.events.iter().find_map(|e| match &e.kind {
            TraceEventKind::ExecStarted { function: f, .. } if f == function => Some(e.at),
            _ => None,
        })?;
        let end = self.events.iter().find_map(|e| match &e.kind {
            TraceEventKind::ExecEnded { function: f } if f == function => Some(e.at),
            _ => None,
        })?;
        Some((start, end))
    }

    /// Renders the trace as an ASCII Gantt chart: one row per function,
    /// bars for provisioning-to-exec (`░`) and execution (`█`), `width`
    /// columns spanning trigger to completion.
    ///
    /// Returns an empty string for traces without a `Triggered` event.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.clamp(20, 200);
        let Some(start) = self.events.first().map(|e| e.at) else {
            return String::new();
        };
        let end = self.events.last().map(|e| e.at).unwrap_or(start);
        let span = end.saturating_since(start).as_millis_f64().max(1.0);
        let col = |t: SimTime| -> usize {
            let frac = t.saturating_since(start).as_millis_f64() / span;
            ((frac * (width - 1) as f64).round() as usize).min(width - 1)
        };

        // Collect per-function milestones.
        let mut functions: Vec<String> = Vec::new();
        for e in &self.events {
            let name = match &e.kind {
                TraceEventKind::DeployStarted { function, .. }
                | TraceEventKind::Invoked { function }
                | TraceEventKind::ExecStarted { function, .. }
                | TraceEventKind::ExecEnded { function }
                | TraceEventKind::PredictionMiss { function } => Some(function),
                _ => None,
            };
            if let Some(n) = name {
                if !functions.contains(n) {
                    functions.push(n.clone());
                }
            }
        }
        let name_width = functions.iter().map(String::len).max().unwrap_or(4).max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>name_width$} |{}| {:.1}s total",
            "",
            "-".repeat(width),
            span / 1000.0
        );
        for f in &functions {
            let deploy = self.events.iter().find_map(|e| match &e.kind {
                TraceEventKind::DeployStarted { function, .. } if function == f => Some(e.at),
                _ => None,
            });
            let exec = self.exec_interval(f);
            let mut row = vec![' '; width];
            if let (Some(d), Some((xs, _))) = (deploy, exec) {
                for cell in row.iter_mut().take(col(xs)).skip(col(d)) {
                    *cell = '░';
                }
            }
            if let Some((xs, xe)) = exec {
                for cell in row.iter_mut().take(col(xe) + 1).skip(col(xs)) {
                    *cell = '█';
                }
            }
            let missed = self.events.iter().any(
                |e| matches!(&e.kind, TraceEventKind::PredictionMiss { function } if function == f),
            );
            let marker = if missed { " (miss)" } else { "" };
            let _ = writeln!(
                out,
                "{f:>name_width$} |{}|{marker}",
                row.iter().collect::<String>()
            );
        }
        out
    }

    /// Renders the raw event list (`t+…  event`), one per line.
    pub fn render_events(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let desc = match &e.kind {
                TraceEventKind::Triggered => "triggered".to_string(),
                TraceEventKind::DeployStarted {
                    function,
                    on_demand,
                } => format!(
                    "deploy {} ({})",
                    function,
                    if *on_demand { "on-demand" } else { "planned" }
                ),
                TraceEventKind::Invoked { function } => format!("invoke {function}"),
                TraceEventKind::ExecStarted { function, warm } => format!(
                    "exec-start {} ({})",
                    function,
                    if *warm { "warm" } else { "cold" }
                ),
                TraceEventKind::ExecEnded { function } => format!("exec-end {function}"),
                TraceEventKind::PredictionMiss { function } => {
                    format!("prediction-miss {function}")
                }
                TraceEventKind::Completed => "completed".to_string(),
            };
            let _ = writeln!(out, "{}  {desc}", e.at);
        }
        out
    }

    /// Total time `function` spent between its (planned or on-demand)
    /// deployment start and its execution start — the provisioning + idle
    /// window the cost model charges.
    pub fn prestart_window(&self, function: &str) -> Option<SimDuration> {
        let deploy = self.events.iter().find_map(|e| match &e.kind {
            TraceEventKind::DeployStarted { function: f, .. } if f == function => Some(e.at),
            _ => None,
        })?;
        let (exec_start, _) = self.exec_interval(function)?;
        Some(exec_start.saturating_since(deploy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::default();
        let ms = SimTime::from_millis;
        t.record(ms(0), TraceEventKind::Triggered);
        t.record(
            ms(0),
            TraceEventKind::DeployStarted {
                function: "a".into(),
                on_demand: false,
            },
        );
        t.record(
            ms(20),
            TraceEventKind::Invoked {
                function: "a".into(),
            },
        );
        t.record(
            ms(3000),
            TraceEventKind::ExecStarted {
                function: "a".into(),
                warm: false,
            },
        );
        t.record(
            ms(3500),
            TraceEventKind::ExecEnded {
                function: "a".into(),
            },
        );
        t.record(
            ms(3520),
            TraceEventKind::PredictionMiss {
                function: "b".into(),
            },
        );
        t.record(
            ms(3520),
            TraceEventKind::Invoked {
                function: "b".into(),
            },
        );
        t.record(
            ms(3520),
            TraceEventKind::DeployStarted {
                function: "b".into(),
                on_demand: true,
            },
        );
        t.record(
            ms(6600),
            TraceEventKind::ExecStarted {
                function: "b".into(),
                warm: false,
            },
        );
        t.record(
            ms(7100),
            TraceEventKind::ExecEnded {
                function: "b".into(),
            },
        );
        t.record(ms(7100), TraceEventKind::Completed);
        t
    }

    #[test]
    fn intervals_and_windows() {
        let t = sample();
        assert_eq!(
            t.exec_interval("a"),
            Some((SimTime::from_millis(3000), SimTime::from_millis(3500)))
        );
        assert_eq!(t.exec_interval("ghost"), None);
        assert_eq!(t.prestart_window("a"), Some(SimDuration::from_millis(3000)));
        assert_eq!(t.prestart_window("b"), Some(SimDuration::from_millis(3080)));
        assert_eq!(t.len(), 11);
        assert!(!t.is_empty());
    }

    #[test]
    fn gantt_renders_rows_and_miss_markers() {
        let g = sample().render_gantt(60);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per function: {g}");
        assert!(lines[1].trim_start().starts_with('a'));
        assert!(lines[2].contains("(miss)"));
        assert!(g.contains('█'), "execution bars present");
        assert!(g.contains('░'), "provisioning bars present");
        // Execution of `b` ends at the right edge (char positions — the
        // block glyphs are multi-byte).
        let b_row: Vec<char> = lines[2].chars().collect();
        let bar_end = b_row.iter().rposition(|&c| c == '█').unwrap();
        let bar_close = b_row.iter().rposition(|&c| c == '|').unwrap();
        assert!(
            bar_close - bar_end <= 1,
            "b runs to completion: {}",
            lines[2]
        );
    }

    #[test]
    fn event_log_renders_each_event() {
        let log = sample().render_events();
        assert!(log.contains("triggered"));
        assert!(log.contains("deploy a (planned)"));
        assert!(log.contains("deploy b (on-demand)"));
        assert!(log.contains("exec-start a (cold)"));
        assert!(log.contains("prediction-miss b"));
        assert!(log.contains("completed"));
        assert_eq!(log.lines().count(), 11);
    }

    #[test]
    fn empty_trace_renders_empty() {
        let t = Trace::default();
        assert!(t.render_gantt(60).is_empty());
        assert!(t.render_events().is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
