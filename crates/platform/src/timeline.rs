//! Per-request execution timelines.
//!
//! The platform records, for every request, the sequence of orchestration
//! events that Figure 10 of the paper narrates — planning-driven
//! deployments, function invocations, dispatches into workers, completions
//! and prediction misses — as a [`Trace`]. Traces power debugging, the
//! CLI's `--trace` output, and assertions about *when* things happened
//! rather than only aggregate latencies.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use xanadu_simcore::{SimDuration, SimTime};

/// One traced orchestration event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// The workflow trigger arrived.
    Triggered,
    /// A sandbox deployment started for `function` (speculation/JIT plan
    /// or on-demand).
    DeployStarted {
        /// The function being provisioned.
        function: String,
        /// Whether a waiting request forced this provision.
        on_demand: bool,
        /// When the sandbox is scheduled to become warm. The analysis tier
        /// derives JIT timing quality (slack/lateness versus the
        /// invocation) from this; crashes can void the schedule, in which
        /// case the replacement provision records its own event.
        ready_at: SimTime,
    },
    /// The orchestrator invoked `function` (its dependencies were met).
    Invoked {
        /// The invoked function.
        function: String,
    },
    /// `function` began executing in a worker.
    ExecStarted {
        /// The executing function.
        function: String,
        /// Whether its sandbox was warm at invocation.
        warm: bool,
    },
    /// `function` finished executing.
    ExecEnded {
        /// The finished function.
        function: String,
    },
    /// `function` was invoked but absent from the speculation plan.
    PredictionMiss {
        /// The mispredicted function.
        function: String,
    },
    /// The speculation engine produced this request's deployment plan
    /// (MLP inference + JIT timeline slots).
    PlanComputed {
        /// Number of functions the plan schedules for pre-deployment.
        planned: u64,
    },
    /// The worker executing `function` crashed (fault injection).
    WorkerCrashed {
        /// The function whose worker died.
        function: String,
    },
    /// The invocation of `function` exceeded the per-invocation timeout.
    TimedOut {
        /// The timed-out function.
        function: String,
        /// Fault attempt count at the time of the timeout.
        attempt: u64,
    },
    /// A crashed or timed-out invocation was rescheduled after backoff.
    Retried {
        /// The function being retried.
        function: String,
        /// Retry attempt number (1 = first retry).
        attempt: u64,
    },
    /// A speculative pre-deployment of `function` failed during startup
    /// (no request was waiting on it yet).
    DeployFailed {
        /// The function whose pre-deployment died.
        function: String,
        /// Fault attempt count after this failure.
        attempt: u64,
    },
    /// The request completed.
    Completed,
}

/// A timestamped trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The ordered event timeline of one request.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Records an event (events arrive in simulation order).
    pub(crate) fn record(&mut self, at: SimTime, kind: TraceEventKind) {
        self.events.push(TraceEvent { at, kind });
    }

    /// The events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The execution interval of `function` (exec start → exec end), if it
    /// ran to completion.
    pub fn exec_interval(&self, function: &str) -> Option<(SimTime, SimTime)> {
        let start = self.events.iter().find_map(|e| match &e.kind {
            TraceEventKind::ExecStarted { function: f, .. } if f == function => Some(e.at),
            _ => None,
        })?;
        let end = self.events.iter().find_map(|e| match &e.kind {
            TraceEventKind::ExecEnded { function: f } if f == function => Some(e.at),
            _ => None,
        })?;
        Some((start, end))
    }

    /// Renders the trace as an ASCII Gantt chart: one row per function,
    /// bars for provisioning-to-exec (`░`) and execution (`█`), `width`
    /// columns spanning trigger to completion.
    ///
    /// Returns an empty string for traces without a `Triggered` event.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.clamp(20, 200);
        let Some(start) = self.events.first().map(|e| e.at) else {
            return String::new();
        };
        let end = self.events.last().map(|e| e.at).unwrap_or(start);
        let span = end.saturating_since(start).as_millis_f64().max(1.0);
        let col = |t: SimTime| -> usize {
            let frac = t.saturating_since(start).as_millis_f64() / span;
            ((frac * (width - 1) as f64).round() as usize).min(width - 1)
        };

        // Collect per-function milestones.
        let mut functions: Vec<String> = Vec::new();
        for e in &self.events {
            let name = match &e.kind {
                TraceEventKind::DeployStarted { function, .. }
                | TraceEventKind::Invoked { function }
                | TraceEventKind::ExecStarted { function, .. }
                | TraceEventKind::ExecEnded { function }
                | TraceEventKind::PredictionMiss { function } => Some(function),
                _ => None,
            };
            if let Some(n) = name {
                if !functions.contains(n) {
                    functions.push(n.clone());
                }
            }
        }
        let name_width = functions.iter().map(String::len).max().unwrap_or(4).max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>name_width$} |{}| {:.1}s total",
            "",
            "-".repeat(width),
            span / 1000.0
        );
        for f in &functions {
            let deploy = self.events.iter().find_map(|e| match &e.kind {
                TraceEventKind::DeployStarted { function, .. } if function == f => Some(e.at),
                _ => None,
            });
            let exec = self.exec_interval(f);
            let mut row = vec![' '; width];
            if let (Some(d), Some((xs, _))) = (deploy, exec) {
                for cell in row.iter_mut().take(col(xs)).skip(col(d)) {
                    *cell = '░';
                }
            }
            if let Some((xs, xe)) = exec {
                for cell in row.iter_mut().take(col(xe) + 1).skip(col(xs)) {
                    *cell = '█';
                }
            }
            let missed = self.events.iter().any(
                |e| matches!(&e.kind, TraceEventKind::PredictionMiss { function } if function == f),
            );
            let marker = if missed { " (miss)" } else { "" };
            let _ = writeln!(
                out,
                "{f:>name_width$} |{}|{marker}",
                row.iter().collect::<String>()
            );
        }
        out
    }

    /// Renders the raw event list (`t+…  event`), one per line.
    pub fn render_events(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let desc = match &e.kind {
                TraceEventKind::Triggered => "triggered".to_string(),
                TraceEventKind::DeployStarted {
                    function,
                    on_demand,
                    ..
                } => format!(
                    "deploy {} ({})",
                    function,
                    if *on_demand { "on-demand" } else { "planned" }
                ),
                TraceEventKind::Invoked { function } => format!("invoke {function}"),
                TraceEventKind::ExecStarted { function, warm } => format!(
                    "exec-start {} ({})",
                    function,
                    if *warm { "warm" } else { "cold" }
                ),
                TraceEventKind::ExecEnded { function } => format!("exec-end {function}"),
                TraceEventKind::PredictionMiss { function } => {
                    format!("prediction-miss {function}")
                }
                TraceEventKind::PlanComputed { planned } => {
                    format!("plan-computed ({planned} deployments)")
                }
                TraceEventKind::WorkerCrashed { function } => {
                    format!("worker-crash {function}")
                }
                TraceEventKind::TimedOut { function, attempt } => {
                    format!("timeout {function} (attempt {attempt})")
                }
                TraceEventKind::Retried { function, attempt } => {
                    format!("retry {function} (attempt {attempt})")
                }
                TraceEventKind::DeployFailed { function, attempt } => {
                    format!("deploy-failed {function} (attempt {attempt})")
                }
                TraceEventKind::Completed => "completed".to_string(),
            };
            let _ = writeln!(out, "{}  {desc}", e.at);
        }
        out
    }

    /// Total time `function` spent between its (planned or on-demand)
    /// deployment start and its execution start — the provisioning + idle
    /// window the cost model charges.
    pub fn prestart_window(&self, function: &str) -> Option<SimDuration> {
        let deploy = self.events.iter().find_map(|e| match &e.kind {
            TraceEventKind::DeployStarted { function: f, .. } if f == function => Some(e.at),
            _ => None,
        })?;
        let (exec_start, _) = self.exec_interval(function)?;
        Some(exec_start.saturating_since(deploy))
    }
}

/// What a [`Span`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// The whole request, trigger to completion.
    Request,
    /// A sandbox provisioning window (deploy start → first execution).
    Deploy,
    /// The wait between invocation and execution start (queueing,
    /// cold-start overlap).
    Wait,
    /// One execution attempt of a function.
    Exec,
}

/// A named interval in a request's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Human-readable label (`"exec f"`, `"deploy f"`, …).
    pub name: String,
    /// What the span measures.
    pub kind: SpanKind,
    /// Function the span belongs to (empty for the request root).
    pub function: String,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A zero-duration annotation on the timeline (miss, crash, timeout,
/// retry markers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanMarker {
    /// When it happened.
    pub at: SimTime,
    /// What happened (`"crash f"`, `"retry f #2"`, …).
    pub label: String,
    /// Function the marker belongs to.
    pub function: String,
}

/// The span decomposition of one request: a root request span, child
/// spans for every deploy / wait / exec interval, and instant markers for
/// faults and mispredictions.
///
/// Derived deterministically from a [`Trace`] — two identical traces
/// always yield identical trees, which is what makes the Chrome trace
/// export byte-reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanTree {
    /// The request this tree describes.
    pub request: u64,
    /// The root request span (trigger → completion).
    pub root: Span,
    /// Child intervals, ordered by (start, end, name).
    pub children: Vec<Span>,
    /// Instant annotations, in trace order.
    pub markers: Vec<SpanMarker>,
}

impl SpanTree {
    /// Builds the span tree of `trace`, or `None` for an empty trace.
    ///
    /// Execution attempts are paired sequentially per function (an
    /// `ExecStarted` closes at the next `ExecEnded` or `TimedOut` of the
    /// same function), so retried invocations produce one `Exec` span per
    /// attempt. Deploy spans close at the function's next execution start
    /// (or at trace end for workers that never served).
    pub fn from_trace(request: u64, trace: &Trace) -> Option<SpanTree> {
        let events = trace.events();
        let start = events.first()?.at;
        let end = events.last().map(|e| e.at).unwrap_or(start);

        let mut children: Vec<Span> = Vec::new();
        let mut markers: Vec<SpanMarker> = Vec::new();
        // Open intervals per function, closed as their end events arrive.
        let mut open_deploys: Vec<(String, SimTime)> = Vec::new();
        let mut open_waits: Vec<(String, SimTime)> = Vec::new();
        let mut open_execs: Vec<(String, SimTime, u64)> = Vec::new();
        // Attempt numbering per function, so retried executions get
        // distinct span names.
        let mut attempts: Vec<(String, u64)> = Vec::new();

        fn take(open: &mut Vec<(String, SimTime)>, function: &str) -> Option<SimTime> {
            let idx = open.iter().position(|(f, _)| f == function)?;
            Some(open.remove(idx).1)
        }

        for e in events {
            match &e.kind {
                TraceEventKind::DeployStarted { function, .. } => {
                    open_deploys.push((function.clone(), e.at));
                }
                TraceEventKind::Invoked { function } => {
                    open_waits.push((function.clone(), e.at));
                }
                TraceEventKind::ExecStarted { function, .. } => {
                    if let Some(at) = take(&mut open_deploys, function) {
                        children.push(Span {
                            name: format!("deploy {function}"),
                            kind: SpanKind::Deploy,
                            function: function.clone(),
                            start: at,
                            end: e.at,
                        });
                    }
                    if let Some(at) = take(&mut open_waits, function) {
                        children.push(Span {
                            name: format!("wait {function}"),
                            kind: SpanKind::Wait,
                            function: function.clone(),
                            start: at,
                            end: e.at,
                        });
                    }
                    let attempt = match attempts.iter_mut().find(|(f, _)| f == function) {
                        Some((_, n)) => {
                            *n += 1;
                            *n
                        }
                        None => {
                            attempts.push((function.clone(), 1));
                            1
                        }
                    };
                    open_execs.push((function.clone(), e.at, attempt));
                }
                TraceEventKind::ExecEnded { function }
                | TraceEventKind::TimedOut { function, .. } => {
                    if let Some(idx) = open_execs.iter().position(|(f, _, _)| f == function) {
                        let (function, at, attempt) = open_execs.remove(idx);
                        let name = if attempt == 1 {
                            format!("exec {function}")
                        } else {
                            format!("exec {function} #{attempt}")
                        };
                        children.push(Span {
                            name,
                            kind: SpanKind::Exec,
                            function,
                            start: at,
                            end: e.at,
                        });
                    }
                    if let TraceEventKind::TimedOut { function, attempt } = &e.kind {
                        markers.push(SpanMarker {
                            at: e.at,
                            label: format!("timeout {function} (attempt {attempt})"),
                            function: function.clone(),
                        });
                    }
                }
                TraceEventKind::PredictionMiss { function } => markers.push(SpanMarker {
                    at: e.at,
                    label: format!("miss {function}"),
                    function: function.clone(),
                }),
                TraceEventKind::WorkerCrashed { function } => markers.push(SpanMarker {
                    at: e.at,
                    label: format!("crash {function}"),
                    function: function.clone(),
                }),
                TraceEventKind::Retried { function, attempt } => markers.push(SpanMarker {
                    at: e.at,
                    label: format!("retry {function} #{attempt}"),
                    function: function.clone(),
                }),
                TraceEventKind::DeployFailed { function, attempt } => markers.push(SpanMarker {
                    at: e.at,
                    label: format!("deploy-failed {function} (attempt {attempt})"),
                    function: function.clone(),
                }),
                TraceEventKind::PlanComputed { planned } => markers.push(SpanMarker {
                    at: e.at,
                    label: format!("plan ({planned} deployments)"),
                    function: String::new(),
                }),
                TraceEventKind::Triggered | TraceEventKind::Completed => {}
            }
        }
        // Workers that never served: their provisioning still cost time.
        for (function, at) in open_deploys {
            children.push(Span {
                name: format!("deploy {function} (unused)"),
                kind: SpanKind::Deploy,
                function,
                start: at,
                end,
            });
        }
        children.sort_by(|a, b| {
            (a.start, a.end, a.name.as_str()).cmp(&(b.start, b.end, b.name.as_str()))
        });

        Some(SpanTree {
            request,
            root: Span {
                name: format!("request {request}"),
                kind: SpanKind::Request,
                function: String::new(),
                start,
                end,
            },
            children,
            markers,
        })
    }

    /// The functions appearing in the tree, in first-appearance order —
    /// the deterministic lane assignment exporters use.
    pub fn functions(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for name in self
            .children
            .iter()
            .map(|s| s.function.as_str())
            .chain(self.markers.iter().map(|m| m.function.as_str()))
        {
            if !name.is_empty() && !out.contains(&name) {
                out.push(name);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::default();
        let ms = SimTime::from_millis;
        t.record(ms(0), TraceEventKind::Triggered);
        t.record(
            ms(0),
            TraceEventKind::DeployStarted {
                function: "a".into(),
                on_demand: false,
                ready_at: ms(3000),
            },
        );
        t.record(
            ms(20),
            TraceEventKind::Invoked {
                function: "a".into(),
            },
        );
        t.record(
            ms(3000),
            TraceEventKind::ExecStarted {
                function: "a".into(),
                warm: false,
            },
        );
        t.record(
            ms(3500),
            TraceEventKind::ExecEnded {
                function: "a".into(),
            },
        );
        t.record(
            ms(3520),
            TraceEventKind::PredictionMiss {
                function: "b".into(),
            },
        );
        t.record(
            ms(3520),
            TraceEventKind::Invoked {
                function: "b".into(),
            },
        );
        t.record(
            ms(3520),
            TraceEventKind::DeployStarted {
                function: "b".into(),
                on_demand: true,
                ready_at: ms(6600),
            },
        );
        t.record(
            ms(6600),
            TraceEventKind::ExecStarted {
                function: "b".into(),
                warm: false,
            },
        );
        t.record(
            ms(7100),
            TraceEventKind::ExecEnded {
                function: "b".into(),
            },
        );
        t.record(ms(7100), TraceEventKind::Completed);
        t
    }

    #[test]
    fn intervals_and_windows() {
        let t = sample();
        assert_eq!(
            t.exec_interval("a"),
            Some((SimTime::from_millis(3000), SimTime::from_millis(3500)))
        );
        assert_eq!(t.exec_interval("ghost"), None);
        assert_eq!(t.prestart_window("a"), Some(SimDuration::from_millis(3000)));
        assert_eq!(t.prestart_window("b"), Some(SimDuration::from_millis(3080)));
        assert_eq!(t.len(), 11);
        assert!(!t.is_empty());
    }

    #[test]
    fn gantt_renders_rows_and_miss_markers() {
        let g = sample().render_gantt(60);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per function: {g}");
        assert!(lines[1].trim_start().starts_with('a'));
        assert!(lines[2].contains("(miss)"));
        assert!(g.contains('█'), "execution bars present");
        assert!(g.contains('░'), "provisioning bars present");
        // Execution of `b` ends at the right edge (char positions — the
        // block glyphs are multi-byte).
        let b_row: Vec<char> = lines[2].chars().collect();
        let bar_end = b_row.iter().rposition(|&c| c == '█').unwrap();
        let bar_close = b_row.iter().rposition(|&c| c == '|').unwrap();
        assert!(
            bar_close - bar_end <= 1,
            "b runs to completion: {}",
            lines[2]
        );
    }

    #[test]
    fn event_log_renders_each_event() {
        let log = sample().render_events();
        assert!(log.contains("triggered"));
        assert!(log.contains("deploy a (planned)"));
        assert!(log.contains("deploy b (on-demand)"));
        assert!(log.contains("exec-start a (cold)"));
        assert!(log.contains("prediction-miss b"));
        assert!(log.contains("completed"));
        assert_eq!(log.lines().count(), 11);
    }

    #[test]
    fn empty_trace_renders_empty() {
        let t = Trace::default();
        assert!(t.render_gantt(60).is_empty());
        assert!(t.render_events().is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn span_tree_decomposes_the_sample_trace() {
        let tree = SpanTree::from_trace(3, &sample()).unwrap();
        assert_eq!(tree.request, 3);
        assert_eq!(tree.root.kind, SpanKind::Request);
        assert_eq!(tree.root.start, SimTime::ZERO);
        assert_eq!(tree.root.end, SimTime::from_millis(7100));
        // a: deploy + wait + exec; b: deploy + wait + exec.
        assert_eq!(tree.children.len(), 6);
        let exec_a = tree
            .children
            .iter()
            .find(|s| s.name == "exec a")
            .expect("exec a span");
        assert_eq!(exec_a.kind, SpanKind::Exec);
        assert_eq!(exec_a.duration(), SimDuration::from_millis(500));
        let deploy_b = tree
            .children
            .iter()
            .find(|s| s.name == "deploy b")
            .expect("deploy b span");
        assert_eq!(deploy_b.duration(), SimDuration::from_millis(3080));
        assert_eq!(tree.markers.len(), 1);
        assert_eq!(tree.markers[0].label, "miss b");
        assert_eq!(tree.functions(), vec!["a", "b"]);
        // Children come out start-ordered.
        for w in tree.children.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn span_tree_numbers_retried_attempts_and_keeps_fault_markers() {
        let mut t = Trace::default();
        let ms = SimTime::from_millis;
        t.record(ms(0), TraceEventKind::Triggered);
        t.record(ms(0), TraceEventKind::PlanComputed { planned: 2 });
        t.record(
            ms(10),
            TraceEventKind::ExecStarted {
                function: "f".into(),
                warm: false,
            },
        );
        t.record(
            ms(500),
            TraceEventKind::TimedOut {
                function: "f".into(),
                attempt: 1,
            },
        );
        t.record(
            ms(500),
            TraceEventKind::Retried {
                function: "f".into(),
                attempt: 1,
            },
        );
        t.record(
            ms(700),
            TraceEventKind::ExecStarted {
                function: "f".into(),
                warm: true,
            },
        );
        t.record(
            ms(900),
            TraceEventKind::ExecEnded {
                function: "f".into(),
            },
        );
        t.record(
            ms(950),
            TraceEventKind::WorkerCrashed {
                function: "g".into(),
            },
        );
        t.record(ms(1000), TraceEventKind::Completed);

        let tree = SpanTree::from_trace(0, &t).unwrap();
        let names: Vec<&str> = tree.children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["exec f", "exec f #2"]);
        let labels: Vec<&str> = tree.markers.iter().map(|m| m.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "plan (2 deployments)",
                "timeout f (attempt 1)",
                "retry f #1",
                "crash g"
            ]
        );
    }

    #[test]
    fn span_tree_of_empty_trace_is_none() {
        assert!(SpanTree::from_trace(0, &Trace::default()).is_none());
    }

    #[test]
    fn span_tree_charges_unused_deploys_to_trace_end() {
        let mut t = Trace::default();
        t.record(SimTime::ZERO, TraceEventKind::Triggered);
        t.record(
            SimTime::from_millis(5),
            TraceEventKind::DeployStarted {
                function: "spare".into(),
                on_demand: false,
                ready_at: SimTime::from_millis(40),
            },
        );
        t.record(SimTime::from_millis(100), TraceEventKind::Completed);
        let tree = SpanTree::from_trace(0, &t).unwrap();
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].name, "deploy spare (unused)");
        assert_eq!(tree.children[0].end, SimTime::from_millis(100));
    }
}
