//! The platform's live estimate source: profiled EMAs with sensible
//! fallbacks.
//!
//! Planning (Algorithm 2) needs timing estimates before any profile
//! exists; the platform falls back to the sandbox provider's calibrated
//! mean cold start and the function's declared mean service time — the
//! same information a freshly booted Xanadu would have from its sandbox
//! benchmarks and deployment metadata.

use xanadu_chain::{FunctionSpec, NodeId, WorkflowDag};
use xanadu_core::estimate::{EstimateSource, NodeEstimate};
use xanadu_profiler::MetricsEngine;
use xanadu_sandbox::{SandboxProvider, SimSandboxProvider};

/// Estimate source backed by the metrics engine, with provider/spec
/// fallbacks. Implicit workflows additionally expose learned invoke
/// delays, which switch the planner to the implicit-chain rule (§3.2.2).
pub(crate) struct PlatformEstimates<'a> {
    pub metrics: &'a MetricsEngine,
    pub provider: &'a SimSandboxProvider,
    pub dag: &'a WorkflowDag,
    /// Only implicit workflows use learned invoke delays; explicit chains
    /// are orchestrated on parent completion.
    pub implicit: bool,
    /// Mean per-hop orchestration latency, folded into completion
    /// estimates: the planner knows its own routing/signalling delay, so a
    /// child's expected invocation is parent completion *plus* a hop.
    pub hop_overhead_ms: f64,
}

impl EstimateSource for PlatformEstimates<'_> {
    fn estimate(&self, _node: NodeId, spec: &FunctionSpec) -> NodeEstimate {
        let cold_fallback = self.provider.mean_cold_start_ms(spec.isolation_level());
        let warm_fallback = spec.mean_service_ms();
        let hop = self.hop_overhead_ms;
        match self.metrics.profile(spec.name()) {
            Some(p) => NodeEstimate {
                cold_start_ms: p.cold_start_ms(cold_fallback),
                // The planner's `S_c` is "how long until a sandbox
                // provisioned *now* becomes warm", which is the profiled
                // provisioning duration — NOT the startup-wait EMA. The
                // latter measures the residual wait requests observed,
                // which collapses toward zero exactly when JIT coverage
                // works; planning deployments against it schedules every
                // child too late and re-introduces the cascade.
                startup_ms: p.cold_start_ms(cold_fallback),
                warm_runtime_ms: p.warm_runtime_ms(warm_fallback) + hop,
            },
            None => NodeEstimate {
                cold_start_ms: cold_fallback,
                startup_ms: cold_fallback,
                warm_runtime_ms: warm_fallback + hop,
            },
        }
    }

    fn invoke_delay_ms(&self, parent: NodeId, child: NodeId) -> Option<f64> {
        if !self.implicit {
            return None;
        }
        let parent_name = self.dag.node(parent).spec().name();
        let child_name = self.dag.node(child).spec().name();
        self.metrics.invoke_delay_ms(parent_name, child_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xanadu_chain::{linear_chain, FunctionSpec, IsolationLevel};
    use xanadu_simcore::SimDuration;

    #[test]
    fn falls_back_to_provider_and_spec() {
        let metrics = MetricsEngine::new();
        let provider = SimSandboxProvider::new(1);
        let dag = linear_chain(
            "c",
            2,
            &FunctionSpec::new("f")
                .service_ms(750.0)
                .isolation(IsolationLevel::Process),
        )
        .unwrap();
        let est = PlatformEstimates {
            metrics: &metrics,
            provider: &provider,
            dag: &dag,
            implicit: false,
            hop_overhead_ms: 0.0,
        };
        let n0 = dag.node_by_name("f0").unwrap();
        let e = est.estimate(n0, dag.node(n0).spec());
        assert!((e.cold_start_ms - 1100.0).abs() < 120.0, "process mean");
        assert_eq!(e.warm_runtime_ms, 750.0);
        assert_eq!(
            est.invoke_delay_ms(n0, dag.node_by_name("f1").unwrap()),
            None
        );
    }

    #[test]
    fn profiled_values_take_precedence() {
        let mut metrics = MetricsEngine::new();
        metrics.record_cold_start("f0", SimDuration::from_millis(9000));
        metrics.record_warm_runtime("f0", SimDuration::from_millis(123));
        let provider = SimSandboxProvider::new(1);
        let dag = linear_chain("c", 1, &FunctionSpec::new("f")).unwrap();
        let est = PlatformEstimates {
            metrics: &metrics,
            provider: &provider,
            dag: &dag,
            implicit: false,
            hop_overhead_ms: 20.0,
        };
        let n0 = dag.node_by_name("f0").unwrap();
        let e = est.estimate(n0, dag.node(n0).spec());
        assert_eq!(e.cold_start_ms, 9000.0);
        assert_eq!(e.warm_runtime_ms, 143.0, "profiled runtime + hop overhead");
    }

    #[test]
    fn implicit_chains_expose_invoke_delays() {
        let mut metrics = MetricsEngine::new();
        metrics.record_invoke_delay("f0", "f1", SimDuration::from_millis(80));
        let provider = SimSandboxProvider::new(1);
        let dag = linear_chain("c", 2, &FunctionSpec::new("f")).unwrap();
        let n0 = dag.node_by_name("f0").unwrap();
        let n1 = dag.node_by_name("f1").unwrap();
        let implicit = PlatformEstimates {
            metrics: &metrics,
            provider: &provider,
            dag: &dag,
            implicit: true,
            hop_overhead_ms: 0.0,
        };
        assert_eq!(implicit.invoke_delay_ms(n0, n1), Some(80.0));
        let explicit = PlatformEstimates {
            implicit: false,
            ..implicit
        };
        assert_eq!(explicit.invoke_delay_ms(n0, n1), None);
    }
}
