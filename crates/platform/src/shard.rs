//! Sharded fleet replay: fleet-scale traces across OS threads with a
//! deterministic merge.
//!
//! # Model
//!
//! A fleet trace (e.g. the Azure-style workload of `xanadu-workloads`)
//! is a set of workflows, each with its own trigger schedule and — by
//! construction in every fleet experiment — its own function namespace,
//! so warm sandboxes are never shared across workflows. That makes the
//! *workflow* the natural unit of parallelism: each becomes a **logical
//! shard** owning a full [`Platform`] (event queue, worker pool, host
//! registry, RNG streams), and logical shards are distributed
//! round-robin over `threads` OS threads.
//!
//! Threads advance their shards in lock step through **conservative
//! time windows**: every shard processes events up to the window end,
//! then all threads meet at a barrier before any of them opens the next
//! window. No shard ever runs ahead of the fleet by more than one
//! window, which bounds queue/memory skew and keeps the driver correct
//! if future work adds cross-shard events inside a window.
//!
//! # Determinism
//!
//! The merged [`PlatformReport`] is **byte-identical for any thread
//! count** (and any window width): each logical shard's simulation is a
//! self-contained deterministic event loop seeded from
//! `(seed, workflow-name)`, and the merge is canonical —
//!
//! * global request ids are assigned by sorting *all* triggers by
//!   `(time, shard, local sequence)`, shards ordered by workflow name;
//! * worker ids are remapped by prefix sums of per-shard worker counts
//!   in the same shard order;
//! * results and traces are emitted in global-request-id order.
//!
//! Thread scheduling can only change *wall-clock* interleaving, never
//! which events a shard sees or in what order.
//!
//! Note that a sharded replay is a different composition than feeding
//! the same fleet into one shared [`Platform`]: the single-platform run
//! interleaves all workflows through one RNG/pool/cluster, so its
//! report is *internally* deterministic but not byte-comparable with
//! the sharded one. The legacy path remains the default; sharding is
//! opt-in for fleet-scale runs (CLI `--shards`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use serde::Serialize;
use xanadu_chain::WorkflowDag;
use xanadu_sandbox::WorkerId;
use xanadu_simcore::{RngStream, SimDuration, SimTime};

use crate::config::PlatformConfig;
use crate::hosts::ClusterReport;
use crate::obs::{MetricsRegistry, ObserverHandle};
use crate::result::{PlatformReport, RunResult};
use crate::sim::{Platform, PlatformError};
use crate::stream::{SloConfig, SloMonitor, StreamingAudit, StreamingConfig};
use crate::timeline::Trace;

/// One logical shard's input: a workflow and its trigger schedule.
#[derive(Debug, Clone)]
pub struct ShardWorkload {
    /// The workflow to deploy on this shard.
    pub dag: WorkflowDag,
    /// Trigger times (any order; the driver sorts them ascending).
    pub triggers: Vec<SimTime>,
}

/// Driver knobs for a sharded replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOptions {
    /// OS threads to spread logical shards over. Clamped to
    /// `[1, logical shards]`; the thread count never affects report
    /// bytes, only wall-clock time.
    pub threads: usize,
    /// Width of the conservative time window between barriers. Must be
    /// non-zero. Narrow windows tighten the skew bound (and barrier
    /// overhead); wide windows amortize it. Report bytes are identical
    /// either way.
    pub window: SimDuration,
}

impl Default for ShardOptions {
    /// Single thread, one-minute windows.
    fn default() -> Self {
        ShardOptions {
            threads: 1,
            window: SimDuration::from_mins(1),
        }
    }
}

/// Optional per-shard telemetry attached by the driver. Everything here
/// streams in bounded memory and merges canonically, so enabling it
/// never perturbs report bytes or the byte-identity guarantee of its own
/// exports.
#[derive(Debug, Clone, Default)]
pub struct ShardTelemetry {
    /// Attach a [`StreamingAudit`] to every shard; the merged audit lands
    /// in [`ShardedRun::streaming`].
    pub streaming: Option<StreamingConfig>,
    /// Attach a collector-mode [`SloMonitor`] to every shard; the merged
    /// monitor lands in [`ShardedRun::slo`].
    pub slo: Option<SloConfig>,
    /// Attach a [`MetricsRegistry`] to every shard; the merged registry
    /// lands in [`ShardedRun::metrics`] (the report's own `metrics` field
    /// stays `None`, keeping report bytes unchanged).
    pub metrics: bool,
    /// Print a wall-clock-gated heartbeat (events/sec, backlog, ETA) to
    /// stderr roughly once a second. Diagnostics only: never written to
    /// any export.
    pub progress: bool,
}

/// Deterministic per-shard kernel counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ShardProfile {
    /// Shard index in canonical (workflow-name) order.
    pub index: usize,
    /// The workflow this shard simulated.
    pub workflow: String,
    /// Simulation events the shard processed.
    pub events: u64,
    /// Queue high-water mark observed at window barriers.
    pub queue_peak: u64,
}

/// The kernel self-profile of a sharded replay: deterministic per-shard
/// counters plus wall-clock driver costs.
///
/// The per-shard counters (`shards`, `windows`) depend only on the event
/// streams and are safe to include in deterministic exports via
/// [`deterministic_registry`](Self::deterministic_registry). The
/// wall-clock numbers (`barrier_wait_us`, `merge_us`) vary run to run and
/// belong only in bench output.
#[derive(Debug, Clone, Default, Serialize)]
pub struct KernelProfile {
    /// Per-shard counters, shard-index order.
    pub shards: Vec<ShardProfile>,
    /// OS threads the fleet ran on.
    pub threads: usize,
    /// Barrier windows the fleet stepped through.
    pub windows: u64,
    /// Wall-clock microseconds each OS thread spent waiting at barriers
    /// (thread-id order; nondeterministic).
    pub barrier_wait_us: Vec<u64>,
    /// Wall-clock microseconds the canonical merge took
    /// (nondeterministic).
    pub merge_us: u64,
}

impl KernelProfile {
    /// Total events processed across all shards.
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Largest queue high-water mark across shards.
    pub fn queue_peak(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_peak).max().unwrap_or(0)
    }

    /// The deterministic subset as `kernel.*` counters, suitable for
    /// merging into a metrics export without breaking byte identity.
    pub fn deterministic_registry(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::default();
        registry.incr("kernel.shards", self.shards.len() as u64);
        registry.incr("kernel.windows", self.windows);
        registry.incr("kernel.events", self.events());
        registry.incr("kernel.queue_peak", self.queue_peak());
        registry
    }
}

/// Outcome of a sharded replay.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The canonically merged report: results in global-request-id
    /// order, worker ids remapped by shard prefix sums, `metrics`
    /// always `None`. Byte-identical for any `threads`/`window`.
    pub report: PlatformReport,
    /// Per-request orchestration timelines keyed by global request id,
    /// ascending. Empty when the config disables
    /// [`record_traces`](PlatformConfig::record_traces).
    pub traces: Vec<(u64, Trace)>,
    /// Number of logical shards (= workflows) the fleet was split into.
    pub logical_shards: usize,
    /// Total simulation events processed across all shards.
    pub events_processed: u64,
    /// Merged streaming audit (exemplar ids remapped to global request
    /// ids), when [`ShardTelemetry::streaming`] was set.
    pub streaming: Option<StreamingAudit>,
    /// Merged SLO collector, when [`ShardTelemetry::slo`] was set. Call
    /// [`SloMonitor::report`] to evaluate it.
    pub slo: Option<SloMonitor>,
    /// Merged per-shard metrics, when [`ShardTelemetry::metrics`] was
    /// set.
    pub metrics: Option<MetricsRegistry>,
    /// Kernel self-profile (always populated).
    pub profile: KernelProfile,
}

/// Everything a worker thread needs to build and drive one shard.
struct ShardInput {
    /// Index in name-sorted shard order (the canonical merge order).
    index: usize,
    name: String,
    dag: WorkflowDag,
    triggers: Vec<SimTime>,
}

/// A shard's raw output before merging.
struct ShardOutput {
    index: usize,
    name: String,
    triggers: Vec<SimTime>,
    report: PlatformReport,
    /// `(local request id, trace)`, present only when traces are on.
    traces: Vec<(u64, Trace)>,
    events: u64,
    queue_peak: u64,
    streaming: Option<StreamingAudit>,
    slo: Option<SloMonitor>,
    metrics: Option<MetricsRegistry>,
}

/// Cross-thread driver state: quiescence accounting plus the shared
/// progress counters the heartbeat reads.
struct SharedDriver {
    pending: AtomicU64,
    events: AtomicU64,
    backlog_peak: AtomicU64,
    horizon_us: u64,
    progress: bool,
    start: Instant,
}

/// Replays a fleet of independent workflows as logical shards over
/// `opts.threads` OS threads and merges the outcome deterministically.
///
/// Each workflow runs on its own [`Platform`] cloned from `base` with
/// per-shard seeds derived from `(base.seed, workflow name)` (and
/// likewise for the fault seed), so adding, removing or renaming one
/// workflow never perturbs the others' simulations.
///
/// # Errors
///
/// [`PlatformError::AlreadyDeployed`] if two workloads share a
/// workflow name — shards are keyed by name, so duplicates would
/// collide in the merge.
///
/// # Example
///
/// ```
/// use xanadu_chain::{linear_chain, FunctionSpec};
/// use xanadu_core::speculation::ExecutionMode;
/// use xanadu_platform::shard::{replay_sharded, ShardOptions, ShardWorkload};
/// use xanadu_platform::PlatformConfig;
/// use xanadu_simcore::SimTime;
///
/// let workloads: Vec<ShardWorkload> = (0..4)
///     .map(|i| ShardWorkload {
///         dag: linear_chain(
///             &format!("wf{i}"),
///             3,
///             &FunctionSpec::new(format!("wf{i}-f")).service_ms(300.0),
///         )
///         .unwrap(),
///         triggers: vec![SimTime::from_secs(i)],
///     })
///     .collect();
/// let config = PlatformConfig::for_mode(ExecutionMode::Jit, 42);
/// let run = replay_sharded(&config, workloads, &ShardOptions::default()).unwrap();
/// assert_eq!(run.report.results.len(), 4);
/// assert_eq!(run.logical_shards, 4);
/// ```
pub fn replay_sharded(
    base: &PlatformConfig,
    workloads: Vec<ShardWorkload>,
    opts: &ShardOptions,
) -> Result<ShardedRun, PlatformError> {
    replay_sharded_with(base, workloads, opts, &ShardTelemetry::default())
}

/// [`replay_sharded`] with per-shard telemetry: streaming audits, SLO
/// collectors and metrics registries are attached to every shard's
/// platform and merged canonically into the [`ShardedRun`].
///
/// The merged report bytes are identical to a telemetry-free run — the
/// observers only *read* the event stream — and every telemetry export
/// is itself byte-identical at any `threads`/`window` width.
pub fn replay_sharded_with(
    base: &PlatformConfig,
    workloads: Vec<ShardWorkload>,
    opts: &ShardOptions,
    telemetry: &ShardTelemetry,
) -> Result<ShardedRun, PlatformError> {
    assert!(
        opts.window > SimDuration::ZERO,
        "shard window must be non-zero"
    );
    // Canonical shard order: by workflow name. Everything downstream
    // (seeds, global ids, worker-id offsets) keys off this order, so the
    // caller's workload order is irrelevant to the output.
    let mut inputs: Vec<ShardInput> = workloads
        .into_iter()
        .map(|w| ShardInput {
            index: 0,
            name: w.dag.name().to_string(),
            dag: w.dag,
            triggers: {
                let mut t = w.triggers;
                t.sort();
                t
            },
        })
        .collect();
    inputs.sort_by(|a, b| a.name.cmp(&b.name));
    for pair in inputs.windows(2) {
        if pair[0].name == pair[1].name {
            return Err(PlatformError::AlreadyDeployed(pair[0].name.clone()));
        }
    }
    for (i, input) in inputs.iter_mut().enumerate() {
        input.index = i;
    }
    let logical_shards = inputs.len();
    if logical_shards == 0 {
        return Ok(ShardedRun {
            report: PlatformReport::default(),
            traces: Vec::new(),
            logical_shards: 0,
            events_processed: 0,
            streaming: telemetry.streaming.map(StreamingAudit::new),
            slo: telemetry.slo.clone().map(SloMonitor::collector),
            metrics: telemetry.metrics.then(MetricsRegistry::new),
            profile: KernelProfile::default(),
        });
    }

    let threads = opts.threads.clamp(1, logical_shards);
    // Round-robin assignment: shard i runs on thread i % threads.
    let mut per_thread: Vec<Vec<ShardInput>> = (0..threads).map(|_| Vec::new()).collect();
    for input in inputs {
        per_thread[input.index % threads].push(input);
    }

    let barrier = Barrier::new(threads);
    let shared = SharedDriver {
        pending: AtomicU64::new(0),
        events: AtomicU64::new(0),
        backlog_peak: AtomicU64::new(0),
        horizon_us: per_thread
            .iter()
            .flatten()
            .flat_map(|i| i.triggers.last())
            .map(|t| t.as_micros())
            .max()
            .unwrap_or(0),
        progress: telemetry.progress,
        start: Instant::now(),
    };
    let window = opts.window;
    let thread_outputs: Vec<(Vec<ShardOutput>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_thread
            .into_iter()
            .enumerate()
            .map(|(tid, mine)| {
                let shared = &shared;
                let barrier = &barrier;
                scope.spawn(move || {
                    drive_shards(base, mine, tid, barrier, shared, window, telemetry)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    let mut barrier_wait_us = Vec::with_capacity(threads);
    let mut windows = 0u64;
    let mut outputs: Vec<ShardOutput> = Vec::with_capacity(logical_shards);
    for (outs, waited, wins) in thread_outputs {
        outputs.extend(outs);
        barrier_wait_us.push(waited);
        windows = windows.max(wins);
    }
    outputs.sort_by_key(|o| o.index);

    let merge_start = Instant::now();
    let mut run = merge(outputs, logical_shards);
    run.profile.threads = threads;
    run.profile.windows = windows;
    run.profile.barrier_wait_us = barrier_wait_us;
    run.profile.merge_us = merge_start.elapsed().as_micros() as u64;
    Ok(run)
}

/// Thread body: build each assigned shard's platform, advance all of
/// them window by window under the fleet barrier, then finish them.
/// Returns the shard outputs plus this thread's total barrier-wait
/// micros and the number of windows stepped.
fn drive_shards(
    base: &PlatformConfig,
    inputs: Vec<ShardInput>,
    thread_id: usize,
    barrier: &Barrier,
    shared: &SharedDriver,
    window: SimDuration,
    telemetry: &ShardTelemetry,
) -> (Vec<ShardOutput>, u64, u64) {
    struct Running {
        input: ShardInput,
        platform: Platform,
        events: u64,
        queue_peak: u64,
        streaming: Option<ObserverHandle<StreamingAudit>>,
        slo: Option<ObserverHandle<SloMonitor>>,
        metrics: Option<ObserverHandle<MetricsRegistry>>,
    }
    let mut shards: Vec<Running> = inputs
        .into_iter()
        .map(|input| {
            let mut config = base.clone();
            // FNV-stable per-shard sub-seeds: a shard's draws depend only
            // on the master seed and its own name, never on fleet
            // composition or thread placement.
            config.seed = RngStream::derive(base.seed, &input.name).next_u64();
            config.faults.seed = RngStream::derive(base.faults.seed, &input.name).next_u64();
            let mut platform = Platform::new(config);
            platform.reserve_invocations(input.triggers.len());
            platform
                .deploy(input.dag.clone())
                .expect("fresh platform has no deployments");
            for &at in &input.triggers {
                platform
                    .trigger_at(&input.name, at)
                    .expect("workflow was just deployed");
            }
            // Telemetry observers: collector-mode SLO (evaluation happens
            // once, post-merge) and a plain metrics observer (not
            // `attach_metrics`, which would embed the registry into the
            // report and change its bytes).
            let streaming = telemetry
                .streaming
                .map(|cfg| platform.attach_observer(StreamingAudit::new(cfg)));
            let slo = telemetry
                .slo
                .clone()
                .map(|cfg| platform.attach_observer(SloMonitor::collector(cfg)));
            let metrics = telemetry
                .metrics
                .then(|| platform.attach_observer(MetricsRegistry::new()));
            Running {
                input,
                platform,
                events: 0,
                queue_peak: 0,
                streaming,
                slo,
                metrics,
            }
        })
        .collect();

    // Conservative time-window loop. Three barrier phases per window:
    // (A) every thread has advanced its shards and published its pending
    // count, (B) every thread has read the fleet total (the phase-B
    // leader then resets the accumulator), (C) the reset is visible
    // before anyone publishes for the next window. All threads observe
    // the same `done`, so they exit on the same window.
    let mut window_end = SimTime::ZERO;
    let mut barrier_wait_us = 0u64;
    let mut windows = 0u64;
    let mut last_beat = shared.start;
    let wait = |barrier: &Barrier, acc: &mut u64| {
        let begin = Instant::now();
        let result = barrier.wait();
        *acc += begin.elapsed().as_micros() as u64;
        result
    };
    loop {
        windows += 1;
        window_end += window;
        let mut mine = 0u64;
        let mut processed = 0u64;
        let mut my_peak = 0u64;
        for shard in &mut shards {
            let stepped = shard.platform.step_window(window_end);
            shard.events += stepped;
            processed += stepped;
            let backlog = shard.platform.pending_events() as u64;
            shard.queue_peak = shard.queue_peak.max(backlog);
            my_peak = my_peak.max(backlog);
            mine += backlog;
        }
        shared.pending.fetch_add(mine, Ordering::SeqCst);
        shared.events.fetch_add(processed, Ordering::SeqCst);
        shared.backlog_peak.fetch_max(my_peak, Ordering::SeqCst);
        wait(barrier, &mut barrier_wait_us);
        let done = shared.pending.load(Ordering::SeqCst) == 0;
        if shared.progress && thread_id == 0 && last_beat.elapsed().as_secs_f64() >= 1.0 {
            last_beat = Instant::now();
            heartbeat(shared, window_end);
        }
        if wait(barrier, &mut barrier_wait_us).is_leader() {
            shared.pending.store(0, Ordering::SeqCst);
            shared.backlog_peak.store(0, Ordering::SeqCst);
        }
        wait(barrier, &mut barrier_wait_us);
        if done {
            break;
        }
    }

    let outputs = shards
        .into_iter()
        .map(|shard| {
            let requests = shard.input.triggers.len() as u64;
            let traces: Vec<(u64, Trace)> = (0..requests)
                .filter_map(|req| shard.platform.trace(req).cloned().map(|t| (req, t)))
                .collect();
            ShardOutput {
                index: shard.input.index,
                name: shard.input.name,
                triggers: shard.input.triggers,
                report: shard.platform.finish(),
                traces,
                events: shard.events,
                queue_peak: shard.queue_peak,
                streaming: shard.streaming.map(|h| h.snapshot()),
                slo: shard.slo.map(|h| h.snapshot()),
                metrics: shard.metrics.map(|h| h.snapshot()),
            }
        })
        .collect();
    (outputs, barrier_wait_us, windows)
}

/// One stderr progress line. Wall-clock only — never touches exports.
fn heartbeat(shared: &SharedDriver, window_end: SimTime) {
    let elapsed = shared.start.elapsed().as_secs_f64().max(1e-9);
    let events = shared.events.load(Ordering::SeqCst);
    let backlog = shared.pending.load(Ordering::SeqCst);
    let shard_peak = shared.backlog_peak.load(Ordering::SeqCst);
    let frac = if shared.horizon_us == 0 {
        1.0
    } else {
        (window_end.as_micros() as f64 / shared.horizon_us as f64).min(1.0)
    };
    let eta = if frac > 0.0 && frac < 1.0 {
        format!(", eta ~{:.0}s", elapsed * (1.0 - frac) / frac)
    } else {
        String::new()
    };
    eprintln!(
        "replay: {:>3.0}% of trace (sim {window_end}), {events} events @ {:.0}/s, \
         backlog {backlog} (peak shard {shard_peak}){eta}",
        frac * 100.0,
        events as f64 / elapsed,
    );
}

/// Canonical merge of per-shard outputs (inputs sorted by shard index).
fn merge(outputs: Vec<ShardOutput>, logical_shards: usize) -> ShardedRun {
    // Global request ids: all triggers sorted by (time, shard, local
    // sequence). Local ids within a shard are already trigger-time
    // ordered, so this is a stable k-way interleave.
    let mut order: Vec<(SimTime, usize, u64)> = Vec::new();
    for out in &outputs {
        for (local, &at) in out.triggers.iter().enumerate() {
            order.push((at, out.index, local as u64));
        }
    }
    order.sort();
    let mut global: Vec<Vec<u64>> = outputs.iter().map(|o| vec![0; o.triggers.len()]).collect();
    for (gid, &(_, shard, local)) in order.iter().enumerate() {
        global[shard][local as usize] = gid as u64;
    }

    let mut results: Vec<RunResult> = Vec::with_capacity(order.len());
    let mut traces: Vec<(u64, Trace)> = Vec::new();
    let mut records = Vec::new();
    let mut events_processed = 0u64;
    let mut worker_offset = 0u64;
    let mut shard_profiles: Vec<ShardProfile> = Vec::new();
    let mut streaming: Option<StreamingAudit> = None;
    let mut slo: Option<SloMonitor> = None;
    let mut metrics: Option<MetricsRegistry> = None;
    let mut cluster: Option<ClusterReport> = None;
    for out in outputs {
        let map = &global[out.index];
        for mut r in out.report.results {
            r.request = map[r.request as usize];
            results.push(r);
        }
        for (local, trace) in out.traces {
            traces.push((map[local as usize], trace));
        }
        // finish() sorts records by id and ids are dense per platform,
        // so offsetting by (max id + 1) keeps the merged ledger dense.
        let next_offset = out
            .report
            .worker_records
            .last()
            .map_or(worker_offset, |r| worker_offset + r.id.0 + 1);
        for mut r in out.report.worker_records {
            r.id = WorkerId(r.id.0 + worker_offset);
            records.push(r);
        }
        worker_offset = next_offset;
        events_processed += out.events;
        shard_profiles.push(ShardProfile {
            index: out.index,
            workflow: out.name,
            events: out.events,
            queue_peak: out.queue_peak,
        });
        // Telemetry merges in shard-index order — the same canonical
        // order as everything above, so merged telemetry is as
        // thread-invariant as the report itself.
        if let Some(mut audit) = out.streaming {
            audit.remap_exemplar_requests(|local| map[local as usize]);
            match &mut streaming {
                None => streaming = Some(audit),
                Some(acc) => acc.merge_from(&audit),
            }
        }
        if let Some(monitor) = out.slo {
            match &mut slo {
                None => slo = Some(monitor),
                Some(acc) => acc.merge_from(&monitor),
            }
        }
        if let Some(registry) = out.metrics {
            match &mut metrics {
                None => metrics = Some(registry),
                Some(acc) => acc.merge_from(&registry),
            }
        }
        // Every logical shard runs its own replica of the configured
        // cluster, so host rows fold by id and counters sum.
        if let Some(report) = out.report.cluster {
            match &mut cluster {
                None => cluster = Some(report),
                Some(acc) => acc.merge_from(&report),
            }
        }
    }
    results.sort_by_key(|r| r.request);
    traces.sort_by_key(|&(gid, _)| gid);

    ShardedRun {
        report: PlatformReport {
            results,
            worker_records: records,
            metrics: None,
            cluster,
        },
        traces,
        logical_shards,
        events_processed,
        streaming,
        slo,
        metrics,
        profile: KernelProfile {
            shards: shard_profiles,
            threads: 0,
            windows: 0,
            barrier_wait_us: Vec::new(),
            merge_us: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use xanadu_chain::{linear_chain, FunctionSpec};
    use xanadu_core::speculation::ExecutionMode;

    fn fleet(workflows: usize, triggers_each: usize) -> Vec<ShardWorkload> {
        (0..workflows)
            .map(|i| {
                let name = format!("wf{i}");
                let template = FunctionSpec::new(format!("{name}-f")).service_ms(300.0);
                ShardWorkload {
                    dag: linear_chain(&name, 4, &template).expect("valid chain"),
                    triggers: (0..triggers_each)
                        .map(|k| SimTime::from_secs((k * 40 + i) as u64))
                        .collect(),
                }
            })
            .collect()
    }

    fn run_with(threads: usize, window_secs: u64, faults: bool) -> ShardedRun {
        let mut builder = PlatformConfig::builder().for_mode(ExecutionMode::Jit, 77);
        if faults {
            builder = builder.faults(FaultConfig::with_rate(0.25, 5));
        }
        let config = builder.build().expect("valid config");
        let opts = ShardOptions {
            threads,
            window: SimDuration::from_secs(window_secs),
        };
        replay_sharded(&config, fleet(5, 6), &opts).expect("replay succeeds")
    }

    #[test]
    fn thread_count_never_changes_report_bytes() {
        let baseline = run_with(1, 60, false);
        let expected = serde_json::to_string(&baseline.report).unwrap();
        for threads in [2, 3, 5, 8] {
            let run = run_with(threads, 60, false);
            assert_eq!(
                serde_json::to_string(&run.report).unwrap(),
                expected,
                "threads={threads}"
            );
            assert_eq!(run.events_processed, baseline.events_processed);
            assert_eq!(run.traces, baseline.traces);
        }
    }

    #[test]
    fn window_width_never_changes_report_bytes() {
        let narrow = run_with(3, 1, false);
        let wide = run_with(3, 3600, false);
        assert_eq!(
            serde_json::to_string(&narrow.report).unwrap(),
            serde_json::to_string(&wide.report).unwrap()
        );
    }

    #[test]
    fn deterministic_under_faults() {
        let a = run_with(1, 60, true);
        let b = run_with(4, 60, true);
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap()
        );
        let crashed = a.report.worker_records.iter().filter(|r| r.crashed).count();
        assert!(crashed > 0, "fault rate 0.25 should crash some workers");
    }

    #[test]
    fn global_request_ids_follow_trigger_order() {
        let run = run_with(2, 60, false);
        assert_eq!(run.logical_shards, 5);
        assert_eq!(run.report.results.len(), 30);
        for (gid, r) in run.report.results.iter().enumerate() {
            assert_eq!(r.request, gid as u64);
        }
        for pair in run.report.results.windows(2) {
            assert!(pair[0].trigger <= pair[1].trigger, "sorted by trigger");
        }
    }

    #[test]
    fn worker_ids_are_dense_after_merge() {
        let run = run_with(3, 60, false);
        for (i, r) in run.report.worker_records.iter().enumerate() {
            assert_eq!(r.id.0, i as u64, "dense remapped worker ids");
        }
    }

    #[test]
    fn traces_cover_every_request_and_respect_the_gate() {
        let run = run_with(2, 60, false);
        let ids: Vec<u64> = run.traces.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, (0..30).collect::<Vec<u64>>());

        let config = PlatformConfig::builder()
            .for_mode(ExecutionMode::Jit, 77)
            .record_traces(false)
            .build()
            .unwrap();
        let silent =
            replay_sharded(&config, fleet(2, 3), &ShardOptions::default()).expect("replay");
        assert!(silent.traces.is_empty());
        assert_eq!(silent.report.results.len(), 6);
    }

    fn run_with_telemetry(threads: usize) -> ShardedRun {
        let config = PlatformConfig::for_mode(ExecutionMode::Jit, 77);
        let opts = ShardOptions {
            threads,
            window: SimDuration::from_secs(60),
        };
        let telemetry = ShardTelemetry {
            streaming: Some(crate::stream::StreamingConfig { exemplars: 3 }),
            slo: Some(crate::stream::SloConfig::default()),
            metrics: true,
            progress: false,
        };
        replay_sharded_with(&config, fleet(5, 6), &opts, &telemetry).expect("replay succeeds")
    }

    #[test]
    fn telemetry_is_thread_invariant() {
        let baseline = run_with_telemetry(1);
        let summary = baseline.streaming.as_ref().unwrap().summary();
        assert_eq!(summary.requests, 30);
        let slo_report = baseline.slo.as_ref().unwrap().report();
        let metrics = baseline.metrics.clone().unwrap();
        assert!(metrics.counters["requests.completed"] == 30);
        for threads in [2, 4, 8] {
            let run = run_with_telemetry(threads);
            assert_eq!(
                run.streaming.as_ref().unwrap().summary(),
                summary,
                "threads={threads}"
            );
            assert_eq!(run.slo.as_ref().unwrap().report(), slo_report);
            assert_eq!(run.metrics.clone().unwrap(), metrics);
            let a: Vec<(u64, u64)> = baseline
                .streaming
                .as_ref()
                .unwrap()
                .exemplars()
                .iter()
                .map(|e| (e.request, e.end_to_end_us))
                .collect();
            let b: Vec<(u64, u64)> = run
                .streaming
                .as_ref()
                .unwrap()
                .exemplars()
                .iter()
                .map(|e| (e.request, e.end_to_end_us))
                .collect();
            assert_eq!(a, b, "exemplar reservoir is thread-invariant");
        }
    }

    #[test]
    fn telemetry_never_perturbs_report_bytes() {
        let plain = run_with(1, 60, false);
        let observed = run_with_telemetry(4);
        assert_eq!(
            serde_json::to_string(&plain.report).unwrap(),
            serde_json::to_string(&observed.report).unwrap()
        );
    }

    #[test]
    fn kernel_profile_counts_the_fleet() {
        let run = run_with_telemetry(3);
        assert_eq!(run.profile.shards.len(), 5);
        assert_eq!(run.profile.threads, 3);
        assert!(run.profile.windows > 0);
        assert_eq!(run.profile.events(), run.events_processed);
        assert_eq!(run.profile.barrier_wait_us.len(), 3);
        let names: Vec<&str> = run
            .profile
            .shards
            .iter()
            .map(|s| s.workflow.as_str())
            .collect();
        assert_eq!(
            names,
            ["wf0", "wf1", "wf2", "wf3", "wf4"],
            "canonical order"
        );
        let registry = run.profile.deterministic_registry();
        assert_eq!(registry.counters["kernel.shards"], 5);
        assert_eq!(registry.counters["kernel.events"], run.events_processed);
        assert!(registry.counters["kernel.queue_peak"] > 0);
    }

    #[test]
    fn exemplar_requests_use_global_ids() {
        let run = run_with_telemetry(2);
        let audit = run.streaming.as_ref().unwrap();
        for e in audit.exemplars() {
            assert!(e.request < 30, "global request id in range");
            let tree = e.span_tree().expect("span tree");
            assert!(tree.root.name.contains(&format!("request {}", e.request)));
        }
    }

    #[test]
    fn duplicate_workflow_names_are_rejected() {
        let mut workloads = fleet(2, 1);
        workloads.push(workloads[0].clone());
        let config = PlatformConfig::for_mode(ExecutionMode::Jit, 1);
        let err = replay_sharded(&config, workloads, &ShardOptions::default()).unwrap_err();
        assert!(matches!(err, PlatformError::AlreadyDeployed(name) if name == "wf0"));
    }

    #[test]
    fn empty_fleet_yields_empty_report() {
        let config = PlatformConfig::for_mode(ExecutionMode::Jit, 1);
        let run = replay_sharded(&config, Vec::new(), &ShardOptions::default()).unwrap();
        assert_eq!(run.logical_shards, 0);
        assert!(run.report.results.is_empty());
        assert_eq!(run.events_processed, 0);
    }
}
