//! Per-request and per-run results.

use crate::hosts::ClusterReport;
use crate::obs::MetricsRegistry;
use serde::{Deserialize, Serialize};
use xanadu_core::cost::{PenaltyFactors, ResourceCosts, WorkflowRunCosts};
use xanadu_sandbox::WorkerRecord;
use xanadu_simcore::{SimDuration, SimTime};

/// Outcome of one workflow request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Request id (platform-assigned, dense).
    pub request: u64,
    /// The triggered workflow's name.
    pub workflow: String,
    /// When the trigger fired.
    pub trigger: SimTime,
    /// When the last activated function completed.
    pub end: SimTime,
    /// End-to-end latency `R_F`.
    pub end_to_end: SimDuration,
    /// Execution-time reference: the critical path of the activated
    /// subgraph using the actually drawn service times (the `Σ rᵢ` /
    /// slowest-branch baseline of Equation 1).
    pub exec_reference: SimDuration,
    /// Latency overhead `C_D = R_F − exec_reference`.
    pub overhead: SimDuration,
    /// Functions that experienced a cold start (no warm sandbox at
    /// invocation).
    pub cold_starts: u32,
    /// Functions served by an already warm sandbox.
    pub warm_starts: u32,
    /// Prediction misses (invoked functions absent from the plan).
    pub misses: u32,
    /// Workers provisioned on behalf of this request.
    pub workers_spawned: u32,
    /// Functions that executed.
    pub executed_functions: u32,
    /// Resource cost `C_R` attributed to this request's workers.
    pub resources: ResourceCosts,
    /// Injected faults that hit this request (worker crashes affecting its
    /// invocations plus invocation timeouts).
    #[serde(default)]
    pub faults: u32,
    /// Invocation attempts beyond the first (retries after crashes or
    /// timeouts).
    #[serde(default)]
    pub retries: u32,
}

impl RunResult {
    /// The request's joint penalty factors `φ = C_R · C_D`.
    pub fn penalties(&self) -> PenaltyFactors {
        WorkflowRunCosts {
            c_d: self.overhead,
            resources: self.resources,
        }
        .penalties()
    }
}

/// Final report of a platform run: every request result plus the complete
/// worker accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlatformReport {
    /// Per-request outcomes, in completion order.
    pub results: Vec<RunResult>,
    /// Lifetime records of every worker the platform ever created.
    pub worker_records: Vec<WorkerRecord>,
    /// Aggregated metrics, present only when a metrics registry was
    /// attached via `Platform::attach_metrics` — reports from unobserved
    /// platforms serialize byte-identically to pre-observability ones.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsRegistry>,
    /// Cluster scheduling outcome (per-host utilization, tenant
    /// admission, cross-host cold attribution). Present only when the
    /// platform ran with an explicit multi-host cluster — default
    /// single-testbed reports serialize byte-identically to pre-cluster
    /// ones.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cluster: Option<ClusterReport>,
}

impl PlatformReport {
    /// Mean latency overhead `C_D` across requests (ms), 0 if empty.
    pub fn mean_overhead_ms(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results
            .iter()
            .map(|r| r.overhead.as_millis_f64())
            .sum::<f64>()
            / self.results.len() as f64
    }

    /// Mean end-to-end latency across requests (ms), 0 if empty.
    pub fn mean_end_to_end_ms(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results
            .iter()
            .map(|r| r.end_to_end.as_millis_f64())
            .sum::<f64>()
            / self.results.len() as f64
    }

    /// Total resource cost across requests.
    pub fn total_resources(&self) -> ResourceCosts {
        let mut total = ResourceCosts::default();
        for r in &self.results {
            total.add(r.resources);
        }
        total
    }

    /// Total cold and warm start counts.
    pub fn start_counts(&self) -> (u32, u32) {
        self.results
            .iter()
            .fold((0, 0), |(c, w), r| (c + r.cold_starts, w + r.warm_starts))
    }

    /// Total injected-fault and retry counts.
    pub fn fault_counts(&self) -> (u32, u32) {
        self.results
            .iter()
            .fold((0, 0), |(f, r), x| (f + x.faults, r + x.retries))
    }

    /// Mean per-request penalties `φ`.
    pub fn mean_penalties(&self) -> PenaltyFactors {
        if self.results.is_empty() {
            return PenaltyFactors::default();
        }
        let n = self.results.len() as f64;
        let mut phi_cpu = 0.0;
        let mut phi_mem = 0.0;
        for r in &self.results {
            let p = r.penalties();
            phi_cpu += p.phi_cpu_s2;
            phi_mem += p.phi_mem_mbs2;
        }
        PenaltyFactors {
            phi_cpu_s2: phi_cpu / n,
            phi_mem_mbs2: phi_mem / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(overhead_ms: u64, cpu: f64, mem: f64) -> RunResult {
        RunResult {
            request: 0,
            workflow: "w".into(),
            trigger: SimTime::ZERO,
            end: SimTime::from_millis(1000 + overhead_ms),
            end_to_end: SimDuration::from_millis(1000 + overhead_ms),
            exec_reference: SimDuration::from_millis(1000),
            overhead: SimDuration::from_millis(overhead_ms),
            cold_starts: 1,
            warm_starts: 2,
            misses: 0,
            workers_spawned: 3,
            executed_functions: 3,
            resources: ResourceCosts {
                cpu_s: cpu,
                mem_mbs: mem,
            },
            faults: 1,
            retries: 0,
        }
    }

    #[test]
    fn penalties_multiply() {
        let r = result(2000, 3.0, 100.0);
        let p = r.penalties();
        assert!((p.phi_cpu_s2 - 6.0).abs() < 1e-9);
        assert!((p.phi_mem_mbs2 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn report_aggregates() {
        let report = PlatformReport {
            results: vec![result(1000, 1.0, 10.0), result(3000, 3.0, 30.0)],
            ..PlatformReport::default()
        };
        assert_eq!(report.mean_overhead_ms(), 2000.0);
        assert_eq!(report.mean_end_to_end_ms(), 3000.0);
        let total = report.total_resources();
        assert_eq!(total.cpu_s, 4.0);
        assert_eq!(total.mem_mbs, 40.0);
        assert_eq!(report.start_counts(), (2, 4));
        assert_eq!(report.fault_counts(), (2, 0));
        let p = report.mean_penalties();
        assert!((p.phi_cpu_s2 - (1.0 + 9.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn absent_metrics_do_not_appear_in_serialized_reports() {
        let report = PlatformReport::default();
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("metrics"), "{json}");
        assert!(!json.contains("cluster"), "{json}");
        let with = PlatformReport {
            metrics: Some(MetricsRegistry::new()),
            ..PlatformReport::default()
        };
        let json = serde_json::to_string(&with).unwrap();
        assert!(json.contains("metrics"), "{json}");
        let back: PlatformReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = PlatformReport::default();
        assert_eq!(report.mean_overhead_ms(), 0.0);
        assert_eq!(report.mean_penalties(), PenaltyFactors::default());
    }
}
