//! Revisioned JSON document store (the paper's CouchDB substitute).
//!
//! Xanadu "uses Apache CouchDB to store metrics and function
//! branch-related metadata", chosen for "native JSON data support" (§4).
//! This in-memory store preserves that usage pattern: JSON documents keyed
//! by id, optimistic concurrency via revision numbers, and prefix queries
//! for scanning related documents (function profiles, branch trees, run
//! results).

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Error from a conflicting or missing-document operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The supplied revision does not match the stored one.
    Conflict {
        /// The revision currently stored.
        current: u64,
    },
    /// No document with the given id exists.
    NotFound,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Conflict { current } => {
                write!(f, "revision conflict, current revision is {current}")
            }
            StoreError::NotFound => write!(f, "document not found"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An in-memory revisioned JSON document store.
///
/// # Example
///
/// ```
/// use xanadu_platform::metastore::MetaStore;
/// use serde_json::json;
///
/// let mut store = MetaStore::new();
/// let rev = store.put("profile/pay", json!({"warm_ms": 2500}));
/// assert_eq!(rev, 1);
/// let (doc, rev) = store.get("profile/pay").unwrap();
/// assert_eq!(doc["warm_ms"], 2500);
/// assert_eq!(rev, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetaStore {
    docs: BTreeMap<String, (u64, Value)>,
}

impl MetaStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MetaStore::default()
    }

    /// Inserts or unconditionally overwrites a document, returning the new
    /// revision (1 for fresh documents).
    pub fn put(&mut self, id: &str, doc: Value) -> u64 {
        let rev = self.docs.get(id).map_or(0, |(r, _)| *r) + 1;
        self.docs.insert(id.to_string(), (rev, doc));
        rev
    }

    /// Updates a document only if `expected_rev` matches the stored
    /// revision (optimistic concurrency, CouchDB-style).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the document does not exist,
    /// [`StoreError::Conflict`] if the revision does not match.
    pub fn put_rev(&mut self, id: &str, doc: Value, expected_rev: u64) -> Result<u64, StoreError> {
        match self.docs.get_mut(id) {
            None => Err(StoreError::NotFound),
            Some((rev, stored)) => {
                if *rev != expected_rev {
                    return Err(StoreError::Conflict { current: *rev });
                }
                *rev += 1;
                *stored = doc;
                Ok(*rev)
            }
        }
    }

    /// Fetches a document and its revision.
    pub fn get(&self, id: &str) -> Option<(&Value, u64)> {
        self.docs.get(id).map(|(rev, doc)| (doc, *rev))
    }

    /// Deletes a document; returns whether it existed.
    pub fn delete(&mut self, id: &str) -> bool {
        self.docs.remove(id).is_some()
    }

    /// All documents whose id starts with `prefix`, in id order.
    pub fn query_prefix(&self, prefix: &str) -> Vec<(&str, &Value)> {
        self.docs
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, (_, v))| (k.as_str(), v))
            .collect()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn put_get_roundtrip_with_revisions() {
        let mut s = MetaStore::new();
        assert_eq!(s.put("a", json!(1)), 1);
        assert_eq!(s.put("a", json!(2)), 2);
        let (doc, rev) = s.get("a").unwrap();
        assert_eq!(doc, &json!(2));
        assert_eq!(rev, 2);
    }

    #[test]
    fn optimistic_concurrency() {
        let mut s = MetaStore::new();
        let rev = s.put("a", json!({"v": 1}));
        assert_eq!(s.put_rev("a", json!({"v": 2}), rev), Ok(2));
        assert_eq!(
            s.put_rev("a", json!({"v": 3}), rev),
            Err(StoreError::Conflict { current: 2 })
        );
        assert_eq!(
            s.put_rev("missing", json!(null), 1),
            Err(StoreError::NotFound)
        );
    }

    #[test]
    fn delete_and_emptiness() {
        let mut s = MetaStore::new();
        assert!(s.is_empty());
        s.put("a", json!(1));
        assert!(s.delete("a"));
        assert!(!s.delete("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn prefix_queries_scan_in_order() {
        let mut s = MetaStore::new();
        s.put("profile/b", json!(2));
        s.put("profile/a", json!(1));
        s.put("runs/0", json!(0));
        let profiles = s.query_prefix("profile/");
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].0, "profile/a");
        assert_eq!(profiles[1].0, "profile/b");
        assert!(s.query_prefix("ghost/").is_empty());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn deleted_doc_revision_restarts() {
        let mut s = MetaStore::new();
        s.put("a", json!(1));
        s.delete("a");
        assert_eq!(s.put("a", json!(1)), 1);
    }
}
