//! Revisioned JSON document store (the paper's CouchDB substitute).
//!
//! Xanadu "uses Apache CouchDB to store metrics and function
//! branch-related metadata", chosen for "native JSON data support" (§4).
//! This in-memory store preserves that usage pattern: JSON documents keyed
//! by id, optimistic concurrency via revision numbers, and prefix queries
//! for scanning related documents (function profiles, branch trees, run
//! results).

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Error from a conflicting or missing-document operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The supplied revision does not match the stored one.
    Conflict {
        /// The revision currently stored.
        current: u64,
    },
    /// No document with the given id exists.
    NotFound,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Conflict { current } => {
                write!(f, "revision conflict, current revision is {current}")
            }
            StoreError::NotFound => write!(f, "document not found"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An in-memory revisioned JSON document store.
///
/// # Example
///
/// ```
/// use xanadu_platform::metastore::MetaStore;
/// use serde_json::json;
///
/// let mut store = MetaStore::new();
/// let rev = store.put("profile/pay", json!({"warm_ms": 2500}));
/// assert_eq!(rev, 1);
/// let (doc, rev) = store.get("profile/pay").unwrap();
/// assert_eq!(doc["warm_ms"], 2500);
/// assert_eq!(rev, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetaStore {
    docs: BTreeMap<String, (u64, Value)>,
}

impl MetaStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MetaStore::default()
    }

    /// Inserts or unconditionally overwrites a document, returning the new
    /// revision (1 for fresh documents).
    pub fn put(&mut self, id: &str, doc: Value) -> u64 {
        let rev = self.docs.get(id).map_or(0, |(r, _)| *r) + 1;
        self.docs.insert(id.to_string(), (rev, doc));
        rev
    }

    /// Updates a document only if `expected_rev` matches the stored
    /// revision (optimistic concurrency, CouchDB-style).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the document does not exist,
    /// [`StoreError::Conflict`] if the revision does not match.
    pub fn put_rev(&mut self, id: &str, doc: Value, expected_rev: u64) -> Result<u64, StoreError> {
        match self.docs.get_mut(id) {
            None => Err(StoreError::NotFound),
            Some((rev, stored)) => {
                if *rev != expected_rev {
                    return Err(StoreError::Conflict { current: *rev });
                }
                *rev += 1;
                *stored = doc;
                Ok(*rev)
            }
        }
    }

    /// Fetches a document and its revision.
    pub fn get(&self, id: &str) -> Option<(&Value, u64)> {
        self.docs.get(id).map(|(rev, doc)| (doc, *rev))
    }

    /// Deletes a document; returns whether it existed.
    pub fn delete(&mut self, id: &str) -> bool {
        self.docs.remove(id).is_some()
    }

    /// All documents whose id starts with `prefix`, in id order.
    pub fn query_prefix(&self, prefix: &str) -> Vec<(&str, &Value)> {
        self.docs
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, (_, v))| (k.as_str(), v))
            .collect()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

// ---------------------------------------------------------------------
// SegmentLog — durable, append-only checkpoint storage
// ---------------------------------------------------------------------

/// Error from the on-disk checkpoint log.
#[derive(Debug)]
pub enum LogError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// The on-disk state is unparseable or fails integrity checks.
    Corrupt(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "checkpoint log I/O error: {e}"),
            LogError::Corrupt(msg) => write!(f, "checkpoint log corrupt: {msg}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// One committed segment, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentRef {
    /// Segment file name, relative to the log directory.
    pub file: String,
    /// Documents captured in the segment.
    pub docs: u64,
    /// FNV-1a digest of the segment file's bytes (`fnv1a64:<hex>`).
    pub digest: String,
}

/// The atomically-replaced index of committed segments
/// (`MANIFEST.json`, schema `docs/schemas/checkpoint.schema.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Log format version (currently 1).
    pub version: u32,
    /// Committed segments, oldest first.
    pub segments: Vec<SegmentRef>,
}

/// FNV-1a over `bytes` (the same digest the CLI prints for reports).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Writes `contents` to `path` atomically: a `.tmp` sibling is written
/// in full, then renamed over the target.
fn write_atomic(path: &Path, contents: &str) -> Result<(), LogError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Append-only segment log with an atomic manifest — the durable tier
/// under the in-memory [`MetaStore`].
///
/// The service tier appends one segment per checkpoint epoch; each
/// segment is a JSON object of document id → body. Recovery replays the
/// manifest's segments oldest-first into a fresh store (later segments
/// overwrite earlier revisions of the same id), verifying each
/// segment's digest. Because the manifest is replaced via
/// write-to-temp + rename, a crash mid-checkpoint leaves the previous
/// manifest intact and the half-written segment unreferenced.
#[derive(Debug, Clone)]
pub struct SegmentLog {
    dir: PathBuf,
}

impl SegmentLog {
    /// Opens (creating if needed) the log directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SegmentLog, LogError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SegmentLog { dir })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST.json")
    }

    /// Reads the manifest; an absent manifest is an empty log.
    pub fn manifest(&self) -> Result<Manifest, LogError> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(Manifest {
                version: 1,
                segments: Vec::new(),
            });
        }
        let text = std::fs::read_to_string(&path)?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| LogError::Corrupt(format!("manifest: {e:?}")))?;
        if manifest.version != 1 {
            return Err(LogError::Corrupt(format!(
                "unsupported manifest version {}",
                manifest.version
            )));
        }
        Ok(manifest)
    }

    /// Commits `docs` as the next segment: the segment file is written
    /// atomically, then the manifest is atomically replaced to reference
    /// it. Returns the new segment's manifest entry.
    pub fn append(&self, docs: &[(String, Value)]) -> Result<SegmentRef, LogError> {
        let mut manifest = self.manifest()?;
        let seq = manifest.segments.len() as u64;
        let file = format!("segment-{seq:06}.json");
        let mut body = Map::new();
        for (id, doc) in docs {
            body.insert(id.clone(), doc.clone());
        }
        let text = Value::Object(body).to_json_string_pretty();
        write_atomic(&self.dir.join(&file), &text)?;
        let entry = SegmentRef {
            file,
            docs: docs.len() as u64,
            digest: format!("fnv1a64:{:016x}", fnv1a64(text.as_bytes())),
        };
        manifest.segments.push(entry.clone());
        let manifest_text = serde_json::to_string_pretty(&manifest)
            .map_err(|e| LogError::Corrupt(format!("{e:?}")))?;
        write_atomic(&self.manifest_path(), &manifest_text)?;
        Ok(entry)
    }

    /// Replays every manifest-referenced segment, oldest first, into a
    /// fresh [`MetaStore`], verifying each segment's digest.
    pub fn replay(&self) -> Result<MetaStore, LogError> {
        let manifest = self.manifest()?;
        let mut store = MetaStore::new();
        for seg in &manifest.segments {
            let text = std::fs::read_to_string(self.dir.join(&seg.file))?;
            let digest = format!("fnv1a64:{:016x}", fnv1a64(text.as_bytes()));
            if digest != seg.digest {
                return Err(LogError::Corrupt(format!(
                    "{}: digest {} does not match manifest {}",
                    seg.file, digest, seg.digest
                )));
            }
            let body: Value = serde_json::from_str(&text)
                .map_err(|e| LogError::Corrupt(format!("{}: {e:?}", seg.file)))?;
            let docs = body
                .as_object()
                .ok_or_else(|| LogError::Corrupt(format!("{}: not an object", seg.file)))?;
            if docs.len() as u64 != seg.docs {
                return Err(LogError::Corrupt(format!(
                    "{}: holds {} docs, manifest says {}",
                    seg.file,
                    docs.len(),
                    seg.docs
                )));
            }
            for (id, doc) in docs {
                store.put(id, doc.clone());
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn put_get_roundtrip_with_revisions() {
        let mut s = MetaStore::new();
        assert_eq!(s.put("a", json!(1)), 1);
        assert_eq!(s.put("a", json!(2)), 2);
        let (doc, rev) = s.get("a").unwrap();
        assert_eq!(doc, &json!(2));
        assert_eq!(rev, 2);
    }

    #[test]
    fn optimistic_concurrency() {
        let mut s = MetaStore::new();
        let rev = s.put("a", json!({"v": 1}));
        assert_eq!(s.put_rev("a", json!({"v": 2}), rev), Ok(2));
        assert_eq!(
            s.put_rev("a", json!({"v": 3}), rev),
            Err(StoreError::Conflict { current: 2 })
        );
        assert_eq!(
            s.put_rev("missing", json!(null), 1),
            Err(StoreError::NotFound)
        );
    }

    #[test]
    fn delete_and_emptiness() {
        let mut s = MetaStore::new();
        assert!(s.is_empty());
        s.put("a", json!(1));
        assert!(s.delete("a"));
        assert!(!s.delete("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn prefix_queries_scan_in_order() {
        let mut s = MetaStore::new();
        s.put("profile/b", json!(2));
        s.put("profile/a", json!(1));
        s.put("runs/0", json!(0));
        let profiles = s.query_prefix("profile/");
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].0, "profile/a");
        assert_eq!(profiles[1].0, "profile/b");
        assert!(s.query_prefix("ghost/").is_empty());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn deleted_doc_revision_restarts() {
        let mut s = MetaStore::new();
        s.put("a", json!(1));
        s.delete("a");
        assert_eq!(s.put("a", json!(1)), 1);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xanadu-segment-log-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn doc(text: &str) -> Value {
        serde_json::from_str(text).expect("test doc parses")
    }

    #[test]
    fn segment_log_append_and_replay_roundtrip() {
        let dir = scratch_dir("roundtrip");
        let log = SegmentLog::open(&dir).unwrap();
        assert!(log.manifest().unwrap().segments.is_empty());

        log.append(&[
            ("learned/metrics".to_string(), doc(r#"{"warm_ms": 2500}"#)),
            ("serve/cursor".to_string(), doc(r#"{"events": 100}"#)),
        ])
        .unwrap();
        log.append(&[("serve/cursor".to_string(), doc(r#"{"events": 200}"#))])
            .unwrap();

        let manifest = log.manifest().unwrap();
        assert_eq!(manifest.segments.len(), 2);
        assert_eq!(manifest.segments[0].file, "segment-000000.json");
        assert_eq!(manifest.segments[1].docs, 1);

        let store = log.replay().unwrap();
        assert_eq!(store.len(), 2);
        let (cursor, rev) = store.get("serve/cursor").unwrap();
        assert_eq!(cursor.get("events").and_then(|v| v.as_u64()), Some(200));
        assert_eq!(rev, 2, "later segments overwrite earlier revisions");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_log_detects_corruption() {
        let dir = scratch_dir("corrupt");
        let log = SegmentLog::open(&dir).unwrap();
        let entry = log.append(&[("a".to_string(), doc("1"))]).unwrap();
        std::fs::write(dir.join(&entry.file), "{\"a\": 2}").unwrap();
        match log.replay() {
            Err(LogError::Corrupt(msg)) => assert!(msg.contains("digest"), "{msg}"),
            other => panic!("expected digest mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_log_reopen_appends_after_existing_segments() {
        let dir = scratch_dir("reopen");
        {
            let log = SegmentLog::open(&dir).unwrap();
            log.append(&[("a".to_string(), doc("1"))]).unwrap();
        }
        let log = SegmentLog::open(&dir).unwrap();
        let entry = log.append(&[("b".to_string(), doc("2"))]).unwrap();
        assert_eq!(entry.file, "segment-000001.json");
        assert_eq!(log.replay().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
