//! Deterministic fault injection.
//!
//! Production DAG engines treat worker loss and stragglers as the common
//! case; a platform that only handles the happy path cannot claim graceful
//! degradation. This module supplies the *injection* half of that story: a
//! seeded [`FaultPlan`] that decides — purely from identities (worker id,
//! request id, node id, attempt number) and the fault seed — when a
//! sandbox dies and when an invocation stalls. The *recovery* half lives
//! in [`crate::Platform`]: timeouts, bounded retry with exponential
//! backoff, crash-aware pool repair, and plan re-planning.
//!
//! Two properties are load-bearing:
//!
//! * **Determinism.** Every draw comes from a child stream keyed on stable
//!   identities, never from shared mutable RNG state, so the same fault
//!   seed produces the same fault schedule regardless of event
//!   interleaving or how many runs share the process.
//! * **Isolation.** The fault streams are derived from their own seed,
//!   separate from the platform's branch/service/overhead streams. With
//!   faults disabled ([`FaultConfig::rate`] = 0) the platform's RNG
//!   sequences are untouched and every existing result is byte-identical.

use serde::{Deserialize, Serialize};
use xanadu_simcore::{RngStream, SimDuration, SimTime};

/// Serde default for [`FaultConfig::seed`].
fn default_fault_seed() -> u64 {
    0xFA17
}

/// Serde default for [`FaultConfig::spike_factor`].
fn default_spike_factor() -> f64 {
    8.0
}

/// Serde default for [`FaultConfig::timeout_ms`].
fn default_timeout_ms() -> f64 {
    10_000.0
}

/// Serde default for [`FaultConfig::max_retries`].
fn default_max_retries() -> u32 {
    3
}

/// Serde default for [`FaultConfig::backoff_ms`].
fn default_backoff_ms() -> f64 {
    200.0
}

/// Serde default for [`FaultConfig::host_mtbf_ms`].
fn default_host_mtbf_ms() -> f64 {
    120_000.0
}

/// Serde default for [`FaultConfig::host_reboot_ms`].
fn default_host_reboot_ms() -> f64 {
    30_000.0
}

/// Configuration of the fault injector.
///
/// `rate` is the master knob: the probability that any given worker
/// crashes during its lifetime, and independently that any given
/// invocation attempt suffers a latency spike. `0.0` (the default)
/// disables injection entirely — the platform behaves exactly as before
/// the fault subsystem existed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that a worker crashes / an invocation
    /// attempt spikes. 0 disables fault injection.
    #[serde(default)]
    pub rate: f64,
    /// Seed of the fault RNG streams, independent of the platform seed so
    /// the same workload can be replayed under different fault schedules.
    #[serde(default = "default_fault_seed")]
    pub seed: u64,
    /// Multiplier applied to a spiked invocation's service time.
    #[serde(default = "default_spike_factor")]
    pub spike_factor: f64,
    /// Per-invocation timeout: an attempt whose effective service time
    /// exceeds this is aborted and retried.
    #[serde(default = "default_timeout_ms")]
    pub timeout_ms: f64,
    /// Retry budget per (request, node). After this many failed attempts
    /// the final attempt runs shielded (fresh worker, no injected spike)
    /// so every request is guaranteed to terminate.
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
    /// Base retry backoff; attempt `n` waits `backoff_ms · 2^n`.
    #[serde(default = "default_backoff_ms")]
    pub backoff_ms: f64,
    /// Probability in `[0, 1]` that a host fails during any one of its
    /// uptime epochs. 0 (the default) disables host failure injection,
    /// independently of the worker/invocation `rate`.
    #[serde(default)]
    pub host_failure_rate: f64,
    /// Width of the uptime window a doomed host's failure instant is
    /// drawn from, per epoch.
    #[serde(default = "default_host_mtbf_ms")]
    pub host_mtbf_ms: f64,
    /// How long a failed host stays down before rebooting (while the
    /// platform still has requests in flight).
    #[serde(default = "default_host_reboot_ms")]
    pub host_reboot_ms: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            rate: 0.0,
            seed: default_fault_seed(),
            spike_factor: default_spike_factor(),
            timeout_ms: default_timeout_ms(),
            max_retries: default_max_retries(),
            backoff_ms: default_backoff_ms(),
            host_failure_rate: 0.0,
            host_mtbf_ms: default_host_mtbf_ms(),
            host_reboot_ms: default_host_reboot_ms(),
        }
    }
}

impl FaultConfig {
    /// Whether worker/invocation faults will be injected.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// Whether host failures will be injected.
    pub fn hosts_enabled(&self) -> bool {
        self.host_failure_rate > 0.0
    }

    /// Convenience constructor: host failures at `host_failure_rate` with
    /// a specific fault seed (worker/invocation faults stay off).
    pub fn with_host_rate(host_failure_rate: f64, seed: u64) -> Self {
        FaultConfig {
            host_failure_rate,
            seed,
            ..Default::default()
        }
    }

    /// Convenience constructor: the default schedule at `rate` with a
    /// specific fault seed.
    pub fn with_rate(rate: f64, seed: u64) -> Self {
        FaultConfig {
            rate,
            seed,
            ..Default::default()
        }
    }

    /// Backoff before retry attempt `attempt` (0-based): `backoff · 2^n`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        SimDuration::from_millis_f64(self.backoff_ms * f64::from(1u32 << attempt.min(16)))
    }
}

/// The seeded fault schedule. All decisions are pure functions of stable
/// identities, so the schedule is independent of event interleaving.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    rng_worker: RngStream,
    rng_invoke: RngStream,
    rng_host: RngStream,
}

impl FaultPlan {
    /// Builds the plan for `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            rng_worker: RngStream::derive(config.seed, "fault-worker"),
            rng_invoke: RngStream::derive(config.seed, "fault-invoke"),
            rng_host: RngStream::derive(config.seed, "fault-host"),
            config,
        }
    }

    /// The injector's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether worker/invocation faults will be injected.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Whether host failures will be injected.
    pub fn hosts_enabled(&self) -> bool {
        self.config.hosts_enabled()
    }

    /// Decides whether (and when) worker `worker` crashes.
    ///
    /// A doomed worker gets one absolute crash instant drawn uniformly
    /// over `[provisioned, ready + 60 s)` — covering startup (crash before
    /// `ready`: a sandbox startup failure), warm idling, and execution.
    /// What the crash *means* is decided by the worker's state when the
    /// crash event fires, not here.
    pub fn crash_time(&self, worker: u64, provisioned: SimTime, ready: SimTime) -> Option<SimTime> {
        if !self.enabled() {
            return None;
        }
        let mut rng = self.rng_worker.child(worker);
        if rng.next_f64() >= self.config.rate {
            return None;
        }
        let startup = ready.saturating_since(provisioned);
        let window = startup + startup + SimDuration::from_secs(60);
        let offset_ms = rng.next_f64() * window.as_millis_f64();
        Some(provisioned + SimDuration::from_millis_f64(offset_ms))
    }

    /// Decides whether (and when) host `host` fails during uptime epoch
    /// `epoch` starting at `up_since`.
    ///
    /// Like [`crash_time`](FaultPlan::crash_time), the decision is a pure
    /// function of identities — `(host, epoch)` keys a child stream — so
    /// the host failure schedule is independent of event interleaving. A
    /// doomed epoch gets one failure instant drawn uniformly over
    /// `[up_since, up_since + host_mtbf_ms)`.
    pub fn host_crash_time(&self, host: u32, epoch: u32, up_since: SimTime) -> Option<SimTime> {
        if !self.hosts_enabled() {
            return None;
        }
        let key = u64::from(host) | (u64::from(epoch) << 32);
        let mut rng = self.rng_host.child(key);
        if rng.next_f64() >= self.config.host_failure_rate {
            return None;
        }
        let offset_ms = rng.next_f64() * self.config.host_mtbf_ms;
        Some(up_since + SimDuration::from_millis_f64(offset_ms))
    }

    /// Decides whether attempt `attempt` of invoking `node` for request
    /// `req` suffers a latency spike, returning the service-time
    /// multiplier if so.
    pub fn spike(&self, req: u64, node: usize, attempt: u32) -> Option<f64> {
        if !self.enabled() {
            return None;
        }
        let key =
            req.wrapping_mul(1_000_003) ^ (node as u64).wrapping_mul(10_007) ^ u64::from(attempt);
        let mut rng = self.rng_invoke.child(key);
        if rng.next_f64() < self.config.rate {
            Some(self.config.spike_factor)
        } else {
            None
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(FaultConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig::with_rate(rate, 99))
    }

    #[test]
    fn disabled_injects_nothing() {
        let p = plan(0.0);
        assert!(!p.enabled());
        for w in 0..200 {
            assert_eq!(p.crash_time(w, SimTime::ZERO, SimTime::from_secs(3)), None);
            assert_eq!(p.spike(w, 0, 0), None);
        }
    }

    #[test]
    fn full_rate_dooms_every_worker_and_attempt() {
        let p = plan(1.0);
        for w in 0..50 {
            let t = p
                .crash_time(w, SimTime::from_secs(1), SimTime::from_secs(4))
                .expect("rate 1.0 crashes all");
            assert!(t >= SimTime::from_secs(1));
            // Window: provisioned + 2·startup + 60 s = 1 + 6 + 60 = 67 s.
            assert!(t < SimTime::from_secs(67));
            assert_eq!(p.spike(w, 3, 0), Some(8.0));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let a = plan(0.3);
        let b = plan(0.3);
        // Query in opposite orders: identity-keyed child streams must give
        // identical answers.
        let fwd: Vec<_> = (0..100)
            .map(|w| a.crash_time(w, SimTime::ZERO, SimTime::from_secs(2)))
            .collect();
        let rev: Vec<_> = (0..100)
            .rev()
            .map(|w| b.crash_time(w, SimTime::ZERO, SimTime::from_secs(2)))
            .collect();
        let rev_fwd: Vec<_> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev_fwd);
        assert!(fwd.iter().any(Option::is_some));
        assert!(fwd.iter().any(Option::is_none));
        // Repeated queries agree too (no internal state consumed).
        for w in 0..100 {
            assert_eq!(
                a.crash_time(w, SimTime::ZERO, SimTime::from_secs(2)),
                fwd[w as usize]
            );
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(FaultConfig::with_rate(0.5, 1));
        let b = FaultPlan::new(FaultConfig::with_rate(0.5, 2));
        let sa: Vec<_> = (0..200).map(|w| a.spike(w, 0, 0).is_some()).collect();
        let sb: Vec<_> = (0..200).map(|w| b.spike(w, 0, 0).is_some()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn spike_varies_by_attempt() {
        // A spiked first attempt must not doom every retry: the attempt
        // number is part of the key.
        let p = plan(0.5);
        let outcomes: Vec<bool> = (0..32).map(|a| p.spike(7, 2, a).is_some()).collect();
        assert!(outcomes.iter().any(|&s| s));
        assert!(outcomes.iter().any(|&s| !s));
    }

    #[test]
    fn backoff_is_exponential() {
        let c = FaultConfig::with_rate(0.1, 0);
        assert_eq!(c.backoff(0), SimDuration::from_millis_f64(200.0));
        assert_eq!(c.backoff(1), SimDuration::from_millis_f64(400.0));
        assert_eq!(c.backoff(3), SimDuration::from_millis_f64(1600.0));
    }

    #[test]
    fn config_serde_defaults() {
        let c: FaultConfig = serde_json::from_str("{\"rate\": 0.25}").unwrap();
        assert_eq!(c.rate, 0.25);
        assert_eq!(c.seed, 0xFA17);
        assert_eq!(c.max_retries, 3);
        assert!(c.enabled());
        assert!(!c.hosts_enabled());
        assert_eq!(c.host_mtbf_ms, 120_000.0);
        assert_eq!(c.host_reboot_ms, 30_000.0);
    }

    #[test]
    fn host_failures_are_independent_of_worker_faults() {
        let p = FaultPlan::new(FaultConfig::with_host_rate(1.0, 7));
        assert!(!p.enabled());
        assert!(p.hosts_enabled());
        // Worker faults stay off; every host epoch is doomed.
        assert_eq!(p.crash_time(0, SimTime::ZERO, SimTime::from_secs(1)), None);
        let t = p
            .host_crash_time(0, 0, SimTime::from_secs(10))
            .expect("rate 1.0 fails every epoch");
        assert!(t >= SimTime::from_secs(10));
        assert!(t < SimTime::from_secs(130), "within the mtbf window");
    }

    #[test]
    fn host_crash_times_are_keyed_by_host_and_epoch() {
        let a = FaultPlan::new(FaultConfig::with_host_rate(0.5, 3));
        let b = FaultPlan::new(FaultConfig::with_host_rate(0.5, 3));
        let fwd: Vec<_> = (0..64)
            .flat_map(|h| (0..4).map(move |e| (h, e)))
            .map(|(h, e)| a.host_crash_time(h, e, SimTime::ZERO))
            .collect();
        let rev: Vec<_> = (0..64)
            .flat_map(|h| (0..4).map(move |e| (h, e)))
            .rev()
            .map(|(h, e)| b.host_crash_time(h, e, SimTime::ZERO))
            .collect();
        let rev_fwd: Vec<_> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev_fwd);
        assert!(fwd.iter().any(Option::is_some));
        assert!(fwd.iter().any(Option::is_none));
        // Consecutive epochs of the same host draw independently.
        let per_epoch: Vec<bool> = (0..32)
            .map(|e| a.host_crash_time(5, e, SimTime::ZERO).is_some())
            .collect();
        assert!(per_epoch.iter().any(|&s| s));
        assert!(per_epoch.iter().any(|&s| !s));
    }
}
