//! Dispatch Daemons: the per-host worker-management layer.
//!
//! In the paper's architecture (Figure 11) "the Dispatch Daemon (DD) runs
//! on individual host machines and performs resource provisioning and
//! maintenance of Xanadu workers", while the central Dispatch Manager
//! decides *what* to provision. This module models that layer: a registry
//! of hosts with memory capacity, a placement policy choosing the host
//! for each new worker, and per-host load accounting.
//!
//! Placement matters for the cost model: a saturated host delays
//! provisioning (the request queues at the daemon), and co-locating many
//! provisioning containers on one host amplifies the Docker concurrency
//! bottleneck. The default single-host registry reproduces the paper's
//! single 64-core testbed.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use xanadu_sandbox::WorkerId;

/// Identifier of a host (a machine running a Dispatch Daemon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Static description of one host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Human-readable name.
    pub name: String,
    /// Memory capacity in MB available to workers.
    pub memory_mb: u64,
}

/// How the Dispatch Manager chooses a host for a new worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Cycle through hosts regardless of load.
    RoundRobin,
    /// Choose the host with the most free memory (default; ties broken by
    /// host id for determinism).
    #[default]
    LeastLoaded,
    /// Choose the first host (lowest id) with enough free memory.
    FirstFit,
}

/// Error placing a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// No host has enough free memory for the requested worker.
    ClusterFull {
        /// The memory that was requested, in MB.
        requested_mb: u32,
    },
    /// The registry has no hosts at all.
    NoHosts,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::ClusterFull { requested_mb } => {
                write!(f, "no host has {requested_mb} MB free")
            }
            PlacementError::NoHosts => write!(f, "host registry is empty"),
        }
    }
}

impl std::error::Error for PlacementError {}

#[derive(Debug, Clone)]
struct HostState {
    spec: HostSpec,
    used_mb: u64,
    workers: HashMap<WorkerId, u32>,
}

/// The cluster view: every registered host plus which worker lives where.
///
/// # Example
///
/// ```
/// use xanadu_platform::hosts::{HostRegistry, HostSpec, PlacementPolicy};
/// use xanadu_sandbox::WorkerId;
///
/// let mut cluster = HostRegistry::new(PlacementPolicy::LeastLoaded);
/// let a = cluster.add_host(HostSpec { name: "a".into(), memory_mb: 1024 });
/// let b = cluster.add_host(HostSpec { name: "b".into(), memory_mb: 1024 });
///
/// let h1 = cluster.place(WorkerId(1), 512)?;
/// let h2 = cluster.place(WorkerId(2), 512)?;
/// // Least-loaded spreads the two workers across both hosts.
/// assert_ne!(h1, h2);
/// assert_eq!(cluster.free_mb(a) + cluster.free_mb(b), 1024);
/// # Ok::<(), xanadu_platform::hosts::PlacementError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HostRegistry {
    policy: PlacementPolicy,
    hosts: Vec<HostState>,
    next_round_robin: usize,
    location: HashMap<WorkerId, HostId>,
}

impl HostRegistry {
    /// Creates an empty registry with the given placement policy.
    pub fn new(policy: PlacementPolicy) -> Self {
        HostRegistry {
            policy,
            hosts: Vec::new(),
            next_round_robin: 0,
            location: HashMap::new(),
        }
    }

    /// A single-host cluster mirroring the paper's testbed: one 64-core /
    /// 128 GB machine (§5).
    pub fn paper_testbed() -> Self {
        let mut r = HostRegistry::new(PlacementPolicy::LeastLoaded);
        r.add_host(HostSpec {
            name: "xeon-64c-128g".into(),
            memory_mb: 128 * 1024,
        });
        r
    }

    /// Registers a host, returning its id.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(HostState {
            spec,
            used_mb: 0,
            workers: HashMap::new(),
        });
        id
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the registry has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The placement policy in use.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Free memory on `host` in MB.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not registered.
    pub fn free_mb(&self, host: HostId) -> u64 {
        let h = &self.hosts[host.0 as usize];
        h.spec.memory_mb - h.used_mb
    }

    /// Number of workers currently placed on `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not registered.
    pub fn worker_count(&self, host: HostId) -> usize {
        self.hosts[host.0 as usize].workers.len()
    }

    /// The host a worker was placed on, if it is placed.
    pub fn host_of(&self, worker: WorkerId) -> Option<HostId> {
        self.location.get(&worker).copied()
    }

    /// Places a worker needing `memory_mb` MB, charging the host.
    ///
    /// # Errors
    ///
    /// [`PlacementError::NoHosts`] if the registry is empty, or
    /// [`PlacementError::ClusterFull`] if no host can fit the worker.
    pub fn place(&mut self, worker: WorkerId, memory_mb: u32) -> Result<HostId, PlacementError> {
        if self.hosts.is_empty() {
            return Err(PlacementError::NoHosts);
        }
        let need = u64::from(memory_mb);
        let fits = |h: &HostState| h.spec.memory_mb - h.used_mb >= need;
        let chosen = match self.policy {
            PlacementPolicy::FirstFit => self.hosts.iter().position(fits),
            PlacementPolicy::LeastLoaded => self
                .hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| fits(h))
                .max_by_key(|(i, h)| (h.spec.memory_mb - h.used_mb, std::cmp::Reverse(*i)))
                .map(|(i, _)| i),
            PlacementPolicy::RoundRobin => {
                let n = self.hosts.len();
                (0..n)
                    .map(|k| (self.next_round_robin + k) % n)
                    .find(|&i| fits(&self.hosts[i]))
            }
        };
        let Some(index) = chosen else {
            return Err(PlacementError::ClusterFull {
                requested_mb: memory_mb,
            });
        };
        if self.policy == PlacementPolicy::RoundRobin {
            self.next_round_robin = (index + 1) % self.hosts.len();
        }
        let host = HostId(index as u32);
        let state = &mut self.hosts[index];
        state.used_mb += need;
        state.workers.insert(worker, memory_mb);
        self.location.insert(worker, host);
        Ok(host)
    }

    /// Releases a worker's memory back to its host. Unknown workers are
    /// ignored (idempotent teardown).
    pub fn release(&mut self, worker: WorkerId) {
        if let Some(host) = self.location.remove(&worker) {
            let state = &mut self.hosts[host.0 as usize];
            if let Some(mb) = state.workers.remove(&worker) {
                state.used_mb -= u64::from(mb);
            }
        }
    }

    /// Total memory in use across the cluster, in MB.
    pub fn total_used_mb(&self) -> u64 {
        self.hosts.iter().map(|h| h.used_mb).sum()
    }
}

impl Default for HostRegistry {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hosts(policy: PlacementPolicy) -> HostRegistry {
        let mut r = HostRegistry::new(policy);
        r.add_host(HostSpec {
            name: "a".into(),
            memory_mb: 2048,
        });
        r.add_host(HostSpec {
            name: "b".into(),
            memory_mb: 2048,
        });
        r
    }

    #[test]
    fn least_loaded_balances() {
        let mut r = two_hosts(PlacementPolicy::LeastLoaded);
        let mut counts = [0usize; 2];
        for i in 0..8 {
            let h = r.place(WorkerId(i), 512).unwrap();
            counts[h.0 as usize] += 1;
        }
        assert_eq!(counts, [4, 4]);
        assert_eq!(r.total_used_mb(), 8 * 512);
    }

    #[test]
    fn first_fit_fills_in_order() {
        let mut r = two_hosts(PlacementPolicy::FirstFit);
        for i in 0..4 {
            assert_eq!(r.place(WorkerId(i), 512).unwrap(), HostId(0));
        }
        // Host 0 is full at 2048 MB; next goes to host 1.
        assert_eq!(r.place(WorkerId(9), 512).unwrap(), HostId(1));
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = two_hosts(PlacementPolicy::RoundRobin);
        let hosts: Vec<u32> = (0..4)
            .map(|i| r.place(WorkerId(i), 128).unwrap().0)
            .collect();
        assert_eq!(hosts, vec![0, 1, 0, 1]);
    }

    #[test]
    fn round_robin_skips_full_hosts() {
        let mut r = two_hosts(PlacementPolicy::RoundRobin);
        r.place(WorkerId(0), 2048).unwrap(); // host 0 full
        assert_eq!(r.place(WorkerId(1), 512).unwrap(), HostId(1));
        assert_eq!(r.place(WorkerId(2), 512).unwrap(), HostId(1));
    }

    #[test]
    fn cluster_full_and_no_hosts_errors() {
        let mut empty = HostRegistry::new(PlacementPolicy::LeastLoaded);
        assert_eq!(empty.place(WorkerId(0), 64), Err(PlacementError::NoHosts));
        let mut r = two_hosts(PlacementPolicy::LeastLoaded);
        r.place(WorkerId(0), 2048).unwrap();
        r.place(WorkerId(1), 2048).unwrap();
        assert_eq!(
            r.place(WorkerId(2), 1),
            Err(PlacementError::ClusterFull { requested_mb: 1 })
        );
    }

    #[test]
    fn release_returns_capacity() {
        let mut r = two_hosts(PlacementPolicy::FirstFit);
        let h = r.place(WorkerId(0), 2048).unwrap();
        assert_eq!(r.free_mb(h), 0);
        assert_eq!(r.host_of(WorkerId(0)), Some(h));
        r.release(WorkerId(0));
        assert_eq!(r.free_mb(h), 2048);
        assert_eq!(r.host_of(WorkerId(0)), None);
        r.release(WorkerId(0)); // idempotent
        assert_eq!(r.worker_count(h), 0);
    }

    #[test]
    fn paper_testbed_is_single_large_host() {
        let r = HostRegistry::paper_testbed();
        assert_eq!(r.len(), 1);
        assert_eq!(r.free_mb(HostId(0)), 128 * 1024);
        assert!(!r.is_empty());
    }

    #[test]
    fn displays() {
        assert_eq!(HostId(3).to_string(), "host3");
        let e = PlacementError::ClusterFull { requested_mb: 512 };
        assert!(e.to_string().contains("512"));
    }
}
