//! Dispatch Daemons: the cluster scheduling layer.
//!
//! In the paper's architecture (Figure 11) "the Dispatch Daemon (DD) runs
//! on individual host machines and performs resource provisioning and
//! maintenance of Xanadu workers", while the central Dispatch Manager
//! decides *what* to provision. This module models that layer as a full
//! cluster scheduler:
//!
//! * **Per-host capacity** plus a **provisioning-contention curve**: each
//!   concurrent provision on a host inflates cold starts by the host's
//!   `contention_alpha` (the Docker concurrency bottleneck of §2.3).
//! * **Pluggable placement**: round-robin, least-loaded, first-fit,
//!   seeded random, and *affinity* — co-locate a request's chain
//!   neighbors on one host (per ICPS, co-location cuts invocation delay
//!   because warm-container retargeting is host-local).
//! * **Tenant quotas with weighted fair admission**: on-demand placements
//!   are admitted up to the tenant's quota; speculative placements only
//!   up to its weighted fair share of the live capacity, so a hot tenant
//!   cannot starve others with pre-deployments.
//! * **Host lifecycle for autoscaling and fault injection**: hosts are
//!   `Up`, `Booting` or `Down`; the registry reserves deterministic host
//!   ids for scale-ups and drains failed hosts so the platform can
//!   re-place their workers.
//!
//! Placement matters for the cost model: a saturated host delays
//! provisioning (the request queues at the daemon), and co-locating many
//! provisioning containers on one host amplifies the Docker concurrency
//! bottleneck. The default single-host registry reproduces the paper's
//! single 64-core testbed byte-for-byte.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use xanadu_sandbox::WorkerId;
use xanadu_simcore::RngStream;

/// Identifier of a host (a machine running a Dispatch Daemon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Static description of one host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Human-readable name.
    pub name: String,
    /// Memory capacity in MB available to workers.
    pub memory_mb: u64,
    /// Provisioning-contention slope: each *other* worker concurrently
    /// provisioning on this host inflates a cold start by this fraction
    /// (`total · (1 + alpha · concurrent)`). 0 (the default) disables the
    /// curve, keeping single-host runs byte-identical to the pre-cluster
    /// model.
    #[serde(default)]
    pub contention_alpha: f64,
}

impl HostSpec {
    /// A host with `memory_mb` MB and no contention curve.
    pub fn new(name: impl Into<String>, memory_mb: u64) -> Self {
        HostSpec {
            name: name.into(),
            memory_mb,
            contention_alpha: 0.0,
        }
    }

    /// Builder-style contention-curve override.
    pub fn with_contention(mut self, alpha: f64) -> Self {
        self.contention_alpha = alpha;
        self
    }
}

/// How the Dispatch Manager chooses a host for a new worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Cycle through hosts regardless of load.
    RoundRobin,
    /// Choose the host with the most free memory (default; ties broken by
    /// host id for determinism).
    #[default]
    LeastLoaded,
    /// Choose the first host (lowest id) with enough free memory.
    FirstFit,
    /// Choose uniformly among fitting hosts, seeded by the worker id so
    /// the draw is deterministic and order-independent.
    Random,
    /// Co-locate a request's workers: prefer the fitting host already
    /// holding the most workers of the same request (ties: more free
    /// memory, then lower id). With no co-location opportunity this
    /// degenerates to least-loaded, so affinity never regresses a
    /// placement least-loaded would have made for free.
    Affinity,
}

impl PlacementPolicy {
    /// Stable kebab-case label (CLI values, report rows).
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::Random => "random",
            PlacementPolicy::Affinity => "affinity",
        }
    }

    /// Every policy, in a stable order (sweeps, head-to-head tables).
    pub const ALL: [PlacementPolicy; 5] = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::FirstFit,
        PlacementPolicy::Random,
        PlacementPolicy::Affinity,
    ];
}

impl std::str::FromStr for PlacementPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PlacementPolicy::ALL
            .iter()
            .copied()
            .find(|p| p.label() == s)
            .ok_or_else(|| format!("unknown placement policy `{s}`"))
    }
}

/// One tenant sharing the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Tenant name (report rows, error messages).
    pub name: String,
    /// Fair-share weight; speculative placements are admitted up to
    /// `capacity · weight / Σweights`.
    #[serde(default = "default_tenant_weight")]
    pub weight: f64,
    /// Hard memory quota in MB (0 = unlimited). On-demand placements are
    /// admitted up to the quota; it is never exceeded by a placement.
    #[serde(default)]
    pub quota_mb: u64,
    /// Workflows owned by this tenant. Workflows listed by no tenant are
    /// hashed onto one deterministically.
    #[serde(default)]
    pub workflows: Vec<String>,
}

fn default_tenant_weight() -> f64 {
    1.0
}

impl TenantConfig {
    /// A tenant with weight 1 and no quota.
    pub fn new(name: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            weight: 1.0,
            quota_mb: 0,
            workflows: Vec::new(),
        }
    }
}

/// Reactive fleet autoscaling. Disabled unless `max_hosts > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Fleet ceiling, counting live and booting hosts. 0 disables
    /// autoscaling.
    #[serde(default)]
    pub max_hosts: u32,
    /// Memory of each autoscaled host, MB.
    #[serde(default = "default_autoscale_memory_mb")]
    pub host_memory_mb: u64,
    /// Boot latency of an autoscaled host, ms.
    #[serde(default = "default_autoscale_boot_ms")]
    pub boot_ms: f64,
    /// Scale up when free memory falls below this fraction of live
    /// capacity (or when no host is live at all).
    #[serde(default = "default_autoscale_free_pct")]
    pub scale_up_free_pct: f64,
}

fn default_autoscale_memory_mb() -> u64 {
    4096
}

fn default_autoscale_boot_ms() -> f64 {
    5_000.0
}

fn default_autoscale_free_pct() -> f64 {
    0.25
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            max_hosts: 0,
            host_memory_mb: default_autoscale_memory_mb(),
            boot_ms: default_autoscale_boot_ms(),
            scale_up_free_pct: default_autoscale_free_pct(),
        }
    }
}

impl AutoscaleConfig {
    /// Whether autoscaling is on.
    pub fn enabled(&self) -> bool {
        self.max_hosts > 0
    }
}

/// Error placing a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// No live host has enough free memory for the requested worker.
    ClusterFull {
        /// The memory that was requested, in MB.
        requested_mb: u32,
    },
    /// The registry has no live hosts at all.
    NoHosts,
    /// The placement would push the tenant past its hard quota.
    QuotaExceeded {
        /// Offending tenant.
        tenant: String,
        /// Its quota, MB.
        quota_mb: u64,
    },
    /// A *speculative* placement would push the tenant past its weighted
    /// fair share of live capacity.
    FairShareExceeded {
        /// Offending tenant.
        tenant: String,
        /// Its current fair share, MB.
        share_mb: u64,
    },
}

impl PlacementError {
    /// Whether the rejection is tenant admission control (quota / fair
    /// share) rather than physical capacity.
    pub fn is_admission(&self) -> bool {
        matches!(
            self,
            PlacementError::QuotaExceeded { .. } | PlacementError::FairShareExceeded { .. }
        )
    }
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::ClusterFull { requested_mb } => {
                write!(f, "no host has {requested_mb} MB free")
            }
            PlacementError::NoHosts => write!(f, "no live hosts in the registry"),
            PlacementError::QuotaExceeded { tenant, quota_mb } => {
                write!(f, "tenant `{tenant}` is at its {quota_mb} MB quota")
            }
            PlacementError::FairShareExceeded { tenant, share_mb } => {
                write!(
                    f,
                    "tenant `{tenant}` is past its {share_mb} MB fair share \
                     (speculative placement rejected)"
                )
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Everything the Dispatch Manager knows when placing one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementRequest {
    /// The worker being placed.
    pub worker: WorkerId,
    /// Its memory footprint, MB.
    pub memory_mb: u32,
    /// The request it is provisioned for (drives affinity).
    pub request: Option<u64>,
    /// The owning tenant (index into the registry's tenant table).
    pub tenant: Option<u32>,
    /// Whether a request is actively waiting on this worker (on-demand)
    /// or it is a speculative pre-deployment.
    pub on_demand: bool,
}

impl PlacementRequest {
    /// An anonymous on-demand placement (no request affinity, no tenant).
    pub fn bare(worker: WorkerId, memory_mb: u32) -> Self {
        PlacementRequest {
            worker,
            memory_mb,
            request: None,
            tenant: None,
            on_demand: true,
        }
    }
}

/// Host lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum HostHealth {
    Up,
    Booting,
    Down,
}

#[derive(Debug, Clone)]
struct HostState {
    spec: HostSpec,
    health: HostHealth,
    /// Bumped on every failure (and by [`HostRegistry::bump_epochs`]) so
    /// stale scheduled crash events can be recognized and dropped.
    epoch: u32,
    used_mb: u64,
    peak_used_mb: u64,
    provisioning: u32,
    workers: HashMap<WorkerId, u32>,
    placed: u64,
    evicted: u64,
    failures: u64,
}

impl HostState {
    fn new(spec: HostSpec, health: HostHealth) -> Self {
        HostState {
            spec,
            health,
            epoch: 0,
            used_mb: 0,
            peak_used_mb: 0,
            provisioning: 0,
            workers: HashMap::new(),
            placed: 0,
            evicted: 0,
            failures: 0,
        }
    }

    fn free_mb(&self) -> u64 {
        self.spec.memory_mb - self.used_mb
    }

    fn fits(&self, need: u64) -> bool {
        self.health == HostHealth::Up && self.free_mb() >= need
    }
}

#[derive(Debug, Clone)]
struct TenantState {
    config: TenantConfig,
    used_mb: u64,
    peak_used_mb: u64,
    placed: u64,
    rejected: u64,
}

/// Where a placed worker lives and what it is charged to.
#[derive(Debug, Clone, Copy)]
struct Placement {
    host: HostId,
    memory_mb: u32,
    request: Option<u64>,
    tenant: Option<u32>,
    provisioning: bool,
}

/// Per-host utilization row of a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostReport {
    /// Host id.
    pub host: u32,
    /// Host name.
    pub name: String,
    /// Capacity, MB.
    pub memory_mb: u64,
    /// Workers ever placed here.
    pub placed: u64,
    /// Workers forcibly evicted from here (capacity or quota pressure).
    pub evicted: u64,
    /// Times this host failed.
    pub failures: u64,
    /// Peak memory in use, MB.
    pub peak_used_mb: u64,
}

impl HostReport {
    /// Peak utilization as a fraction of capacity.
    pub fn peak_utilization(&self) -> f64 {
        if self.memory_mb == 0 {
            0.0
        } else {
            self.peak_used_mb as f64 / self.memory_mb as f64
        }
    }
}

/// Per-tenant admission row of a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Hard quota, MB (0 = unlimited).
    pub quota_mb: u64,
    /// Placements admitted.
    pub placed: u64,
    /// Placements rejected by quota or fair-share admission.
    pub rejected: u64,
    /// Peak memory in use, MB.
    pub peak_used_mb: u64,
}

/// Cluster-scheduling outcome of a run: per-host utilization, tenant
/// admission, and the cross-host cold-cascade attribution the platform
/// fills in. Merges across shards by summation (peaks take the max), so
/// sharded reports stay byte-identical at any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Placement policy the run used.
    pub policy: PlacementPolicy,
    /// Per-host rows, host-id order.
    pub hosts: Vec<HostReport>,
    /// Per-tenant rows, config order. Empty when single-tenant.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tenants: Vec<TenantReport>,
    /// Cold executions whose request's previous hop ran on a *different*
    /// host — the cross-host share of the cold cascade.
    pub cross_host_cold: u64,
    /// Cold executions whose request's previous hop ran on the same host.
    pub same_host_cold: u64,
    /// Prediction-miss recoveries served by retargeting a co-located
    /// warm worker (the affinity win: these would be cold cross-host).
    pub retargets_colocated: u64,
    /// Workers provisioned past all admission attempts without a host
    /// (cluster overcommit rather than stalling the request).
    pub overcommitted: u64,
    /// Autoscaled hosts activated during the run.
    pub hosts_booted: u64,
    /// Host failures injected during the run.
    pub hosts_failed: u64,
}

impl ClusterReport {
    /// Folds `other` into `self`: counters sum, peaks take the max, and
    /// rows join by host id / tenant name. Used by the shard merge, in
    /// shard-index order, so merged reports are deterministic.
    pub fn merge_from(&mut self, other: &ClusterReport) {
        let mut hosts: BTreeMap<u32, HostReport> =
            self.hosts.drain(..).map(|h| (h.host, h)).collect();
        for h in &other.hosts {
            match hosts.get_mut(&h.host) {
                Some(row) => {
                    row.placed += h.placed;
                    row.evicted += h.evicted;
                    row.failures += h.failures;
                    row.peak_used_mb = row.peak_used_mb.max(h.peak_used_mb);
                }
                None => {
                    hosts.insert(h.host, h.clone());
                }
            }
        }
        self.hosts = hosts.into_values().collect();
        let mut tenants: BTreeMap<String, TenantReport> = self
            .tenants
            .drain(..)
            .map(|t| (t.name.clone(), t))
            .collect();
        for t in &other.tenants {
            match tenants.get_mut(&t.name) {
                Some(row) => {
                    row.placed += t.placed;
                    row.rejected += t.rejected;
                    row.peak_used_mb = row.peak_used_mb.max(t.peak_used_mb);
                }
                None => {
                    tenants.insert(t.name.clone(), t.clone());
                }
            }
        }
        self.tenants = tenants.into_values().collect();
        self.cross_host_cold += other.cross_host_cold;
        self.same_host_cold += other.same_host_cold;
        self.retargets_colocated += other.retargets_colocated;
        self.overcommitted += other.overcommitted;
        self.hosts_booted += other.hosts_booted;
        self.hosts_failed += other.hosts_failed;
    }
}

/// FNV-1a over a byte slice: deterministic workflow → tenant hashing.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The cluster view: every registered host, which worker lives where,
/// tenant accounting and autoscaler bookkeeping.
///
/// # Example
///
/// ```
/// use xanadu_platform::hosts::{HostRegistry, HostSpec, PlacementPolicy};
/// use xanadu_sandbox::WorkerId;
///
/// let mut cluster = HostRegistry::new(PlacementPolicy::LeastLoaded);
/// let a = cluster.add_host(HostSpec::new("a", 1024));
/// let b = cluster.add_host(HostSpec::new("b", 1024));
///
/// let h1 = cluster.place(WorkerId(1), 512)?;
/// let h2 = cluster.place(WorkerId(2), 512)?;
/// // Least-loaded spreads the two workers across both hosts.
/// assert_ne!(h1, h2);
/// assert_eq!(cluster.free_mb(a) + cluster.free_mb(b), 1024);
/// # Ok::<(), xanadu_platform::hosts::PlacementError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HostRegistry {
    policy: PlacementPolicy,
    hosts: Vec<HostState>,
    next_round_robin: usize,
    location: HashMap<WorkerId, Placement>,
    /// Per-request worker counts by host index; `BTreeMap` so affinity
    /// scans are deterministic.
    footprint: HashMap<u64, BTreeMap<u32, u32>>,
    tenants: Vec<TenantState>,
    autoscale: AutoscaleConfig,
    seed: u64,
    overcommitted: u64,
    hosts_booted: u64,
}

impl HostRegistry {
    /// Creates an empty registry with the given placement policy.
    pub fn new(policy: PlacementPolicy) -> Self {
        HostRegistry {
            policy,
            hosts: Vec::new(),
            next_round_robin: 0,
            location: HashMap::new(),
            footprint: HashMap::new(),
            tenants: Vec::new(),
            autoscale: AutoscaleConfig::default(),
            seed: 0,
            overcommitted: 0,
            hosts_booted: 0,
        }
    }

    /// A single-host cluster mirroring the paper's testbed: one 64-core /
    /// 128 GB machine (§5).
    pub fn paper_testbed() -> Self {
        let mut r = HostRegistry::new(PlacementPolicy::LeastLoaded);
        r.add_host(HostSpec::new("xeon-64c-128g", 128 * 1024));
        r
    }

    /// Seed of the random-placement stream (only [`PlacementPolicy::
    /// Random`] consults it; draws are keyed by worker id, so they stay
    /// order-independent).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Installs the tenant table (config order is tenant-index order).
    pub fn set_tenants(&mut self, tenants: Vec<TenantConfig>) {
        self.tenants = tenants
            .into_iter()
            .map(|config| TenantState {
                config,
                used_mb: 0,
                peak_used_mb: 0,
                placed: 0,
                rejected: 0,
            })
            .collect();
    }

    /// Installs the autoscaler policy.
    pub fn set_autoscale(&mut self, autoscale: AutoscaleConfig) {
        self.autoscale = autoscale;
    }

    /// The autoscaler policy.
    pub fn autoscale(&self) -> &AutoscaleConfig {
        &self.autoscale
    }

    /// Number of configured tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Resolves a workflow to its owning tenant: an explicit listing
    /// wins, otherwise the name hashes onto a tenant deterministically.
    /// `None` when no tenants are configured.
    pub fn tenant_for_workflow(&self, workflow: &str) -> Option<u32> {
        if self.tenants.is_empty() {
            return None;
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.config.workflows.iter().any(|w| w == workflow) {
                return Some(i as u32);
            }
        }
        Some((fnv1a64(workflow.as_bytes()) % self.tenants.len() as u64) as u32)
    }

    /// A tenant's hard quota (0 = unlimited).
    pub fn tenant_quota_mb(&self, tenant: u32) -> u64 {
        self.tenants[tenant as usize].config.quota_mb
    }

    /// Memory currently charged to a tenant, MB.
    pub fn tenant_used_mb(&self, tenant: u32) -> u64 {
        self.tenants[tenant as usize].used_mb
    }

    /// A tenant's name.
    pub fn tenant_name(&self, tenant: u32) -> &str {
        &self.tenants[tenant as usize].config.name
    }

    /// A tenant's weighted fair share of live capacity, MB.
    pub fn fair_share_mb(&self, tenant: u32) -> u64 {
        let total_weight: f64 = self.tenants.iter().map(|t| t.config.weight).sum();
        if total_weight <= 0.0 {
            return u64::MAX;
        }
        let capacity = self.total_capacity_mb();
        let share = capacity as f64 * self.tenants[tenant as usize].config.weight / total_weight;
        share.floor() as u64
    }

    /// Registers a live host, returning its id.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(HostState::new(spec, HostHealth::Up));
        id
    }

    /// Reserves the next host id for an autoscaled host. The host is
    /// `Booting` — invisible to placement until [`activate_host`]
    /// (HostRegistry::activate_host) — and its id depends only on how
    /// many hosts were ever registered, never on event timing.
    pub fn reserve_host(&mut self, spec: HostSpec) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(HostState::new(spec, HostHealth::Booting));
        id
    }

    /// Brings a `Booting` (or failed) host live. Returns false when the
    /// host was already up (stale boot event).
    pub fn activate_host(&mut self, host: HostId) -> bool {
        let state = &mut self.hosts[host.0 as usize];
        if state.health == HostHealth::Up {
            return false;
        }
        state.health = HostHealth::Up;
        self.hosts_booted += 1;
        true
    }

    /// Fails a live host: marks it `Down`, bumps its epoch (stale crash
    /// events die), releases everything it held and returns the drained
    /// workers sorted by id so the platform can crash/re-place them
    /// deterministically. Empty for a host that is already down.
    pub fn fail_host(&mut self, host: HostId) -> Vec<WorkerId> {
        let state = &mut self.hosts[host.0 as usize];
        if state.health != HostHealth::Up {
            return Vec::new();
        }
        state.health = HostHealth::Down;
        state.epoch += 1;
        state.failures += 1;
        let mut drained: Vec<WorkerId> = state.workers.keys().copied().collect();
        drained.sort_by_key(|w| w.0);
        for w in &drained {
            self.release(*w);
        }
        drained
    }

    /// Bumps every host's epoch, invalidating previously scheduled crash
    /// events (used when the fault plan is replaced mid-setup).
    pub fn bump_epochs(&mut self) {
        for h in &mut self.hosts {
            h.epoch += 1;
        }
    }

    /// A host's current epoch.
    pub fn epoch(&self, host: HostId) -> u32 {
        self.hosts[host.0 as usize].epoch
    }

    /// Whether the host is live.
    pub fn is_up(&self, host: HostId) -> bool {
        self.hosts[host.0 as usize].health == HostHealth::Up
    }

    /// Ids of all live hosts, ascending.
    pub fn up_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.health == HostHealth::Up)
            .map(|(i, _)| HostId(i as u32))
            .collect()
    }

    /// Whether the autoscaler wants another host: under the fleet
    /// ceiling, nothing already booting, and free live memory below the
    /// scale-up threshold (or no live host at all).
    pub fn wants_scale_up(&self) -> bool {
        if !self.autoscale.enabled() {
            return false;
        }
        let active = self
            .hosts
            .iter()
            .filter(|h| h.health != HostHealth::Down)
            .count();
        if active >= self.autoscale.max_hosts as usize {
            return false;
        }
        if self.hosts.iter().any(|h| h.health == HostHealth::Booting) {
            return false;
        }
        let capacity = self.total_capacity_mb();
        if capacity == 0 {
            return true;
        }
        let free: u64 = self
            .hosts
            .iter()
            .filter(|h| h.health == HostHealth::Up)
            .map(HostState::free_mb)
            .sum();
        (free as f64) < self.autoscale.scale_up_free_pct * capacity as f64
    }

    /// The spec an autoscaled host boots with.
    pub fn autoscale_host_spec(&self) -> HostSpec {
        let n = self.hosts.len();
        HostSpec::new(format!("auto-{n}"), self.autoscale.host_memory_mb)
    }

    /// Number of registered hosts (any health).
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the registry has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The placement policy in use.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Total memory of `host` in MB.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not registered.
    pub fn memory_mb(&self, host: HostId) -> u64 {
        self.hosts[host.0 as usize].spec.memory_mb
    }

    /// Free memory on `host` in MB.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not registered.
    pub fn free_mb(&self, host: HostId) -> u64 {
        self.hosts[host.0 as usize].free_mb()
    }

    /// Number of workers currently placed on `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not registered.
    pub fn worker_count(&self, host: HostId) -> usize {
        self.hosts[host.0 as usize].workers.len()
    }

    /// The host a worker was placed on, if it is placed.
    pub fn host_of(&self, worker: WorkerId) -> Option<HostId> {
        self.location.get(&worker).map(|p| p.host)
    }

    /// The tenant a placed worker is charged to.
    pub fn tenant_of(&self, worker: WorkerId) -> Option<u32> {
        self.location.get(&worker).and_then(|p| p.tenant)
    }

    /// Workers of `request` currently on `host` (the affinity signal).
    pub fn colocation(&self, host: HostId, request: u64) -> u32 {
        self.footprint
            .get(&request)
            .and_then(|m| m.get(&host.0))
            .copied()
            .unwrap_or(0)
    }

    /// Live capacity across the cluster, MB.
    pub fn total_capacity_mb(&self) -> u64 {
        self.hosts
            .iter()
            .filter(|h| h.health == HostHealth::Up)
            .map(|h| h.spec.memory_mb)
            .sum()
    }

    /// Places an anonymous on-demand worker needing `memory_mb` MB.
    ///
    /// # Errors
    ///
    /// [`PlacementError::NoHosts`] if no host is live, or
    /// [`PlacementError::ClusterFull`] if no live host can fit the worker.
    pub fn place(&mut self, worker: WorkerId, memory_mb: u32) -> Result<HostId, PlacementError> {
        self.place_for(&PlacementRequest::bare(worker, memory_mb))
    }

    /// Chooses a host for `req` under `policy` *without mutating state*.
    /// `None` when no live host fits. Admission control is not applied —
    /// this is the pure placement function, exposed so the affinity
    /// no-regression property can be checked against least-loaded.
    pub fn peek(&self, policy: PlacementPolicy, req: &PlacementRequest) -> Option<HostId> {
        let need = u64::from(req.memory_mb);
        let fitting = || {
            self.hosts
                .iter()
                .enumerate()
                .filter(move |(_, h)| h.fits(need))
        };
        let chosen = match policy {
            PlacementPolicy::FirstFit => fitting().map(|(i, _)| i).next(),
            PlacementPolicy::LeastLoaded => fitting()
                .max_by_key(|(i, h)| (h.free_mb(), std::cmp::Reverse(*i)))
                .map(|(i, _)| i),
            PlacementPolicy::RoundRobin => {
                let n = self.hosts.len();
                (0..n)
                    .map(|k| (self.next_round_robin + k) % n)
                    .find(|&i| self.hosts[i].fits(need))
            }
            PlacementPolicy::Random => {
                let candidates: Vec<usize> = fitting().map(|(i, _)| i).collect();
                if candidates.is_empty() {
                    None
                } else {
                    let mut rng =
                        RngStream::derive(self.seed, "placement-random").child(req.worker.0);
                    Some(candidates[(rng.next_u64() % candidates.len() as u64) as usize])
                }
            }
            PlacementPolicy::Affinity => {
                let footprint = req.request.and_then(|r| self.footprint.get(&r));
                fitting()
                    .max_by_key(|(i, h)| {
                        let colocated = footprint
                            .and_then(|m| m.get(&(*i as u32)))
                            .copied()
                            .unwrap_or(0);
                        (colocated, h.free_mb(), std::cmp::Reverse(*i))
                    })
                    .map(|(i, _)| i)
            }
        };
        chosen.map(|i| HostId(i as u32))
    }

    /// Places a worker, applying tenant admission control then the
    /// registry's placement policy, charging the chosen host (and
    /// tenant). The charge counts as *provisioning* for the contention
    /// curve until [`worker_ready`](HostRegistry::worker_ready).
    ///
    /// # Errors
    ///
    /// [`PlacementError::NoHosts`] / [`PlacementError::ClusterFull`] on
    /// capacity, [`PlacementError::QuotaExceeded`] /
    /// [`PlacementError::FairShareExceeded`] on tenant admission. No
    /// state changes on error except the tenant rejection counter.
    pub fn place_for(&mut self, req: &PlacementRequest) -> Result<HostId, PlacementError> {
        if self.hosts.iter().all(|h| h.health != HostHealth::Up) {
            return Err(PlacementError::NoHosts);
        }
        let need = u64::from(req.memory_mb);
        if let Some(t) = req.tenant {
            let quota = self.tenants[t as usize].config.quota_mb;
            if quota > 0 && self.tenants[t as usize].used_mb + need > quota {
                self.tenants[t as usize].rejected += 1;
                return Err(PlacementError::QuotaExceeded {
                    tenant: self.tenants[t as usize].config.name.clone(),
                    quota_mb: quota,
                });
            }
            if !req.on_demand && self.tenants.len() > 1 {
                let share = self.fair_share_mb(t);
                if self.tenants[t as usize].used_mb + need > share {
                    self.tenants[t as usize].rejected += 1;
                    return Err(PlacementError::FairShareExceeded {
                        tenant: self.tenants[t as usize].config.name.clone(),
                        share_mb: share,
                    });
                }
            }
        }
        let Some(host) = self.peek(self.policy, req) else {
            return Err(PlacementError::ClusterFull {
                requested_mb: req.memory_mb,
            });
        };
        let index = host.0 as usize;
        if self.policy == PlacementPolicy::RoundRobin {
            self.next_round_robin = (index + 1) % self.hosts.len();
        }
        let state = &mut self.hosts[index];
        state.used_mb += need;
        state.peak_used_mb = state.peak_used_mb.max(state.used_mb);
        state.provisioning += 1;
        state.placed += 1;
        state.workers.insert(req.worker, req.memory_mb);
        if let Some(r) = req.request {
            *self
                .footprint
                .entry(r)
                .or_default()
                .entry(host.0)
                .or_insert(0) += 1;
        }
        if let Some(t) = req.tenant {
            let tenant = &mut self.tenants[t as usize];
            tenant.used_mb += need;
            tenant.peak_used_mb = tenant.peak_used_mb.max(tenant.used_mb);
            tenant.placed += 1;
        }
        self.location.insert(
            req.worker,
            Placement {
                host,
                memory_mb: req.memory_mb,
                request: req.request,
                tenant: req.tenant,
                provisioning: true,
            },
        );
        Ok(host)
    }

    /// Marks a placed worker's provisioning as finished (its sandbox is
    /// ready), ending its contribution to the host's contention curve.
    pub fn worker_ready(&mut self, worker: WorkerId) {
        if let Some(p) = self.location.get_mut(&worker) {
            if p.provisioning {
                p.provisioning = false;
                let state = &mut self.hosts[p.host.0 as usize];
                state.provisioning = state.provisioning.saturating_sub(1);
            }
        }
    }

    /// Number of workers currently provisioning on `host` (the contention
    /// signal).
    pub fn provisioning_on(&self, host: HostId) -> u32 {
        self.hosts[host.0 as usize].provisioning
    }

    /// Cold-start inflation on `host` for a worker placed while
    /// `provisioning_on` counts it: `alpha · (concurrent − 1)`, i.e. the
    /// *other* in-flight provisions. 0 with the default `alpha = 0`.
    pub fn contention_penalty(&self, host: HostId) -> f64 {
        let state = &self.hosts[host.0 as usize];
        if state.spec.contention_alpha <= 0.0 {
            return 0.0;
        }
        state.spec.contention_alpha * f64::from(state.provisioning.saturating_sub(1))
    }

    /// Releases a worker's memory back to its host and tenant. Unknown
    /// workers are ignored (idempotent teardown).
    pub fn release(&mut self, worker: WorkerId) {
        let Some(p) = self.location.remove(&worker) else {
            return;
        };
        let state = &mut self.hosts[p.host.0 as usize];
        if state.workers.remove(&worker).is_some() {
            state.used_mb -= u64::from(p.memory_mb);
            if p.provisioning {
                state.provisioning = state.provisioning.saturating_sub(1);
            }
        }
        if let Some(r) = p.request {
            if let Some(map) = self.footprint.get_mut(&r) {
                if let Some(count) = map.get_mut(&p.host.0) {
                    *count -= 1;
                    if *count == 0 {
                        map.remove(&p.host.0);
                    }
                }
                if map.is_empty() {
                    self.footprint.remove(&r);
                }
            }
        }
        if let Some(t) = p.tenant {
            self.tenants[t as usize].used_mb = self.tenants[t as usize]
                .used_mb
                .saturating_sub(u64::from(p.memory_mb));
        }
    }

    /// Records a forced eviction of `worker` (capacity/quota pressure)
    /// on its host. Call before killing/releasing it.
    pub fn note_evicted(&mut self, worker: WorkerId) {
        if let Some(p) = self.location.get(&worker) {
            self.hosts[p.host.0 as usize].evicted += 1;
        }
    }

    /// Records a worker provisioned without a host (admission overflow).
    pub fn note_overcommit(&mut self) {
        self.overcommitted += 1;
    }

    /// Total memory in use across the cluster, in MB.
    pub fn total_used_mb(&self) -> u64 {
        self.hosts.iter().map(|h| h.used_mb).sum()
    }

    /// Snapshot of the cluster state as report rows. The platform fills
    /// in the cross-host cold attribution before publishing.
    pub fn report(&self) -> ClusterReport {
        ClusterReport {
            policy: self.policy,
            hosts: self
                .hosts
                .iter()
                .enumerate()
                .map(|(i, h)| HostReport {
                    host: i as u32,
                    name: h.spec.name.clone(),
                    memory_mb: h.spec.memory_mb,
                    placed: h.placed,
                    evicted: h.evicted,
                    failures: h.failures,
                    peak_used_mb: h.peak_used_mb,
                })
                .collect(),
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantReport {
                    name: t.config.name.clone(),
                    weight: t.config.weight,
                    quota_mb: t.config.quota_mb,
                    placed: t.placed,
                    rejected: t.rejected,
                    peak_used_mb: t.peak_used_mb,
                })
                .collect(),
            cross_host_cold: 0,
            same_host_cold: 0,
            retargets_colocated: 0,
            overcommitted: self.overcommitted,
            hosts_booted: self.hosts_booted,
            hosts_failed: self.hosts.iter().map(|h| h.failures).sum(),
        }
    }
}

impl Default for HostRegistry {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hosts(policy: PlacementPolicy) -> HostRegistry {
        let mut r = HostRegistry::new(policy);
        r.add_host(HostSpec::new("a", 2048));
        r.add_host(HostSpec::new("b", 2048));
        r
    }

    #[test]
    fn least_loaded_balances() {
        let mut r = two_hosts(PlacementPolicy::LeastLoaded);
        let mut counts = [0usize; 2];
        for i in 0..8 {
            let h = r.place(WorkerId(i), 512).unwrap();
            counts[h.0 as usize] += 1;
        }
        assert_eq!(counts, [4, 4]);
        assert_eq!(r.total_used_mb(), 8 * 512);
    }

    #[test]
    fn first_fit_fills_in_order() {
        let mut r = two_hosts(PlacementPolicy::FirstFit);
        for i in 0..4 {
            assert_eq!(r.place(WorkerId(i), 512).unwrap(), HostId(0));
        }
        // Host 0 is full at 2048 MB; next goes to host 1.
        assert_eq!(r.place(WorkerId(9), 512).unwrap(), HostId(1));
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = two_hosts(PlacementPolicy::RoundRobin);
        let hosts: Vec<u32> = (0..4)
            .map(|i| r.place(WorkerId(i), 128).unwrap().0)
            .collect();
        assert_eq!(hosts, vec![0, 1, 0, 1]);
    }

    #[test]
    fn round_robin_skips_full_hosts() {
        let mut r = two_hosts(PlacementPolicy::RoundRobin);
        r.place(WorkerId(0), 2048).unwrap(); // host 0 full
        assert_eq!(r.place(WorkerId(1), 512).unwrap(), HostId(1));
        assert_eq!(r.place(WorkerId(2), 512).unwrap(), HostId(1));
    }

    #[test]
    fn cluster_full_and_no_hosts_errors() {
        let mut empty = HostRegistry::new(PlacementPolicy::LeastLoaded);
        assert_eq!(empty.place(WorkerId(0), 64), Err(PlacementError::NoHosts));
        let mut r = two_hosts(PlacementPolicy::LeastLoaded);
        r.place(WorkerId(0), 2048).unwrap();
        r.place(WorkerId(1), 2048).unwrap();
        assert_eq!(
            r.place(WorkerId(2), 1),
            Err(PlacementError::ClusterFull { requested_mb: 1 })
        );
    }

    #[test]
    fn release_returns_capacity() {
        let mut r = two_hosts(PlacementPolicy::FirstFit);
        let h = r.place(WorkerId(0), 2048).unwrap();
        assert_eq!(r.free_mb(h), 0);
        assert_eq!(r.host_of(WorkerId(0)), Some(h));
        r.release(WorkerId(0));
        assert_eq!(r.free_mb(h), 2048);
        assert_eq!(r.host_of(WorkerId(0)), None);
        r.release(WorkerId(0)); // idempotent
        assert_eq!(r.worker_count(h), 0);
    }

    #[test]
    fn paper_testbed_is_single_large_host() {
        let r = HostRegistry::paper_testbed();
        assert_eq!(r.len(), 1);
        assert_eq!(r.free_mb(HostId(0)), 128 * 1024);
        assert!(!r.is_empty());
    }

    #[test]
    fn displays() {
        assert_eq!(HostId(3).to_string(), "host3");
        let e = PlacementError::ClusterFull { requested_mb: 512 };
        assert!(e.to_string().contains("512"));
        assert_eq!(
            "affinity".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::Affinity
        );
        assert!("bogus".parse::<PlacementPolicy>().is_err());
    }

    fn for_request(worker: u64, mb: u32, request: u64) -> PlacementRequest {
        PlacementRequest {
            worker: WorkerId(worker),
            memory_mb: mb,
            request: Some(request),
            tenant: None,
            on_demand: false,
        }
    }

    #[test]
    fn affinity_colocates_a_requests_workers() {
        let mut r = two_hosts(PlacementPolicy::Affinity);
        let h0 = r.place_for(&for_request(0, 512, 7)).unwrap();
        // The second and third workers of request 7 follow the first.
        assert_eq!(r.place_for(&for_request(1, 512, 7)).unwrap(), h0);
        assert_eq!(r.place_for(&for_request(2, 512, 7)).unwrap(), h0);
        // A different request starts on the emptier host (least-loaded
        // fallback).
        let other = r.place_for(&for_request(3, 512, 8)).unwrap();
        assert_ne!(other, h0);
        assert_eq!(r.colocation(h0, 7), 3);
        // Releases shrink the footprint.
        r.release(WorkerId(1));
        assert_eq!(r.colocation(h0, 7), 2);
    }

    #[test]
    fn affinity_spills_when_the_preferred_host_is_full() {
        let mut r = two_hosts(PlacementPolicy::Affinity);
        r.place_for(&for_request(0, 2048, 7)).unwrap(); // host full
        let spill = r.place_for(&for_request(1, 512, 7)).unwrap();
        assert_eq!(r.worker_count(spill), 1);
    }

    #[test]
    fn random_is_deterministic_per_worker_and_seeded() {
        let mut a = two_hosts(PlacementPolicy::Random);
        a.set_seed(11);
        let mut b = two_hosts(PlacementPolicy::Random);
        b.set_seed(11);
        let pa: Vec<u32> = (0..16)
            .map(|i| a.place(WorkerId(i), 64).unwrap().0)
            .collect();
        let pb: Vec<u32> = (0..16)
            .map(|i| b.place(WorkerId(i), 64).unwrap().0)
            .collect();
        assert_eq!(pa, pb);
        // The draw is keyed by worker id: placing the same ids in reverse
        // order lands every worker on the same host.
        let mut c = two_hosts(PlacementPolicy::Random);
        c.set_seed(11);
        let mut rev: Vec<(u64, u32)> = (0..16u64)
            .rev()
            .map(|i| (i, c.place(WorkerId(i), 64).unwrap().0))
            .collect();
        rev.sort_by_key(|&(i, _)| i);
        assert_eq!(pa, rev.into_iter().map(|(_, h)| h).collect::<Vec<_>>());
        // Both hosts get used.
        assert!(pa.contains(&0) && pa.contains(&1));
    }

    #[test]
    fn quotas_gate_on_demand_and_fair_share_gates_speculation() {
        let mut r = two_hosts(PlacementPolicy::LeastLoaded);
        r.set_tenants(vec![
            TenantConfig {
                name: "hot".into(),
                weight: 1.0,
                quota_mb: 1024,
                workflows: vec!["w-hot".into()],
            },
            TenantConfig::new("cold"),
        ]);
        assert_eq!(r.tenant_for_workflow("w-hot"), Some(0));
        // Capacity 4096, equal weights: fair share 2048 each; the hot
        // tenant's quota (1024) binds first.
        let mut on_demand = PlacementRequest::bare(WorkerId(0), 512);
        on_demand.tenant = Some(0);
        r.place_for(&on_demand).unwrap();
        let mut second = PlacementRequest::bare(WorkerId(1), 512);
        second.tenant = Some(0);
        r.place_for(&second).unwrap();
        let mut third = PlacementRequest::bare(WorkerId(2), 512);
        third.tenant = Some(0);
        let err = r.place_for(&third).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::QuotaExceeded { quota_mb: 1024, .. }
        ));
        assert_eq!(r.tenant_used_mb(0), 1024);

        // The unquota'd tenant: speculative placements stop at the fair
        // share (2048), on-demand sails past it.
        let mut spec = PlacementRequest::bare(WorkerId(10), 1024);
        spec.tenant = Some(1);
        spec.on_demand = false;
        r.place_for(&spec).unwrap();
        let mut spec2 = spec;
        spec2.worker = WorkerId(11);
        r.place_for(&spec2).unwrap();
        let mut spec3 = spec;
        spec3.worker = WorkerId(12);
        spec3.memory_mb = 512;
        let err = r.place_for(&spec3).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::FairShareExceeded { share_mb: 2048, .. }
        ));
        let mut od = spec3;
        od.on_demand = true;
        r.place_for(&od).unwrap();
        assert_eq!(r.tenant_used_mb(1), 2560);
        let report = r.report();
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants[0].rejected, 1);
        assert_eq!(report.tenants[1].rejected, 1);
    }

    #[test]
    fn failed_hosts_drain_and_reactivate() {
        let mut r = two_hosts(PlacementPolicy::FirstFit);
        r.place(WorkerId(3), 256).unwrap();
        r.place(WorkerId(1), 256).unwrap();
        assert_eq!(r.epoch(HostId(0)), 0);
        let drained = r.fail_host(HostId(0));
        assert_eq!(drained, vec![WorkerId(1), WorkerId(3)], "sorted by id");
        assert_eq!(r.epoch(HostId(0)), 1);
        assert!(!r.is_up(HostId(0)));
        assert_eq!(r.total_used_mb(), 0);
        // A dead host takes no placements; failing it again is a no-op.
        assert_eq!(r.place(WorkerId(9), 64).unwrap(), HostId(1));
        assert!(r.fail_host(HostId(0)).is_empty());
        // Reactivation brings it back placeable.
        assert!(r.activate_host(HostId(0)));
        assert!(!r.activate_host(HostId(0)), "already up");
        assert_eq!(r.up_hosts(), vec![HostId(0), HostId(1)]);
        let report = r.report();
        assert_eq!(report.hosts[0].failures, 1);
        assert_eq!(report.hosts_failed, 1);
    }

    #[test]
    fn autoscaler_ids_are_deterministic_and_booting_hosts_invisible() {
        let mut r = HostRegistry::new(PlacementPolicy::LeastLoaded);
        r.set_autoscale(AutoscaleConfig {
            max_hosts: 3,
            host_memory_mb: 1024,
            ..AutoscaleConfig::default()
        });
        assert!(r.wants_scale_up(), "empty fleet always scales up");
        let h0 = r.reserve_host(r.autoscale_host_spec());
        assert_eq!(h0, HostId(0));
        assert!(!r.wants_scale_up(), "one boot in flight at a time");
        assert!(r.place(WorkerId(0), 64).is_err(), "booting host invisible");
        assert!(r.activate_host(h0));
        // 1024 free of 1024: above the 25% threshold, no scale-up.
        assert!(!r.wants_scale_up());
        r.place(WorkerId(0), 1000).unwrap();
        assert!(r.wants_scale_up(), "24 MB free of 1024 is under 25%");
        let h1 = r.reserve_host(r.autoscale_host_spec());
        assert_eq!(h1, HostId(1));
        r.activate_host(h1);
        r.place(WorkerId(1), 1000).unwrap();
        let h2 = r.reserve_host(r.autoscale_host_spec());
        assert_eq!(h2, HostId(2));
        r.activate_host(h2);
        r.place(WorkerId(2), 1000).unwrap();
        assert!(!r.wants_scale_up(), "fleet ceiling reached");
        assert_eq!(r.report().hosts_booted, 3);
    }

    #[test]
    fn contention_counts_concurrent_provisions() {
        let mut r = HostRegistry::new(PlacementPolicy::FirstFit);
        let h = r.add_host(HostSpec::new("a", 4096).with_contention(0.5));
        r.place(WorkerId(0), 256).unwrap();
        assert_eq!(r.provisioning_on(h), 1);
        assert_eq!(r.contention_penalty(h), 0.0, "alone: no penalty");
        r.place(WorkerId(1), 256).unwrap();
        assert_eq!(r.provisioning_on(h), 2);
        assert_eq!(r.contention_penalty(h), 0.5);
        r.worker_ready(WorkerId(0));
        assert_eq!(r.provisioning_on(h), 1);
        r.worker_ready(WorkerId(0)); // idempotent
        assert_eq!(r.provisioning_on(h), 1);
        // Release during provisioning also decrements.
        r.release(WorkerId(1));
        assert_eq!(r.provisioning_on(h), 0);
    }

    #[test]
    fn cluster_reports_merge_by_summation() {
        let mut a = two_hosts(PlacementPolicy::Affinity);
        a.place_for(&for_request(0, 512, 1)).unwrap();
        a.note_evicted(WorkerId(0));
        let mut ra = a.report();
        ra.cross_host_cold = 2;
        let mut b = two_hosts(PlacementPolicy::Affinity);
        b.place_for(&for_request(0, 1024, 1)).unwrap();
        let mut rb = b.report();
        rb.cross_host_cold = 3;
        ra.merge_from(&rb);
        assert_eq!(ra.cross_host_cold, 5);
        assert_eq!(ra.hosts.len(), 2);
        assert_eq!(ra.hosts[0].placed, 2);
        assert_eq!(ra.hosts[0].evicted, 1);
        assert_eq!(ra.hosts[0].peak_used_mb, 1024, "peaks take the max");
    }
}
