//! The Dispatch Manager: a deterministic event-driven workflow executor.
//!
//! One [`Platform`] instance models one deployment of Xanadu (or, via
//! `xanadu-baselines`, of an emulated Knative / OpenWhisk / ASF / ADF):
//! workflows are deployed, triggers are scheduled, and
//! [`run_until_idle`](Platform::run_until_idle) drains the event queue,
//! executing every function of every activated path with the configured
//! provisioning policy.
//!
//! The sequence of operations matches Figure 10 of the paper: a trigger
//! starts the planning phase (MLP + JIT plan) in parallel with dispatching
//! the root function; planned deployments fire as their timeline comes due;
//! the reverse proxy routes each function invocation to a warm worker when
//! one exists and provisions otherwise; prediction misses stop (or replan)
//! outstanding speculation.

use crate::bus::Bus;
use crate::config::PlatformConfig;
use crate::estimates::PlatformEstimates;
use crate::events::{BusEvent, Topic};
use crate::faults::{FaultConfig, FaultPlan};
use crate::hosts::{ClusterReport, HostId, HostRegistry, HostSpec, PlacementRequest};
use crate::metastore::MetaStore;
use crate::obs::{MetricsRegistry, Observer, ObserverHandle};
use crate::result::{PlatformReport, RunResult};
use crate::stream::{SloConfig, SloMonitor};
use crate::timeline::{Trace, TraceEventKind};
use serde_json::json;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};
use xanadu_chain::{BranchMode, ChainError, DeclaredOutputs, NodeId, NodeSet, WorkflowDag};
use xanadu_core::cost::{total_resource_cost, CpuRates, ResourceCosts};
use xanadu_core::keepalive::{AdaptiveKeepAlive, KeepAliveConfig};
use xanadu_core::policy::{PlanContext, PolicyRegistry, SpeculationPolicy};
use xanadu_core::speculation::{DeployFailureAction, PlanCacheStats};
use xanadu_profiler::{BranchDetector, MetricsEngine, RequestCorrelator};
use xanadu_sandbox::{
    SandboxProvider, SimSandboxProvider, Worker, WorkerId, WorkerPool, WorkerState,
};
use xanadu_simcore::{EventQueue, Interner, RngStream, SimDuration, SimTime, Sym};

/// Errors surfaced by the platform API.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A workflow with the same name is already deployed.
    AlreadyDeployed(String),
    /// The named workflow is not deployed.
    UnknownWorkflow(String),
    /// Workflow construction/validation failed.
    Chain(ChainError),
    /// Restoring persisted learned state failed (missing or malformed
    /// documents in the metadata store).
    Restore(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::AlreadyDeployed(name) => {
                write!(f, "workflow `{name}` is already deployed")
            }
            PlatformError::UnknownWorkflow(name) => write!(f, "unknown workflow `{name}`"),
            PlatformError::Chain(e) => write!(f, "invalid workflow: {e}"),
            PlatformError::Restore(reason) => {
                write!(f, "failed to restore learned state: {reason}")
            }
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChainError> for PlatformError {
    fn from(e: ChainError) -> Self {
        PlatformError::Chain(e)
    }
}

/// Metadata-store document ids of persisted learned state, returned by
/// [`Platform::persist_learned_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnedState {
    /// Document holding the profiled function metrics (EMAs).
    pub metrics_doc: String,
    /// Document holding the learned branch model.
    pub branch_doc: String,
}

/// Sentinel request id marking workers owned by the static pre-warm pool
/// rather than any request's speculation plan.
const POOL_OWNER: u64 = u64::MAX;

/// How a worker was acquired for an invocation (for start accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Acquired {
    /// An already warm worker: a warm start.
    Warm,
    /// A worker still provisioning (speculation in flight): cold-ish; the
    /// request waits the residual provisioning time.
    Pending,
    /// A fresh on-demand provision: a full cold start.
    Fresh,
}

/// A future-event-list entry. Every payload is `Copy`: workflow names are
/// interned to [`Sym`]s at deployment, so the hot path never moves or
/// allocates a `String` per event.
#[derive(Debug, Clone, Copy)]
enum Event {
    Trigger {
        req: u64,
        workflow: Sym,
    },
    Deploy {
        req: u64,
        node: NodeId,
        generation: u32,
    },
    Invoke {
        req: u64,
        node: NodeId,
        parent: Option<NodeId>,
    },
    WorkerReady {
        worker: WorkerId,
    },
    ExecStart {
        req: u64,
        node: NodeId,
        worker: WorkerId,
        acquired: Acquired,
        invoked_at: SimTime,
    },
    ExecEnd {
        req: u64,
        node: NodeId,
        worker: WorkerId,
        began: SimTime,
    },
    /// Injected fault: the worker dies. What that *means* depends on its
    /// state when the event fires: a startup failure (Provisioning), a
    /// crash mid-warm (Warm), or a crash mid-invocation (Busy).
    WorkerCrash {
        worker: WorkerId,
    },
    /// Injected fault: the invocation's effective service time exceeded
    /// the per-invocation timeout; abort and retry.
    ExecTimeout {
        req: u64,
        node: NodeId,
        worker: WorkerId,
        began: SimTime,
    },
    /// Retry of an invocation whose previous attempt crashed or timed out
    /// (worker re-acquisition only; the node counts as already invoked).
    Redispatch {
        req: u64,
        node: NodeId,
    },
    /// Injected fault: a whole host fails, losing every worker on it.
    /// `epoch` guards against staleness: the failure only applies if the
    /// host is still in the uptime epoch the crash was scheduled for.
    HostFail {
        host: u32,
        epoch: u32,
    },
    /// A host comes up: an autoscaled boot or a post-failure reboot.
    HostBoot {
        host: u32,
    },
}

#[derive(Debug, Clone)]
struct WorkflowEntry {
    dag: Arc<WorkflowDag>,
    implicit: bool,
    /// Declared-output table for data-driven conditionals, computed once at
    /// registration instead of per trigger.
    declared_outputs: Arc<DeclaredOutputs>,
    /// Owning tenant (index into the cluster's tenant table), resolved
    /// once at deploy: explicit workflow listing first, stable hash
    /// otherwise. `None` when no tenants are configured.
    tenant: Option<u32>,
}

#[derive(Debug)]
struct RunState {
    workflow: Sym,
    dag: Arc<WorkflowDag>,
    implicit: bool,
    trigger: SimTime,
    /// Chosen children per XOR node (drawn at trigger from the ground-truth
    /// probabilities, or decided by the node's data-driven condition over
    /// declared outputs; revealed on completion). Probability draws pick
    /// one child; condition decisions activate the whole branch-entry
    /// group.
    xor_choice: HashMap<NodeId, Vec<NodeId>>,
    /// Whether each node is on the actually-executing subgraph.
    activated: Vec<bool>,
    /// Activated in-edges each node waits for (barrier semantics).
    required_in: Vec<usize>,
    delivered_in: Vec<usize>,
    invoked: Vec<bool>,
    completed: Vec<bool>,
    /// Ground-truth service time drawn per node at trigger.
    service: Vec<SimDuration>,
    remaining: usize,
    planned: NodeSet,
    plan_generation: u32,
    plan_active: bool,
    spawned: Vec<WorkerId>,
    cold_starts: u32,
    warm_starts: u32,
    misses: u32,
    /// Whether a plan ever existed (misses are only meaningful then).
    had_plan: bool,
    /// StopSpeculation already fired; no further cancellations needed.
    plan_cancelled: bool,
    /// Per-node count of failed attempts (crashes, timeouts, failed
    /// pre-deployments). At `FaultConfig::max_retries` the next attempt
    /// runs shielded from injection, guaranteeing termination.
    fault_attempts: Vec<u32>,
    /// Injected faults that hit this request.
    faults: u32,
    /// Invocation attempts beyond the first.
    retries: u32,
    /// Orchestration event timeline (Figure 10).
    trace: Trace,
    /// Host of the request's most recent execution start: the locality
    /// locus the affinity policy and retargeting co-locate against.
    locus: Option<HostId>,
}

impl RunState {
    /// Critical path (ms→duration) of the activated subgraph with the drawn
    /// service times: the `Σ rᵢ` / slowest-branch reference of Equation 1.
    fn exec_reference(&self) -> SimDuration {
        let dag = &self.dag;
        let mut best = vec![SimDuration::ZERO; dag.len()];
        let mut max = SimDuration::ZERO;
        for id in dag.topo_order() {
            if !self.activated[id.index()] {
                continue;
            }
            let from_parents = dag
                .parents(id)
                .iter()
                .filter(|p| self.activated[p.index()])
                .map(|p| best[p.index()])
                .max()
                .unwrap_or(SimDuration::ZERO);
            best[id.index()] = from_parents + self.service[id.index()];
            max = max.max(best[id.index()]);
        }
        max
    }
}

/// The Xanadu platform: Dispatch Manager + Dispatch Daemon over a simulated
/// sandbox substrate. See the [crate docs](crate) for a quickstart.
pub struct Platform {
    config: PlatformConfig,
    /// The speculation policy (DESIGN.md §11): the paper's engine by
    /// default, or a learned planner selected via `config.policy`.
    policy: Box<dyn SpeculationPolicy>,
    provider: SimSandboxProvider,
    pool: WorkerPool,
    metrics: MetricsEngine,
    detector: BranchDetector,
    correlator: RequestCorrelator,
    /// Workflow name → dense id; ids index [`Platform::workflows`].
    workflow_ids: Interner,
    /// Registered workflows, indexed by interned id.
    workflows: Vec<WorkflowEntry>,
    queue: EventQueue<Event>,
    now: SimTime,
    /// In-flight requests, indexed by request id (dense: ids are handed
    /// out sequentially). Boxed so the slab stays compact after a request
    /// retires.
    runs: Vec<Option<Box<RunState>>>,
    results: Vec<RunResult>,
    next_request: u64,
    rng_branch: RngStream,
    rng_service: RngStream,
    rng_overhead: RngStream,
    /// Workers chosen for an invocation but not yet executing.
    claimed: HashSet<WorkerId>,
    /// Which request spawned each worker (cost attribution), indexed by
    /// worker id (dense: ids are handed out sequentially).
    spawner: Vec<Option<u64>>,
    /// The cluster the Dispatch Daemons manage (Figure 11).
    cluster: HostRegistry,
    /// Whether an explicit multi-host cluster (or autoscaler) was
    /// configured. Gates cluster bookkeeping and report attachment so
    /// default single-testbed runs stay byte-identical to pre-cluster
    /// builds.
    cluster_enabled: bool,
    /// Cold executions whose request's previous hop ran on another host.
    cross_host_cold: u64,
    /// Cold executions co-located with the request's previous hop.
    same_host_cold: u64,
    /// Prediction-miss recoveries served by retargeting a co-located
    /// warm worker.
    retargets_colocated: u64,
    /// Workers provisioned shielded (the guaranteed final retry): exempt
    /// from injected worker crashes *and* host-failure drains, so every
    /// request terminates under any fault schedule.
    shielded_workers: HashSet<WorkerId>,
    /// Requests triggered but not yet finalized. Host reboots are only
    /// scheduled while this is non-zero, so an idle platform quiesces.
    active_runs: usize,
    /// Advisor implementing the paper's future-work adaptive keep-alive
    /// (§7): it observes which invocations speculation covered.
    keepalive_advisor: AdaptiveKeepAlive,
    /// Completed request timelines, by request id.
    traces: HashMap<u64, Trace>,
    bus: Bus,
    metastore: MetaStore,
    /// The seeded fault schedule (inert when the configured rate is 0).
    faults: FaultPlan,
    /// Synchronous observers, called in attach order for every emitted
    /// event. Empty on an unobserved platform, in which case no event is
    /// ever constructed (see [`Platform::observing`]).
    observers: Vec<Arc<Mutex<dyn Observer>>>,
    /// The registry attached via [`Platform::attach_metrics`], snapshotted
    /// into the final report by [`Platform::finish`].
    registry: Option<ObserverHandle<MetricsRegistry>>,
    /// The monitor attached via [`Platform::attach_slo`]; alerts raised by
    /// closed windows are re-emitted as [`BusEvent::SloAlert`].
    slo: Option<ObserverHandle<SloMonitor>>,
}

impl Platform {
    /// Creates a platform with the paper-calibrated sandbox substrate.
    pub fn new(config: PlatformConfig) -> Self {
        let provider = SimSandboxProvider::new(config.seed);
        Self::with_provider(config, provider)
    }

    /// Creates a platform over a custom sandbox provider (used by the
    /// baseline emulations, which recalibrate the latency profiles).
    pub fn with_provider(config: PlatformConfig, provider: SimSandboxProvider) -> Self {
        let pool = WorkerPool::new(config.pool);
        let seed = config.seed;
        let cluster_enabled =
            !config.cluster.hosts.is_empty() || config.cluster.autoscale.enabled();
        let mut cluster = HostRegistry::new(config.cluster.policy);
        if config.cluster.hosts.is_empty() && !config.cluster.autoscale.enabled() {
            cluster.add_host(HostSpec::new("xeon-64c-128g", 128 * 1024));
        } else {
            for spec in &config.cluster.hosts {
                cluster.add_host(spec.clone());
            }
        }
        cluster.set_seed(seed);
        cluster.set_tenants(config.cluster.tenants.clone());
        cluster.set_autoscale(config.cluster.autoscale.clone());
        let faults = FaultPlan::new(config.faults);
        let mut queue = EventQueue::new();
        if faults.hosts_enabled() {
            for host in cluster.up_hosts() {
                if let Some(at) = faults.host_crash_time(host.0, 0, SimTime::ZERO) {
                    queue.schedule(
                        at,
                        Event::HostFail {
                            host: host.0,
                            epoch: 0,
                        },
                    );
                }
            }
        }
        let mut policy = PolicyRegistry::build(&config.policy, config.speculation);
        policy.set_plan_cache(config.plan_cache);
        Platform {
            policy,
            provider,
            pool,
            metrics: MetricsEngine::new(),
            detector: BranchDetector::new(),
            correlator: RequestCorrelator::new(),
            workflow_ids: Interner::new(),
            workflows: Vec::new(),
            queue,
            now: SimTime::ZERO,
            runs: Vec::new(),
            results: Vec::new(),
            next_request: 0,
            rng_branch: RngStream::derive(seed, "platform-branch"),
            rng_service: RngStream::derive(seed, "platform-service"),
            rng_overhead: RngStream::derive(seed, "platform-overhead"),
            claimed: HashSet::new(),
            spawner: Vec::new(),
            cluster,
            cluster_enabled,
            cross_host_cold: 0,
            same_host_cold: 0,
            retargets_colocated: 0,
            shielded_workers: HashSet::new(),
            active_runs: 0,
            keepalive_advisor: AdaptiveKeepAlive::new(KeepAliveConfig::default()),
            traces: HashMap::new(),
            bus: Bus::new(),
            metastore: MetaStore::new(),
            faults,
            observers: Vec::new(),
            registry: None,
            slo: None,
            config,
        }
    }

    /// Replaces the fault-injection configuration (e.g. from the CLI's
    /// `--fault-rate`/`--fault-seed` flags). Affects workers provisioned
    /// and invocations dispatched after the call.
    pub fn set_faults(&mut self, config: FaultConfig) {
        self.config.faults = config;
        self.faults = FaultPlan::new(config);
        // Invalidate any host-crash events scheduled under the old plan and
        // draw fresh crash times for every live host under the new one.
        self.cluster.bump_epochs();
        if self.faults.hosts_enabled() {
            for host in self.cluster.up_hosts() {
                let epoch = self.cluster.epoch(host);
                if let Some(at) = self.faults.host_crash_time(host.0, epoch, self.now) {
                    self.queue.schedule(
                        at,
                        Event::HostFail {
                            host: host.0,
                            epoch,
                        },
                    );
                }
            }
        }
    }

    /// The platform's configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deploys an *explicit* workflow: the platform sees the schema and can
    /// plan from its declared structure.
    ///
    /// # Errors
    ///
    /// [`PlatformError::AlreadyDeployed`] on name collision, or a
    /// validation error from the workflow itself.
    pub fn deploy(&mut self, dag: WorkflowDag) -> Result<(), PlatformError> {
        self.deploy_entry(dag, false)
    }

    /// Deploys an *implicit* workflow: `dag` is the ground truth driving
    /// the simulated functions' chaining behaviour, but the platform plans
    /// only from what its branch detector and correlator have learned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`deploy`](Self::deploy).
    pub fn deploy_implicit(&mut self, dag: WorkflowDag) -> Result<(), PlatformError> {
        self.deploy_entry(dag, true)
    }

    /// Parses and deploys an explicit workflow from a state-definition-
    /// language document (§4, Listing 1).
    ///
    /// # Errors
    ///
    /// SDL parse errors and the same conditions as [`deploy`](Self::deploy).
    pub fn deploy_sdl(&mut self, name: &str, document: &str) -> Result<(), PlatformError> {
        let dag = xanadu_chain::sdl::parse(name, document)?;
        self.deploy(dag)
    }

    fn deploy_entry(&mut self, dag: WorkflowDag, implicit: bool) -> Result<(), PlatformError> {
        dag.validate()?;
        let name = dag.name().to_string();
        if self.workflow_ids.get(&name).is_some() {
            return Err(PlatformError::AlreadyDeployed(name));
        }
        self.metastore.put(
            &format!("workflow/{name}"),
            json!({"functions": dag.len(), "depth": dag.depth(), "implicit": implicit}),
        );
        let declared_outputs = Arc::new(dag.declared_outputs());
        let dag = Arc::new(dag);
        if self.config.static_prewarm > 0 {
            for id in dag.node_ids() {
                let spec = dag.node(id).spec().clone();
                for _ in 0..self.config.static_prewarm {
                    self.provision_worker(POOL_OWNER, &spec, false, false);
                }
            }
        }
        let sym = self.workflow_ids.intern(&name);
        debug_assert_eq!(sym.index(), self.workflows.len());
        let tenant = self.cluster.tenant_for_workflow(&name);
        self.workflows.push(WorkflowEntry {
            dag,
            implicit,
            declared_outputs,
            tenant,
        });
        Ok(())
    }

    /// Schedules a trigger of `workflow` at absolute simulation time `at`,
    /// returning the request id.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownWorkflow`] if the name is not deployed.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past once
    /// [`run_until_idle`](Self::run_until_idle) has advanced beyond it.
    pub fn trigger_at(&mut self, workflow: &str, at: SimTime) -> Result<u64, PlatformError> {
        let Some(sym) = self.workflow_ids.get(workflow) else {
            return Err(PlatformError::UnknownWorkflow(workflow.to_string()));
        };
        let req = self.next_request;
        self.next_request += 1;
        self.queue
            .schedule(at, Event::Trigger { req, workflow: sym });
        Ok(req)
    }

    /// Pre-sizes the event queue and per-request tables for a workload of
    /// roughly `invocations` triggers, avoiding incremental re-allocation
    /// during fleet-scale replays. Purely an optimization: results are
    /// identical with or without the call.
    pub fn reserve_invocations(&mut self, invocations: usize) {
        self.queue.reserve(invocations.saturating_mul(2));
        self.runs.reserve(invocations);
        self.results.reserve(invocations);
    }

    /// The in-flight run for `req`, if it has not finished.
    fn run(&self, req: u64) -> Option<&RunState> {
        // `req as usize` saturates sentinel ids (POOL_OWNER) far past the
        // slab: the bounds check turns them into `None`.
        self.runs.get(req as usize).and_then(|slot| slot.as_deref())
    }

    /// Mutable access to the in-flight run for `req`.
    fn run_mut(&mut self, req: u64) -> Option<&mut RunState> {
        self.runs
            .get_mut(req as usize)
            .and_then(|slot| slot.as_deref_mut())
    }

    /// The request that spawned `worker`, if any.
    fn spawner_of(&self, worker: WorkerId) -> Option<u64> {
        self.spawner.get(worker.0 as usize).copied().flatten()
    }

    /// Records which request spawned `worker`.
    fn set_spawner(&mut self, worker: WorkerId, req: u64) {
        let idx = worker.0 as usize;
        if self.spawner.len() <= idx {
            self.spawner.resize(idx + 1, None);
        }
        self.spawner[idx] = Some(req);
    }

    /// Drains the event queue, advancing virtual time until no events
    /// remain. Returns the number of events processed.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut processed = 0;
        while let Some((t, event)) = self.queue.pop() {
            assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.handle(event);
            processed += 1;
        }
        processed
    }

    /// Processes events up to and including `deadline`, then stops with
    /// later events still queued (stepped simulation, e.g. for live
    /// monitoring through the bus). Advances the clock to `deadline` even
    /// if the queue empties earlier. Returns the number of events
    /// processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, event) = self.queue.pop().expect("peeked event exists");
            assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.handle(event);
            processed += 1;
        }
        self.now = self.now.max(deadline);
        processed
    }

    /// Processes events up to and including `deadline` like
    /// [`run_until`](Self::run_until), but leaves the clock at the last
    /// processed event instead of advancing it to `deadline`. The
    /// sharded driver ([`crate::shard`]) steps with this so the final
    /// clock value — which prices end-of-run worker teardown in
    /// [`finish`](Self::finish) — depends only on the event stream,
    /// never on the driver's barrier-window width.
    pub fn step_window(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, event) = self.queue.pop().expect("peeked event exists");
            assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.handle(event);
            processed += 1;
        }
        processed
    }

    /// Completed request results so far.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// The metrics engine (profiled EMAs).
    pub fn metrics(&self) -> &MetricsEngine {
        &self.metrics
    }

    /// The implicit-chain branch detector.
    pub fn detector(&self) -> &BranchDetector {
        &self.detector
    }

    /// Hit/miss counters of the speculation policy's plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.policy.plan_cache_stats()
    }

    /// Label of the active speculation policy (e.g. `xanadu-jit`, `mpc`).
    pub fn policy_label(&self) -> &'static str {
        self.policy.label()
    }

    /// The metadata store.
    pub fn metastore(&self) -> &MetaStore {
        &self.metastore
    }

    /// Subscribes to a bus [`Topic`]; every [`BusEvent`] subsequently
    /// emitted on it is delivered to the returned handle.
    pub fn subscribe(&mut self, topic: Topic) -> crate::bus::Subscription {
        self.bus.subscribe(topic)
    }

    /// Attaches a synchronous [`Observer`]: it sees every emitted event,
    /// in deterministic simulation order, for the rest of the platform's
    /// life. The returned handle reads the observer's state back out.
    ///
    /// Attaching any observer (or bus subscriber) is what turns event
    /// emission on — an unobserved platform never constructs events, so
    /// observability costs nothing when unused.
    pub fn attach_observer<O: Observer + 'static>(&mut self, observer: O) -> ObserverHandle<O> {
        let handle = ObserverHandle::new(observer);
        self.observers.push(handle.shared());
        handle
    }

    /// Attaches a [`MetricsRegistry`] observer and remembers it:
    /// [`finish`](Self::finish) embeds its final snapshot into
    /// [`PlatformReport::metrics`].
    pub fn attach_metrics(&mut self) -> ObserverHandle<MetricsRegistry> {
        let handle = self.attach_observer(MetricsRegistry::new());
        self.registry = Some(handle.clone());
        handle
    }

    /// Attaches a live [`SloMonitor`]: it folds every completed request
    /// into tumbling windows, and whenever a closed window breaches the
    /// configured thresholds the platform re-emits the breach as a typed
    /// [`BusEvent::SloAlert`] (subscribable like any other topic). The
    /// final partial window is evaluated by [`finish`](Self::finish).
    pub fn attach_slo(&mut self, config: SloConfig) -> ObserverHandle<SloMonitor> {
        let handle = self.attach_observer(SloMonitor::live(config));
        self.slo = Some(handle.clone());
        handle
    }

    /// Total events published on the bus so far. Zero on an unobserved
    /// platform — the emission guard skips construction entirely.
    pub fn published_events(&self) -> u64 {
        self.bus.published_count()
    }

    /// Whether an emission to `topic` would reach anyone. Checked before
    /// constructing any [`BusEvent`] so the unobserved hot path pays a
    /// branch, not an allocation.
    fn observing(&self, topic: Topic) -> bool {
        !self.observers.is_empty() || self.bus.has_subscribers(topic)
    }

    /// Delivers `event` to every observer, then publishes it on the bus.
    /// When a live [`SloMonitor`] is attached, any alerts its windows
    /// raised while absorbing the event are re-emitted immediately as
    /// [`BusEvent::SloAlert`] (the monitor ignores alert events, so the
    /// recursion is one level deep).
    fn emit(&mut self, event: BusEvent) {
        for obs in &self.observers {
            obs.lock()
                .expect("observer lock poisoned")
                .on_event(self.now, &event);
        }
        self.bus.publish(self.now, event);
        if let Some(slo) = self.slo.clone() {
            for alert in slo.with_mut(SloMonitor::take_alerts) {
                self.emit(alert.into_event());
            }
        }
    }

    /// Publishes an externally-constructed event at the current
    /// simulation time, subject to the same anyone-listening guard as
    /// internal emissions. The service tier uses this to surface
    /// checkpoint, restore, sketch-eviction, and boundary-evaluated SLO
    /// alert activity to the platform's observers and subscribers.
    pub fn announce(&mut self, event: BusEvent) {
        if self.observing(event.topic()) {
            self.emit(event);
        }
    }

    /// Number of live workers (any state).
    pub fn live_workers(&self) -> usize {
        self.pool.live_count()
    }

    /// Number of events still queued. The sharded replay driver
    /// ([`crate::shard`]) polls this at every time-window barrier to
    /// detect fleet-wide quiescence.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The cluster view: host placement and load of every live worker.
    pub fn cluster(&self) -> &HostRegistry {
        &self.cluster
    }

    /// The adaptive keep-alive advisor (§7 future work): per-function
    /// recommendations derived from observed speculation coverage and
    /// inter-arrival gaps. Advisory only — the pool keeps its configured
    /// keep-alive; an operator (or the `abl-keepalive` ablation) applies
    /// the recommendations.
    pub fn keepalive_advisor(&self) -> &AdaptiveKeepAlive {
        &self.keepalive_advisor
    }

    /// The orchestration timeline of a completed request (Figure 10's
    /// sequence as actually executed), if the request has finished.
    pub fn trace(&self, request: u64) -> Option<&Trace> {
        self.traces.get(&request)
    }

    /// Rolls the detector's exponential-averaging window (§3.1 "metrics
    /// being updated after every fixed interval of time").
    pub fn roll_profile_window(&mut self) {
        self.detector.roll_window();
    }

    /// Persists the learned state — function profiles and the branch
    /// model — into the metadata store, the paper's "backing everything up
    /// on the Metadata DB for persistence" (§4). Returns the document ids.
    pub fn persist_learned_state(&mut self) -> LearnedState {
        let metrics_doc = serde_json::to_value(&self.metrics).expect("metrics serialize");
        let detector_doc = serde_json::to_value(&self.detector).expect("detector serialize");
        self.metastore.put("learned/metrics", metrics_doc);
        self.metastore.put("learned/branches", detector_doc);
        LearnedState {
            metrics_doc: "learned/metrics".into(),
            branch_doc: "learned/branches".into(),
        }
    }

    /// Restores learned state previously persisted with
    /// [`persist_learned_state`](Self::persist_learned_state) — e.g. into a
    /// freshly started platform after a restart, so speculation does not
    /// need to re-learn from scratch.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Restore`] if either document is missing or fails
    /// to deserialize.
    pub fn restore_learned_state(&mut self, store: &MetaStore) -> Result<(), PlatformError> {
        let restore = |reason: String| PlatformError::Restore(reason);
        let (metrics_doc, _) = store
            .get("learned/metrics")
            .ok_or_else(|| restore("learned/metrics document missing".into()))?;
        let (detector_doc, _) = store
            .get("learned/branches")
            .ok_or_else(|| restore("learned/branches document missing".into()))?;
        self.metrics = serde_json::from_value(metrics_doc.clone())
            .map_err(|e| restore(format!("bad metrics document: {e}")))?;
        self.detector = serde_json::from_value(detector_doc.clone())
            .map_err(|e| restore(format!("bad branch document: {e}")))?;
        // The restored engines restart their epoch counters, which could
        // collide with the epochs a cached plan was tagged with.
        self.policy.invalidate_plan_cache();
        Ok(())
    }

    /// Finishes the run: tears down all remaining workers and returns the
    /// complete report. Idle non-pool workers are accounted as reclaimed
    /// at their keep-alive expiry (the platform would have reaped them);
    /// pool-owned workers are charged through to the end of the run.
    pub fn finish(mut self) -> PlatformReport {
        self.run_until_idle();
        // Close and evaluate the SLO monitor's final partial window, so a
        // breach in the stream's tail still alerts before teardown.
        if let Some(slo) = self.slo.clone() {
            for alert in slo.with_mut(SloMonitor::finish_stream) {
                self.emit(alert.into_event());
            }
        }
        let keep_alive = self.pool.config().keep_alive;
        let ids: Vec<(WorkerId, SimTime)> = self
            .pool
            .live_workers()
            .map(|w| {
                let at = if self.spawner_of(w.id()) == Some(POOL_OWNER) {
                    self.now
                } else {
                    match w.last_active().checked_add(keep_alive) {
                        Some(expiry) => expiry.min(self.now).max(w.last_active()),
                        None => self.now,
                    }
                };
                (w.id(), at)
            })
            .collect();
        for (id, at) in ids {
            self.pool.kill(id, at);
            self.cluster.release(id);
        }
        let cluster = self.cluster_report();
        let mut records = self.pool.drain(self.now);
        // The teardown above iterates the live map (hash order): sort the
        // ledger so identical runs produce byte-identical reports.
        records.sort_by_key(|r| r.id);
        PlatformReport {
            results: self.results,
            worker_records: records,
            metrics: self.registry.as_ref().map(ObserverHandle::snapshot),
            cluster,
        }
    }

    /// Snapshot of the cluster scheduling outcome: per-host utilization
    /// and the cold-start locality attribution tracked by the simulator.
    /// `None` unless an explicit multi-host cluster (or autoscaler) was
    /// configured, so default reports stay byte-identical.
    pub fn cluster_report(&self) -> Option<ClusterReport> {
        if !self.cluster_enabled {
            return None;
        }
        let mut report = self.cluster.report();
        report.cross_host_cold = self.cross_host_cold;
        report.same_host_cold = self.same_host_cold;
        report.retargets_colocated = self.retargets_colocated;
        Some(report)
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Event) {
        match event {
            Event::Trigger { req, workflow } => self.on_trigger(req, workflow),
            Event::Deploy {
                req,
                node,
                generation,
            } => self.on_deploy(req, node, generation),
            Event::Invoke { req, node, parent } => self.on_invoke(req, node, parent),
            Event::WorkerReady { worker } => self.on_worker_ready(worker),
            Event::ExecStart {
                req,
                node,
                worker,
                acquired,
                invoked_at,
            } => self.on_exec_start(req, node, worker, acquired, invoked_at),
            Event::ExecEnd {
                req,
                node,
                worker,
                began,
            } => self.on_exec_end(req, node, worker, began),
            Event::WorkerCrash { worker } => self.on_worker_crash(worker),
            Event::ExecTimeout {
                req,
                node,
                worker,
                began,
            } => self.on_exec_timeout(req, node, worker, began),
            Event::Redispatch { req, node } => self.on_redispatch(req, node),
            Event::HostFail { host, epoch } => self.on_host_fail(host, epoch),
            Event::HostBoot { host } => self.on_host_boot(host),
        }
    }

    /// An injected host failure fires. Stale if the host already cycled
    /// into a newer uptime epoch (the fault plan was swapped, or the host
    /// was down when the crash was drawn). Every non-shielded worker on
    /// the host crashes; shielded final-retry workers survive hostless so
    /// the termination guarantee holds under any fault schedule.
    fn on_host_fail(&mut self, host: u32, epoch: u32) {
        let id = HostId(host);
        if self.cluster.epoch(id) != epoch || !self.cluster.is_up(id) {
            return;
        }
        let drained = self.cluster.fail_host(id);
        let (lost, shielded): (Vec<WorkerId>, Vec<WorkerId>) = drained
            .into_iter()
            .partition(|w| !self.shielded_workers.contains(w));
        let _ = shielded; // survive hostless: nothing to do
        if self.observing(Topic::HostDown) {
            self.emit(BusEvent::HostDown {
                host,
                workers_lost: lost.len() as u32,
            });
        }
        for worker in lost {
            self.on_worker_crash(worker);
        }
        // Reboot only while requests are in flight: an idle platform must
        // quiesce, or `run_until_idle` would cycle hosts forever.
        if self.active_runs > 0 {
            let reboot = SimDuration::from_millis_f64(self.config.faults.host_reboot_ms);
            self.queue
                .schedule(self.now + reboot, Event::HostBoot { host });
        }
    }

    /// A host comes up: an autoscaled boot or a post-failure reboot. The
    /// next injected crash for its new uptime epoch is drawn here.
    fn on_host_boot(&mut self, host: u32) {
        let id = HostId(host);
        if !self.cluster.activate_host(id) {
            return;
        }
        if self.observing(Topic::HostUp) {
            self.emit(BusEvent::HostUp {
                host,
                memory_mb: self.cluster.memory_mb(id),
            });
        }
        if self.faults.hosts_enabled() {
            let epoch = self.cluster.epoch(id);
            if let Some(at) = self.faults.host_crash_time(host, epoch, self.now) {
                self.queue.schedule(at, Event::HostFail { host, epoch });
            }
        }
    }

    /// Reactive scale-up: when the autoscaler is enabled and cluster free
    /// memory dips below the configured threshold, reserve one host and
    /// schedule its boot. One host boots at a time (the registry refuses
    /// to scale while a boot is pending), so reaction is gradual.
    fn maybe_scale_up(&mut self) {
        if !self.cluster.wants_scale_up() {
            return;
        }
        let spec = self.cluster.autoscale_host_spec();
        let id = self.cluster.reserve_host(spec);
        let boot = SimDuration::from_millis_f64(self.cluster.autoscale().boot_ms);
        self.queue
            .schedule(self.now + boot, Event::HostBoot { host: id.0 });
    }

    fn on_trigger(&mut self, req: u64, workflow: Sym) {
        // Lazy keep-alive reaping (the Dispatch Daemons' maintenance duty):
        // workers idle past keep-alive are torn down before new work is
        // admitted, returning their host memory. `find_warm` already
        // refuses stale workers, so this only affects accounting and
        // cluster load, never request routing.
        // The kill timestamp is backdated to the keep-alive expiry: the
        // platform reclaims at expiry, we merely *execute* the reclamation
        // lazily, and accounting must not charge the difference.
        // Expiry is monotone in `last_active`, so only an ascending prefix
        // of the pool's LRU order can be stale.
        let keep_alive = self.pool.config().keep_alive;
        let expired: Vec<(WorkerId, SimTime)> = self
            .pool
            .warm_lru()
            .take_while(|w| self.now.saturating_since(w.last_active()) > keep_alive)
            .filter(|w| !self.claimed.contains(&w.id()) && !self.is_pool_owned(w.id()))
            .map(|w| (w.id(), w.last_active() + keep_alive))
            .collect();
        for (id, at) in expired {
            self.kill_worker(id, at);
        }

        let entry = self.workflows[workflow.index()].clone();
        let dag = entry.dag.clone();

        // Draw the request's ground truth: XOR outcomes and service times.
        // A node with a data-driven decision whose condition evaluates over
        // the workflow's declared outputs follows the data; otherwise the
        // outcome is drawn from the declared branch probabilities. The
        // declared-output table was computed once at registration.
        let declared_outputs = &entry.declared_outputs;
        let mut rng = self.rng_branch.child(req);
        let mut xor_choice = HashMap::new();
        for id in dag.node_ids() {
            if dag.node(id).branch_mode() == BranchMode::Xor && !dag.children(id).is_empty() {
                let decided = dag.node(id).decision().and_then(|d| {
                    d.condition.evaluate(declared_outputs).map(|holds| {
                        if holds {
                            d.on_true.clone()
                        } else {
                            d.on_false.clone()
                        }
                    })
                });
                let chosen = match decided {
                    Some(group) => group,
                    None => {
                        let edges = dag.children(id);
                        let weights: Vec<f64> = edges.iter().map(|e| e.weight).collect();
                        vec![edges[rng.weighted_choice(&weights)].to]
                    }
                };
                xor_choice.insert(id, chosen);
            }
        }
        let mut svc_rng = self.rng_service.child(req);
        let service: Vec<SimDuration> = dag
            .node_ids()
            .map(|id| dag.node(id).spec().service_dist().sample(&mut svc_rng))
            .collect();

        // Activation: BFS from roots along actually-firing edges.
        let mut activated = vec![false; dag.len()];
        let mut required_in = vec![0usize; dag.len()];
        for root in dag.roots() {
            activated[root.index()] = true;
        }
        for id in dag.topo_order() {
            if !activated[id.index()] {
                continue;
            }
            match dag.node(id).branch_mode() {
                BranchMode::Multicast => {
                    for e in dag.children(id) {
                        activated[e.to.index()] = true;
                        required_in[e.to.index()] += 1;
                    }
                }
                BranchMode::Xor => {
                    if let Some(group) = xor_choice.get(&id) {
                        for &chosen in group {
                            activated[chosen.index()] = true;
                            required_in[chosen.index()] += 1;
                        }
                    }
                }
            }
        }
        let remaining = activated.iter().filter(|&&a| a).count();

        // Planning phase (Figure 10): runs "in parallel" with root dispatch,
        // i.e. deployments are scheduled at their plan offsets from now.
        let mut planned = NodeSet::with_capacity(dag.len());
        let mut plan_generation = 0;
        if self.policy.plans_at_trigger() {
            let plan = {
                let estimates = PlatformEstimates {
                    metrics: &self.metrics,
                    provider: &self.provider,
                    dag: &dag,
                    implicit: entry.implicit,
                    hop_overhead_ms: self.config.orchestration_overhead.mean_ms(),
                };
                let detector = &self.detector;
                let use_learned = self.config.use_learned_probabilities || entry.implicit;
                let implicit = entry.implicit;
                let dag_ref = &dag;
                // The learned-probability stream only feeds the plan when
                // `use_learned`; otherwise the plan is a pure function of
                // the (immutable) DAG, so epoch 0 keeps it cached forever.
                let estimates_epoch = self.metrics.epoch();
                let prob_epoch = if use_learned {
                    self.detector.epoch()
                } else {
                    0
                };
                let ctx = PlanContext {
                    now: self.now,
                    estimates_epoch,
                    prob_epoch,
                };
                let mut rho = |p: NodeId, c: NodeId| {
                    if !use_learned {
                        return None; // ground truth
                    }
                    let pn = dag_ref.node(p).spec().name();
                    let cn = dag_ref.node(c).spec().name();
                    match detector.smoothed_probability(pn, cn) {
                        Some(prob) => Some(prob),
                        // Implicit chains must not peek at the schema: an
                        // unlearned edge has probability zero. Explicit
                        // chains fall back to declared probabilities.
                        None if implicit => Some(0.0),
                        None => None,
                    }
                };
                self.policy.plan(&ctx, dag_ref, &estimates, &mut rho)
            };
            plan_generation = 1;
            for d in plan.deployments() {
                planned.insert(d.node);
                self.queue.schedule(
                    self.now + d.deploy_at,
                    Event::Deploy {
                        req,
                        node: d.node,
                        generation: plan_generation,
                    },
                );
            }
        }

        let plan_active = !planned.is_empty();
        let planned_count = planned.len() as u64;
        let state = RunState {
            workflow,
            dag: dag.clone(),
            implicit: entry.implicit,
            trigger: self.now,
            xor_choice,
            activated,
            required_in,
            delivered_in: vec![0; dag.len()],
            invoked: vec![false; dag.len()],
            completed: vec![false; dag.len()],
            service,
            remaining,
            planned,
            plan_generation,
            plan_active,
            spawned: Vec::new(),
            cold_starts: 0,
            warm_starts: 0,
            misses: 0,
            had_plan: plan_active,
            plan_cancelled: false,
            fault_attempts: vec![0; dag.len()],
            faults: 0,
            retries: 0,
            trace: Trace::default(),
            locus: None,
        };
        let idx = req as usize;
        if self.runs.len() <= idx {
            self.runs.resize_with(idx + 1, || None);
        }
        debug_assert!(self.runs[idx].is_none(), "request id reused");
        self.runs[idx] = Some(Box::new(state));
        self.active_runs += 1;
        if self.config.record_traces {
            let run = self.runs[idx].as_deref_mut().expect("just inserted");
            run.trace.record(self.now, TraceEventKind::Triggered);
            if plan_active {
                run.trace.record(
                    self.now,
                    TraceEventKind::PlanComputed {
                        planned: planned_count,
                    },
                );
            }
        }
        if self.observing(Topic::RequestTriggered) {
            let name = self.workflow_ids.resolve(workflow).to_string();
            self.emit(BusEvent::RequestTriggered {
                request: req,
                workflow: name,
            });
        }
        if plan_active && self.observing(Topic::PlanComputed) {
            let name = self.workflow_ids.resolve(workflow).to_string();
            self.emit(BusEvent::PlanComputed {
                request: req,
                workflow: name,
                planned: planned_count,
            });
        }
        if plan_generation != 0 && self.observing(Topic::PolicyDecision) {
            let policy = self.policy.label().to_string();
            self.emit(BusEvent::PolicyDecision {
                request: req,
                policy,
                planned: planned_count,
                reason: "trigger".to_string(),
            });
        }

        // Dispatch roots through the reverse proxy.
        for root in dag.roots() {
            let overhead = self.sample_overhead();
            self.queue.schedule(
                self.now + overhead,
                Event::Invoke {
                    req,
                    node: root,
                    parent: None,
                },
            );
        }
    }

    fn on_deploy(&mut self, req: u64, node: NodeId, generation: u32) {
        let Some(run) = self.run(req) else {
            return; // request already finished
        };
        if !run.plan_active || run.plan_generation != generation {
            return; // plan was cancelled or replaced (prediction miss)
        }
        let dag = run.dag.clone();
        let spec = dag.node(node).spec();
        // Skip when a warm or in-flight worker already covers the function
        // (e.g. kept warm from a previous request).
        if self.usable_worker_exists(spec.name()) {
            return;
        }
        let allow_retarget = self.policy.allows_retarget();
        if allow_retarget && self.try_retarget(req, spec) {
            return;
        }
        self.provision_worker(req, spec, false, false);
    }

    fn on_invoke(&mut self, req: u64, node: NodeId, parent: Option<NodeId>) {
        let record_traces = self.config.record_traces;
        let now = self.now;
        let Some(run) = self.run_mut(req) else {
            return;
        };
        if run.invoked[node.index()] {
            return; // defensive: barrier delivered twice
        }
        run.invoked[node.index()] = true;
        if record_traces {
            run.trace.record(
                now,
                TraceEventKind::Invoked {
                    function: run.dag.node(node).spec().name().to_string(),
                },
            );
        }
        let dag = run.dag.clone();
        let function = dag.node(node).spec().name();
        let parent_name = parent.map(|p| dag.node(p).spec().name());
        if self.observing(Topic::FunctionInvoked) {
            self.emit(BusEvent::FunctionInvoked {
                request: req,
                function: function.to_string(),
                node: node.index() as u64,
            });
        }

        // Branch detection + request correlation (implicit-chain learning).
        // Invoke delays are measured against the parent's *execution start*
        // (logged by the reverse proxy at dispatch time), so the learned
        // delay reflects the parent's behaviour rather than however long it
        // happened to wait for a sandbox on this particular run.
        self.detector.observe_request(function, parent_name);
        if let Some(pn) = parent_name {
            if let Some(delay) = self
                .correlator
                .observe_child_arrival(pn, function, self.now)
            {
                self.metrics.record_invoke_delay(pn, function, delay);
            }
        }

        // Prediction-miss detection. Misses keep counting after the plan
        // is cancelled (the chain keeps deviating from what was predicted);
        // the miss *policy* fires per unplanned invocation but cancellation
        // happens only once.
        let run = self.run_mut(req).expect("run exists");
        if run.had_plan && !run.planned.contains(node) {
            run.misses += 1;
            if record_traces {
                run.trace.record(
                    now,
                    TraceEventKind::PredictionMiss {
                        function: function.to_string(),
                    },
                );
            }
            self.on_prediction_miss(req, node);
        }

        // Worker acquisition via the resource allocator.
        self.dispatch_node(req, node);
    }

    /// Routes one invocation of `node` to a worker: the resource-allocator
    /// half of [`on_invoke`](Self::on_invoke), also used to re-dispatch
    /// attempts orphaned by crashes or aborted by timeouts. Prefers a warm
    /// worker, then in-flight provisioning, then (under
    /// [`MissPolicy::ReplanAndReuse`]) retargeting a compatible co-located
    /// spare, then a fresh on-demand provision. Once the fault-retry budget
    /// is exhausted the attempt is
    /// *shielded*: a fresh worker exempt from fault injection, so every
    /// request terminates under any fault schedule.
    fn dispatch_node(&mut self, req: u64, node: NodeId) {
        let run = self.run(req).expect("run exists");
        let dag = run.dag.clone();
        let spec = dag.node(node).spec();
        let function = spec.name();
        let invoked_at = self.now;
        let shielded = (self.faults.enabled() || self.faults.hosts_enabled())
            && run.fault_attempts[node.index()] >= self.config.faults.max_retries;
        if shielded {
            let (worker, ready_at) = self
                .provision_worker(req, spec, true, true)
                .expect("on-demand provisioning always yields a worker");
            self.claimed.insert(worker);
            let dispatch = self.provider.warm_dispatch(spec.isolation_level());
            self.queue.schedule(
                ready_at + dispatch,
                Event::ExecStart {
                    req,
                    node,
                    worker,
                    acquired: Acquired::Fresh,
                    invoked_at,
                },
            );
            return;
        }
        if let Some(worker) = self.find_claimable_warm(function) {
            self.claimed.insert(worker);
            let dispatch = self.provider.warm_dispatch(spec.isolation_level());
            self.queue.schedule(
                self.now + dispatch,
                Event::ExecStart {
                    req,
                    node,
                    worker,
                    acquired: Acquired::Warm,
                    invoked_at,
                },
            );
        } else if let Some((worker, ready_at)) = self.find_claimable_pending(function) {
            self.claimed.insert(worker);
            let dispatch = self.provider.warm_dispatch(spec.isolation_level());
            self.queue.schedule(
                ready_at.max(self.now) + dispatch,
                Event::ExecStart {
                    req,
                    node,
                    worker,
                    acquired: Acquired::Pending,
                    invoked_at,
                },
            );
        } else if self.policy.allows_retarget() && self.try_retarget(req, spec) {
            // Future work §7: a mispredicted branch left this request a
            // compatible unused spare (co-located when running clustered).
            // Retargeting it serves the dispatch warm instead of paying an
            // on-demand cold start.
            let worker = self
                .find_claimable_warm(function)
                .expect("retargeting produced a warm worker for this function");
            self.claimed.insert(worker);
            let dispatch = self.provider.warm_dispatch(spec.isolation_level());
            self.queue.schedule(
                self.now + dispatch,
                Event::ExecStart {
                    req,
                    node,
                    worker,
                    acquired: Acquired::Warm,
                    invoked_at,
                },
            );
        } else {
            let (worker, ready_at) = self
                .provision_worker(req, spec, true, false)
                .expect("on-demand provisioning always yields a worker");
            self.claimed.insert(worker);
            let dispatch = self.provider.warm_dispatch(spec.isolation_level());
            self.queue.schedule(
                ready_at + dispatch,
                Event::ExecStart {
                    req,
                    node,
                    worker,
                    acquired: Acquired::Fresh,
                    invoked_at,
                },
            );
        }
    }

    fn on_redispatch(&mut self, req: u64, node: NodeId) {
        if self.run(req).is_some() {
            self.dispatch_node(req, node);
        }
    }

    fn on_worker_ready(&mut self, worker: WorkerId) {
        // The worker's provisioning burst on its host is over: it stops
        // contending with concurrent cold starts there.
        self.cluster.worker_ready(worker);
        if self.pool.mark_ready(worker) && self.observing(Topic::WorkerReady) {
            self.emit(BusEvent::WorkerReady { worker: worker.0 });
        }
    }

    fn on_exec_start(
        &mut self,
        req: u64,
        node: NodeId,
        worker: WorkerId,
        acquired: Acquired,
        invoked_at: SimTime,
    ) {
        self.claimed.remove(&worker);
        let record_traces = self.config.record_traces;
        let now = self.now;
        let Some(run) = self.run_mut(req) else {
            // Request finished while we were waiting (should not happen for
            // activated nodes); release the claim.
            return;
        };
        let dag = run.dag.clone();
        let spec = dag.node(node).spec();
        let function = spec.name();
        let level = spec.isolation_level();
        // Observed startup latency: invocation to execution start.
        let startup_wait = self.now.saturating_since(invoked_at);
        // A speculated worker that was *almost* ready counts warm: if the
        // residual wait is a small fraction of a real cold start, the
        // request effectively observed a warm start (this is what a
        // latency-threshold measurement like the paper's Figure 6
        // classification would report).
        let near_ready =
            startup_wait.as_millis_f64() <= 0.2 * self.provider.mean_cold_start_ms(level);
        let warm_start = match acquired {
            Acquired::Warm => true,
            Acquired::Fresh => false,
            Acquired::Pending => near_ready,
        };
        let run = self.run_mut(req).expect("run exists");
        if warm_start {
            run.warm_starts += 1;
        } else {
            run.cold_starts += 1;
        }
        if self.cluster_enabled {
            let host = self.cluster.host_of(worker);
            let locus = self.run(req).and_then(|r| r.locus);
            if !warm_start {
                match (locus, host) {
                    (Some(locus), Some(host)) if locus != host => self.cross_host_cold += 1,
                    (Some(_), Some(_)) => self.same_host_cold += 1,
                    _ => {} // first hop of the chain, or an overcommitted worker
                }
            }
            if host.is_some() {
                self.run_mut(req).expect("run exists").locus = host;
            }
        }
        if acquired != Acquired::Warm {
            self.metrics.record_startup(function, startup_wait);
        }
        // Feed the adaptive keep-alive advisor: an invocation is "covered
        // by speculation" when its worker was spawned for this very
        // request's plan (not an on-demand provision, not a keep-alive
        // reuse of an older worker).
        let covered = acquired != Acquired::Fresh && self.spawner_of(worker) == Some(req);
        self.keepalive_advisor
            .observe(function, invoked_at, covered);
        if record_traces {
            let run = self.run_mut(req).expect("run exists");
            run.trace.record(
                now,
                TraceEventKind::ExecStarted {
                    function: function.to_string(),
                    warm: acquired == Acquired::Warm,
                },
            );
        }
        if self.observing(Topic::ExecStarted) {
            self.emit(BusEvent::ExecStarted {
                request: req,
                function: function.to_string(),
                worker: worker.0,
                warm: acquired == Acquired::Warm,
                queue_wait_ms: startup_wait.as_millis_f64(),
            });
        }
        let run = self.run_mut(req).expect("run exists");

        let mut service = run.service[node.index()];
        let attempt = run.fault_attempts[node.index()];
        let shielded = attempt >= self.config.faults.max_retries;
        if self.faults.enabled() && !shielded {
            if let Some(factor) = self.faults.spike(req, node.index(), attempt) {
                service = service.mul_f64(factor);
            }
        }
        self.correlator.observe_arrival(function, self.now);
        self.pool.begin_exec(worker, self.now);
        if self.faults.enabled()
            && !shielded
            && service.as_millis_f64() > self.config.faults.timeout_ms
        {
            // The attempt would exceed the per-invocation timeout: abort
            // at the deadline and retry instead of completing.
            let timeout = SimDuration::from_millis_f64(self.config.faults.timeout_ms);
            self.queue.schedule(
                self.now + timeout,
                Event::ExecTimeout {
                    req,
                    node,
                    worker,
                    began: self.now,
                },
            );
        } else {
            self.queue.schedule(
                self.now + service,
                Event::ExecEnd {
                    req,
                    node,
                    worker,
                    began: self.now,
                },
            );
        }
    }

    fn on_exec_end(&mut self, req: u64, node: NodeId, worker: WorkerId, began: SimTime) {
        let exec_duration = self.now.saturating_since(began);
        self.pool.end_exec(worker, began, self.now);
        // Warm-cap eviction latency is charged to future provisions via
        // max_live, not retroactively here; only the host memory returns.
        // Claimed workers (dispatch in flight) are exempt from eviction.
        for evicted in self.pool.enforce_warm_cap(self.now, &self.claimed) {
            self.evict_worker(evicted);
        }

        let record_traces = self.config.record_traces;
        let now = self.now;
        let run = self.run_mut(req).expect("run exists");
        let dag = run.dag.clone();
        let spec = dag.node(node).spec();
        let function = spec.name();
        self.metrics.record_warm_runtime(function, exec_duration);
        if record_traces {
            let run = self.run_mut(req).expect("run exists");
            run.trace.record(
                now,
                TraceEventKind::ExecEnded {
                    function: function.to_string(),
                },
            );
        }
        if self.observing(Topic::ExecEnded) {
            self.emit(BusEvent::ExecEnded {
                request: req,
                function: function.to_string(),
                worker: worker.0,
                exec_ms: exec_duration.as_millis_f64(),
            });
        }

        // Replenish the static pre-warm pool: the used worker stays warm,
        // but if churn (eviction/misses) dropped the function below its
        // pool size, provision a replacement now.
        if self.config.static_prewarm > 0 {
            let available = self.pool.warm_count(function) + self.pool.provisioning_count(function);
            if available < self.config.static_prewarm {
                self.provision_worker(POOL_OWNER, spec, false, false);
            }
        }

        let run = self.run_mut(req).expect("run exists");
        run.completed[node.index()] = true;
        run.remaining -= 1;

        // Reveal this node's outgoing activations and deliver barriers,
        // without cloning the firing set: split borrows let the barrier
        // counters update while the XOR choice is read in place.
        let mut to_invoke: Vec<NodeId> = Vec::new();
        {
            let RunState {
                xor_choice,
                delivered_in,
                required_in,
                ..
            } = run;
            let mut deliver = |child: NodeId| {
                delivered_in[child.index()] += 1;
                if delivered_in[child.index()] == required_in[child.index()] {
                    to_invoke.push(child);
                }
            };
            match dag.node(node).branch_mode() {
                BranchMode::Multicast => {
                    for e in dag.children(node) {
                        deliver(e.to);
                    }
                }
                BranchMode::Xor => {
                    if let Some(group) = xor_choice.get(&node) {
                        for &child in group {
                            deliver(child);
                        }
                    }
                }
            }
        }
        for child in to_invoke {
            let overhead = self.sample_overhead();
            self.queue.schedule(
                self.now + overhead,
                Event::Invoke {
                    req,
                    node: child,
                    parent: Some(node),
                },
            );
        }

        let run = self.run(req).expect("run exists");
        if run.remaining == 0 {
            self.finalize_run(req);
        }
    }

    fn on_worker_crash(&mut self, worker: WorkerId) {
        // The worker may have been evicted, reaped, or discarded since its
        // crash was scheduled; a crash of a dead worker is a no-op.
        let Some(w) = self.pool.get(worker) else {
            return;
        };
        let function = w.function().to_string();
        let was_provisioning = w.state() == WorkerState::Provisioning;

        // Remove every scheduled event referencing the dead worker. The
        // (req, node) payloads among them are invocations orphaned by the
        // crash — whether waiting on dispatch (ExecStart) or mid-execution
        // (ExecEnd/ExecTimeout) — and are re-dispatched below.
        let removed = self.queue.drain_where(|e| match e {
            Event::WorkerReady { worker: w } => *w == worker,
            Event::ExecStart { worker: w, .. } => *w == worker,
            Event::ExecEnd { worker: w, .. } => *w == worker,
            Event::ExecTimeout { worker: w, .. } => *w == worker,
            _ => false,
        });
        let mut orphans: Vec<(u64, NodeId)> = Vec::new();
        for (_, e) in removed {
            match e {
                Event::ExecStart { req, node, .. }
                | Event::ExecEnd { req, node, .. }
                | Event::ExecTimeout { req, node, .. } => orphans.push((req, node)),
                _ => {}
            }
        }
        self.claimed.remove(&worker);
        self.pool.crash(worker, self.now);
        self.cluster.release(worker);
        if self.observing(Topic::WorkerCrashed) {
            self.emit(BusEvent::WorkerCrashed {
                worker: worker.0,
                function: function.clone(),
            });
        }

        if orphans.is_empty() && was_provisioning {
            // Nothing was waiting on this sandbox: a failed speculative
            // pre-deployment. Let the speculation engine decide.
            self.on_predeploy_failure(worker, &function);
            return;
        }
        let record_traces = self.config.record_traces;
        let now = self.now;
        for (req, node) in orphans {
            let Some(run) = self.run_mut(req) else {
                continue;
            };
            let dag = run.dag.clone();
            let function = dag.node(node).spec().name();
            let attempt = run.fault_attempts[node.index()];
            run.fault_attempts[node.index()] += 1;
            run.faults += 1;
            run.retries += 1;
            if record_traces {
                run.trace.record(
                    now,
                    TraceEventKind::WorkerCrashed {
                        function: function.to_string(),
                    },
                );
                run.trace.record(
                    now,
                    TraceEventKind::Retried {
                        function: function.to_string(),
                        attempt: u64::from(attempt) + 1,
                    },
                );
            }
            let delay = self.config.faults.backoff(attempt);
            if self.observing(Topic::InvokeRetried) {
                self.emit(BusEvent::InvokeRetried {
                    request: req,
                    function: function.to_string(),
                    attempt: u64::from(attempt) + 1,
                    backoff_ms: delay.as_millis_f64(),
                });
            }
            self.queue
                .schedule(self.now + delay, Event::Redispatch { req, node });
        }
    }

    /// A sandbox died during startup with no invocation waiting on it: a
    /// failed speculative pre-deployment. While the retry budget lasts the
    /// deployment is re-submitted with backoff; afterwards the node is
    /// dropped from the plan so its eventual invocation is accounted as
    /// the prediction miss it is — never silently counted warm.
    fn on_predeploy_failure(&mut self, worker: WorkerId, function: &str) {
        let Some(req) = self.spawner_of(worker) else {
            return;
        };
        if req == POOL_OWNER {
            return; // static pre-warm pool: replenished on next use
        }
        let Some(run) = self.run(req) else {
            return;
        };
        let Some(node) = run.dag.node_by_name(function) else {
            return;
        };
        if !run.plan_active || !run.planned.contains(node) || run.invoked[node.index()] {
            return;
        }
        let level = run.dag.node(node).spec().isolation_level();
        let attempt = run.fault_attempts[node.index()];
        let generation = run.plan_generation;
        let startup_ms = self.provider.mean_cold_start_ms(level);
        let action = self.policy.on_deploy_failure(
            node,
            attempt,
            self.config.faults.max_retries,
            startup_ms,
        );
        let record_traces = self.config.record_traces;
        let now = self.now;
        let run = self.run_mut(req).expect("run exists");
        run.fault_attempts[node.index()] += 1;
        run.faults += 1;
        if record_traces {
            run.trace.record(
                now,
                TraceEventKind::DeployFailed {
                    function: function.to_string(),
                    attempt: u64::from(attempt) + 1,
                },
            );
        }
        match action {
            DeployFailureAction::Retry { delay } => {
                self.queue.schedule(
                    self.now + delay,
                    Event::Deploy {
                        req,
                        node,
                        generation,
                    },
                );
            }
            DeployFailureAction::Drop => {
                self.run_mut(req).expect("run exists").planned.remove(node);
            }
        }
    }

    fn on_exec_timeout(&mut self, req: u64, node: NodeId, worker: WorkerId, began: SimTime) {
        // The sandbox survives — only the invocation is aborted; the
        // worker returns to the warm pool and the attempt is retried.
        self.pool.abort_exec(worker, began, self.now);
        let record_traces = self.config.record_traces;
        let now = self.now;
        let Some(run) = self.run_mut(req) else {
            return;
        };
        let dag = run.dag.clone();
        let function = dag.node(node).spec().name();
        let attempt = run.fault_attempts[node.index()];
        run.fault_attempts[node.index()] += 1;
        run.faults += 1;
        run.retries += 1;
        if record_traces {
            run.trace.record(
                now,
                TraceEventKind::TimedOut {
                    function: function.to_string(),
                    attempt: u64::from(attempt) + 1,
                },
            );
            run.trace.record(
                now,
                TraceEventKind::Retried {
                    function: function.to_string(),
                    attempt: u64::from(attempt) + 1,
                },
            );
        }
        if self.observing(Topic::InvokeTimeout) {
            self.emit(BusEvent::InvokeTimeout {
                request: req,
                function: function.to_string(),
                attempt: u64::from(attempt) + 1,
            });
        }
        let delay = self.config.faults.backoff(attempt);
        if self.observing(Topic::InvokeRetried) {
            self.emit(BusEvent::InvokeRetried {
                request: req,
                function: function.to_string(),
                attempt: u64::from(attempt) + 1,
                backoff_ms: delay.as_millis_f64(),
            });
        }
        self.queue
            .schedule(self.now + delay, Event::Redispatch { req, node });
    }

    fn on_prediction_miss(&mut self, req: u64, actual: NodeId) {
        if self.observing(Topic::PredictionMiss) {
            let function = {
                let run = self.run(req).expect("run exists");
                run.dag.node(actual).spec().name().to_string()
            };
            self.emit(BusEvent::PredictionMiss {
                request: req,
                function,
                node: actual.index() as u64,
            });
        }
        let run = self.run(req).expect("run exists");
        let old_generation = run.plan_generation;
        let dag = run.dag.clone();
        let implicit = run.implicit;
        let trigger = run.trigger;

        let elapsed = self.now.saturating_since(trigger);
        let new_plan = {
            let estimates = PlatformEstimates {
                metrics: &self.metrics,
                provider: &self.provider,
                dag: &dag,
                implicit,
                hop_overhead_ms: self.config.orchestration_overhead.mean_ms(),
            };
            let ctx = PlanContext {
                now: self.now,
                estimates_epoch: self.metrics.epoch(),
                prob_epoch: 0,
            };
            let mut rho = |_: NodeId, _: NodeId| None;
            self.policy
                .on_miss(&ctx, &dag, &estimates, actual, elapsed, &mut rho)
        };
        match new_plan {
            None => {
                // "JIT deployment stops all planned proactive provisioning
                // as soon as it detects a prediction miss" (§3.2.2). Only
                // the first miss needs to cancel anything.
                let run = self.run_mut(req).expect("run exists");
                if run.plan_cancelled {
                    return;
                }
                run.plan_cancelled = true;
                run.plan_active = false;
                self.queue.cancel_where(|e| {
                    matches!(e, Event::Deploy { req: r, generation, .. }
                        if *r == req && *generation == old_generation)
                });
                // Discard speculative workers on the dead branch now.
                self.discard_wrong_path_workers(req);
            }
            Some(plan) => {
                self.queue.cancel_where(|e| {
                    matches!(e, Event::Deploy { req: r, generation, .. }
                        if *r == req && *generation == old_generation)
                });
                let run = self.run_mut(req).expect("run exists");
                run.plan_generation += 1;
                let generation = run.plan_generation;
                run.planned = plan.deployments().iter().map(|d| d.node).collect();
                // The node that caused the miss is obviously on the
                // actual path.
                run.planned.insert(actual);
                let planned_count = run.planned.len() as u64;
                for d in plan.deployments() {
                    self.queue.schedule(
                        trigger + d.deploy_at,
                        Event::Deploy {
                            req,
                            node: d.node,
                            generation,
                        },
                    );
                }
                if self.observing(Topic::PolicyDecision) {
                    let policy = self.policy.label().to_string();
                    self.emit(BusEvent::PolicyDecision {
                        request: req,
                        policy,
                        planned: planned_count,
                        reason: "miss".to_string(),
                    });
                }
            }
        }
    }

    fn finalize_run(&mut self, req: u64) {
        let mut run = self.runs[req as usize].take().expect("run exists");
        self.active_runs -= 1;
        if self.config.record_traces {
            run.trace.record(self.now, TraceEventKind::Completed);
            self.traces.insert(req, std::mem::take(&mut run.trace));
        }
        let run = &run;
        // Discard speculated workers that never served (per-request
        // accounting hygiene; §3.2's discarded mispredictions).
        let mut request_costs = ResourceCosts::default();
        let rates = |provider: &SimSandboxProvider, w_iso| CpuRates {
            provision_rate: provider.provision_cpu_rate(w_iso),
            idle_rate: provider.idle_cpu_rate(w_iso),
        };
        for &wid in &run.spawned {
            let Some(w) = self.pool.get(wid) else {
                continue; // already reaped/evicted: accounted in dead records
            };
            let iso = w.isolation();
            // A worker claimed by another request's in-flight dispatch is
            // not discardable even if it has not served yet.
            let unused =
                w.served() == 0 && w.state() != WorkerState::Busy && !self.claimed.contains(&wid);
            let record = if unused && self.config.discard_unused_after_run {
                self.cluster.release(wid);
                self.pool.kill(wid, self.now)
            } else {
                self.pool.get(wid).map(|w| w.snapshot(self.now))
            };
            if let Some(r) = record {
                request_costs.add(xanadu_core::cost::worker_resource_cost(
                    &r,
                    rates(&self.provider, iso),
                ));
            }
        }

        let end_to_end = self.now.saturating_since(run.trigger);
        let exec_reference = run.exec_reference();
        let overhead = end_to_end.saturating_sub(exec_reference);
        let executed = run.completed.iter().filter(|&&c| c).count() as u32;
        let result = RunResult {
            request: req,
            workflow: self.workflow_ids.resolve(run.workflow).to_string(),
            trigger: run.trigger,
            end: self.now,
            end_to_end,
            exec_reference,
            overhead,
            cold_starts: run.cold_starts,
            warm_starts: run.warm_starts,
            misses: run.misses,
            workers_spawned: run.spawned.len() as u32,
            executed_functions: executed,
            resources: request_costs,
            faults: run.faults,
            retries: run.retries,
        };
        // Feedback for learning policies (a no-op for the default engine).
        self.policy.observe_completion(
            &result.workflow,
            &xanadu_core::policy::CompletionObservation {
                end_to_end_ms: end_to_end.as_millis_f64(),
                cold_starts: run.cold_starts,
                warm_starts: run.warm_starts,
                misses: run.misses,
                planned: run.planned.len() as u32,
                executed,
            },
        );
        if self.config.record_traces {
            self.metastore.put(
                &format!("runs/{req}"),
                serde_json::to_value(&result).expect("result serializes"),
            );
        }
        if self.observing(Topic::RequestCompleted) {
            self.emit(BusEvent::RequestCompleted {
                request: req,
                workflow: result.workflow.clone(),
                overhead_ms: overhead.as_millis_f64(),
                end_to_end_ms: end_to_end.as_millis_f64(),
            });
        }
        self.results.push(result);
    }

    // ------------------------------------------------------------------
    // Worker management helpers
    // ------------------------------------------------------------------

    /// Kills a worker, releasing both its pool entry and its host memory.
    fn kill_worker(&mut self, id: WorkerId, now: SimTime) {
        self.pool.kill(id, now);
        self.cluster.release(id);
    }

    /// Forcibly evicts a worker (capacity/quota/warm-cap pressure):
    /// records the eviction against its host, emits [`BusEvent::WorkerEvicted`]
    /// for placed workers, then kills it. Emission is gated on an explicit
    /// cluster so default observed runs emit exactly the pre-cluster
    /// event stream.
    fn evict_worker(&mut self, id: WorkerId) {
        self.cluster.note_evicted(id);
        if self.cluster_enabled && self.observing(Topic::WorkerEvicted) {
            if let Some(host) = self.cluster.host_of(id) {
                self.emit(BusEvent::WorkerEvicted {
                    worker: id.0,
                    host: host.0,
                });
            }
        }
        self.kill_worker(id, self.now);
    }

    fn usable_worker_exists(&self, function: &str) -> bool {
        let keep_alive = self.pool.config().keep_alive;
        self.pool.warm_workers(function).any(|w| {
            !self.claimed.contains(&w.id())
                && self.now.saturating_since(w.last_active()) <= keep_alive
        }) || self
            .pool
            .provisioning_workers(function)
            .any(|w| !self.claimed.contains(&w.id()))
    }

    fn find_claimable_warm(&self, function: &str) -> Option<WorkerId> {
        self.pool
            .warm_workers(function)
            .filter(|w| {
                !self.claimed.contains(&w.id())
                    && self.now >= w.ready_at()
                    && (self.is_pool_owned(w.id())
                        || self.now.saturating_since(w.last_active())
                            <= self.pool.config().keep_alive)
            })
            .max_by_key(|w| (w.last_active(), w.id()))
            .map(Worker::id)
    }

    fn is_pool_owned(&self, id: WorkerId) -> bool {
        self.spawner_of(id) == Some(POOL_OWNER)
    }

    fn find_claimable_pending(&self, function: &str) -> Option<(WorkerId, SimTime)> {
        self.pool
            .provisioning_workers(function)
            .filter(|w| !self.claimed.contains(&w.id()))
            .min_by_key(|w| (w.ready_at(), w.id()))
            .map(|w| (w.id(), w.ready_at()))
    }

    /// Provisions a fresh worker for `spec`, honouring the live-worker cap.
    /// Returns the worker id and its readiness time. `on_demand` marks a
    /// cold start observed by a waiting request (recorded in the profile);
    /// `shielded` exempts the worker from fault injection (the guaranteed
    /// final retry attempt).
    ///
    /// Returns `None` only for a *speculative* placement (`on_demand`
    /// false) refused by tenant admission (quota or weighted fair share)
    /// with no same-tenant warm worker to reclaim: the speculation is
    /// dropped rather than allowed to starve other tenants. On-demand
    /// provisioning always yields a worker — a saturated cluster
    /// overcommits (the worker runs unplaced) instead of failing the
    /// request.
    fn provision_worker(
        &mut self,
        req: u64,
        spec: &xanadu_chain::FunctionSpec,
        on_demand: bool,
        shielded: bool,
    ) -> Option<(WorkerId, SimTime)> {
        let mut extra = SimDuration::ZERO;
        if let Some(cap) = self.config.max_live {
            if self.pool.live_count() >= cap {
                // Evict the least recently active unclaimed warm worker to
                // make room (OpenWhisk's limited pool, §2.3).
                let victim = self
                    .pool
                    .warm_lru()
                    .find(|w| !self.claimed.contains(&w.id()))
                    .map(Worker::id);
                if let Some(v) = victim {
                    self.evict_worker(v);
                    extra = self.config.eviction_delay.sample(&mut self.rng_overhead);
                }
                // With no evictable worker the cap is soft: provisioning
                // proceeds (all workers busy implies the system is saturated
                // and the latency shows up elsewhere).
            }
        }

        let id = self.pool.next_worker_id();
        // Resolve the worker's tenant: the owner of its request's workflow
        // (pool-owned replenishments are platform-owned, tenantless).
        let tenant = match self.run(req) {
            Some(run) => {
                let workflow = run.workflow;
                self.workflows[workflow.index()].tenant
            }
            None => None,
        };
        let placement = PlacementRequest {
            worker: id,
            memory_mb: spec.memory(),
            request: (req != POOL_OWNER).then_some(req),
            tenant,
            on_demand,
        };
        // Ask the Dispatch Daemons for placement; a full cluster forces
        // warm-worker evictions first, and a cluster that stays full even
        // then overcommits (the worker runs unplaced). Quota/fair-share
        // refusals may only reclaim *same-tenant* warm workers.
        let mut placed: Option<HostId> = None;
        loop {
            match self.cluster.place_for(&placement) {
                Ok(host) => {
                    placed = Some(host);
                    break;
                }
                Err(e) => {
                    if e.is_admission() && !on_demand {
                        // Speculative placement refused by tenant admission:
                        // drop the speculation rather than evict warm state.
                        return None;
                    }
                    let victim = self
                        .pool
                        .warm_lru()
                        .find(|w| {
                            !self.claimed.contains(&w.id())
                                && (!e.is_admission() || self.cluster.tenant_of(w.id()) == tenant)
                        })
                        .map(Worker::id);
                    match victim {
                        Some(v) => {
                            self.evict_worker(v);
                            extra += self.config.eviction_delay.sample(&mut self.rng_overhead);
                            if !self.cluster_enabled {
                                // Single-testbed legacy semantics: one
                                // eviction, one retry, unplaced on failure —
                                // keeps default runs byte-identical.
                                if let Ok(host) = self.cluster.place_for(&placement) {
                                    placed = Some(host);
                                }
                                break;
                            }
                        }
                        None => {
                            self.cluster.note_overcommit();
                            break;
                        }
                    }
                }
            }
        }
        let cold = self
            .provider
            .cold_start(spec.isolation_level(), self.now + extra);
        // Provisioning contention (the host's `contention_alpha` curve):
        // concurrent cold starts on the same host inflate each other.
        // Zero on the default testbed and for unplaced workers.
        let penalty = placed.map_or(0.0, |host| self.cluster.contention_penalty(host));
        let cold_total = if penalty > 0.0 {
            cold.total().mul_f64(1.0 + penalty)
        } else {
            cold.total()
        };
        let ready_at = self.now + extra + cold_total;
        let worker = Worker::provisioning(
            id,
            spec.name(),
            spec.isolation_level(),
            spec.memory(),
            self.now,
            ready_at,
        );
        self.pool.insert(worker);
        self.set_spawner(id, req);
        let record_traces = self.config.record_traces;
        let now = self.now;
        if let Some(run) = self.run_mut(req) {
            run.spawned.push(id);
            if record_traces {
                run.trace.record(
                    now,
                    TraceEventKind::DeployStarted {
                        function: spec.name().to_string(),
                        on_demand,
                        ready_at,
                    },
                );
            }
        }
        self.queue
            .schedule(ready_at, Event::WorkerReady { worker: id });
        if shielded {
            self.shielded_workers.insert(id);
        } else if let Some(crash_at) = self.faults.crash_time(id.0, self.now, ready_at) {
            self.queue
                .schedule(crash_at, Event::WorkerCrash { worker: id });
        }
        let total_wait = extra + cold_total;
        if let Some(host) = placed {
            if self.cluster_enabled && self.observing(Topic::WorkerPlaced) {
                self.emit(BusEvent::WorkerPlaced {
                    worker: id.0,
                    host: host.0,
                    request: req,
                    memory_mb: spec.memory(),
                });
            }
        }
        if self.observing(Topic::WorkerProvisioned) {
            self.emit(BusEvent::WorkerProvisioned {
                worker: id.0,
                request: req,
                function: spec.name().to_string(),
                cold_start_ms: cold_total.as_millis_f64(),
                ready_in_ms: total_wait.as_millis_f64(),
                on_demand,
            });
        }
        self.metrics.record_cold_start(spec.name(), total_wait);
        self.maybe_scale_up();
        Some((id, ready_at))
    }

    /// Attempts to reuse a compatible unused warm worker for `spec` by
    /// re-targeting it (future work §7). Returns whether a worker was
    /// reused.
    fn try_retarget(&mut self, req: u64, spec: &xanadu_chain::FunctionSpec) -> bool {
        // LRU order makes the pick deterministic (oldest compatible spare
        // first); the old any-order scan depended on hash-map iteration.
        // A spare on another host is no use against a *cascading* cold
        // start — the chain's state is on the locus host — so only
        // co-located (or unplaced) spares qualify. Single-host clusters
        // always pass the gate, preserving pre-cluster behaviour.
        let locus = self.run(req).and_then(|r| r.locus);
        let candidate = self
            .pool
            .warm_lru()
            .find(|w| {
                w.served() == 0
                    && !self.claimed.contains(&w.id())
                    && w.isolation() == spec.isolation_level()
                    && w.memory_mb() == spec.memory()
                    && self.spawner_of(w.id()) == Some(req)
                    && match (locus, self.cluster.host_of(w.id())) {
                        (Some(locus), Some(host)) => locus == host,
                        _ => true,
                    }
            })
            .map(Worker::id);
        match candidate {
            Some(id) => {
                let reused = self.pool.retarget(id, spec.name()).is_ok();
                if reused && self.cluster_enabled {
                    self.retargets_colocated += 1;
                }
                reused
            }
            None => false,
        }
    }

    /// Kills speculative workers of this request whose functions are not on
    /// the actual (activated) path and have not served.
    fn discard_wrong_path_workers(&mut self, req: u64) {
        let Some(run) = self.run(req) else {
            return;
        };
        let dag = run.dag.clone();
        let activated_functions: HashSet<&str> = dag
            .node_ids()
            .filter(|n| run.activated[n.index()])
            .map(|n| dag.node(n).spec().name())
            .collect();
        let victims: Vec<WorkerId> = run
            .spawned
            .iter()
            .copied()
            .filter(|&wid| {
                !self.claimed.contains(&wid)
                    && self.pool.get(wid).is_some_and(|w| {
                        w.served() == 0
                            && w.state() != WorkerState::Busy
                            && !activated_functions.contains(w.function())
                    })
            })
            .collect();
        for wid in victims {
            self.kill_worker(wid, self.now);
        }
    }

    fn sample_overhead(&mut self) -> SimDuration {
        self.config
            .orchestration_overhead
            .sample(&mut self.rng_overhead)
    }
}

impl fmt::Debug for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform")
            .field("label", &self.config.label)
            .field("now", &self.now)
            .field("live_workers", &self.pool.live_count())
            .field("pending_events", &self.queue.len())
            .field("completed", &self.results.len())
            .finish()
    }
}

/// Computes the total resource cost of a full report using the calibrated
/// default CPU rates (convenience for experiments that do not need
/// per-request attribution).
pub fn report_total_costs(report: &PlatformReport) -> ResourceCosts {
    let provider = SimSandboxProvider::new(0);
    total_resource_cost(&report.worker_records, |r| CpuRates {
        provision_rate: provider.provision_cpu_rate(r.isolation),
        idle_rate: provider.idle_cpu_rate(r.isolation),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xanadu_chain::{linear_chain, FunctionSpec, WorkflowBuilder};
    use xanadu_core::speculation::{ExecutionMode, MissPolicy};
    use xanadu_sandbox::PoolConfig;

    fn chain(n: usize, service_ms: f64) -> WorkflowDag {
        linear_chain("chain", n, &FunctionSpec::new("f").service_ms(service_ms)).unwrap()
    }

    fn run_once(mode: ExecutionMode, dag: WorkflowDag) -> PlatformReport {
        let mut p = Platform::new(PlatformConfig::for_mode(mode, 42));
        p.deploy(dag).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        p.finish()
    }

    #[test]
    fn plan_cache_hits_across_identical_triggers() {
        let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 42));
        p.deploy(chain(4, 500.0)).unwrap();
        // Both triggers plan before any execution happens, so the metrics
        // epoch is unchanged between them: one miss, one hit.
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        let stats = p.plan_cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 1, "{stats:?}");

        // By now the completed runs have recorded cold starts and
        // runtimes, so the profiled estimates moved: the cached plan is
        // stale and a later trigger must recompute.
        let later = p.now() + SimDuration::from_mins(10);
        p.trigger_at("chain", later).unwrap();
        p.run_until_idle();
        let stats = p.plan_cache_stats();
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.hits, 1, "{stats:?}");
    }

    #[test]
    fn plan_cache_does_not_change_results() {
        let run = |cache_on: bool| {
            let cfg = PlatformConfig::builder()
                .for_mode(ExecutionMode::Jit, 42)
                .plan_cache(cache_on)
                .build()
                .unwrap();
            let mut p = Platform::new(cfg);
            p.deploy(chain(6, 1000.0)).unwrap();
            for i in 0..5u64 {
                p.trigger_at("chain", SimTime::from_secs(i * 2)).unwrap();
            }
            p.run_until_idle();
            p.finish()
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.results, off.results);
    }

    #[test]
    fn cold_chain_overhead_grows_linearly() {
        let mut overheads = Vec::new();
        for n in [1usize, 3, 5] {
            let report = run_once(ExecutionMode::Cold, chain(n, 500.0));
            assert_eq!(report.results.len(), 1);
            let r = &report.results[0];
            assert_eq!(r.executed_functions, n as u32);
            assert_eq!(r.cold_starts, n as u32);
            assert_eq!(r.warm_starts, 0);
            overheads.push(r.overhead.as_millis_f64());
        }
        // Roughly one container cold start (~3s) per chain hop.
        assert!(
            overheads[0] > 2500.0 && overheads[0] < 4000.0,
            "{overheads:?}"
        );
        assert!(
            overheads[2] > 4.0 * overheads[0] * 0.8,
            "linear growth: {overheads:?}"
        );
    }

    #[test]
    fn speculative_chain_has_near_constant_overhead() {
        let shallow = run_once(ExecutionMode::Speculative, chain(2, 5000.0));
        let deep = run_once(ExecutionMode::Speculative, chain(8, 5000.0));
        let o2 = shallow.results[0].overhead.as_millis_f64();
        let o8 = deep.results[0].overhead.as_millis_f64();
        // Overhead must not cascade: depth 8 within 2x of depth 2 (one cold
        // start plus dispatch noise), not 4x.
        assert!(o8 < o2 * 2.0, "o2={o2} o8={o8}");
        // All but the root should be warm starts.
        assert_eq!(deep.results[0].warm_starts, 7);
        assert_eq!(deep.results[0].cold_starts, 1);
    }

    #[test]
    fn jit_matches_speculative_latency_but_cheaper_memory() {
        let spec = run_once(ExecutionMode::Speculative, chain(8, 5000.0));
        let jit = run_once(ExecutionMode::Jit, chain(8, 5000.0));
        let spec_overhead = spec.results[0].overhead.as_millis_f64();
        let jit_overhead = jit.results[0].overhead.as_millis_f64();
        assert!(
            jit_overhead < spec_overhead * 1.5,
            "jit {jit_overhead} vs spec {spec_overhead}"
        );
        let spec_mem = spec.results[0].resources.mem_mbs;
        let jit_mem = jit.results[0].resources.mem_mbs;
        assert!(
            jit_mem < spec_mem / 3.0,
            "jit mem {jit_mem} vs spec mem {spec_mem}"
        );
    }

    #[test]
    fn warm_reuse_across_requests() {
        let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Cold, 1));
        p.deploy(chain(3, 500.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.trigger_at("chain", SimTime::from_mins(1)).unwrap();
        p.run_until_idle();
        let report = p.finish();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].cold_starts, 3);
        // Second request within keep-alive: all warm.
        assert_eq!(report.results[1].cold_starts, 0);
        assert_eq!(report.results[1].warm_starts, 3);
        // Warm overhead: 3 hops of (≈100ms container dispatch + ≈20ms
        // orchestration) — far below a single cold start.
        assert!(
            report.results[1].overhead.as_millis_f64() < 600.0,
            "warm overhead small, got {}",
            report.results[1].overhead.as_millis_f64()
        );
    }

    #[test]
    fn keep_alive_expiry_causes_cold_starts() {
        let cfg = PlatformConfig::builder()
            .for_mode(ExecutionMode::Cold, 1)
            .pool(PoolConfig {
                keep_alive: SimDuration::from_mins(10),
                max_warm: None,
            })
            .build()
            .unwrap();
        let mut p = Platform::new(cfg);
        p.deploy(chain(2, 500.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.trigger_at("chain", SimTime::from_mins(30)).unwrap();
        p.run_until_idle();
        let report = p.finish();
        assert_eq!(report.results[1].cold_starts, 2, "keep-alive expired");
    }

    #[test]
    fn xor_miss_detection_and_stop() {
        // Ground truth heavily favours `hot`, but force the actual draw to
        // take `cold` by seeding: try seeds until a miss occurs.
        let mut saw_miss = false;
        for seed in 0..50 {
            let mut b = WorkflowBuilder::new("chain");
            let a = b.add(FunctionSpec::new("a").service_ms(1000.0)).unwrap();
            let hot = b.add(FunctionSpec::new("hot").service_ms(1000.0)).unwrap();
            let cold = b.add(FunctionSpec::new("cold").service_ms(1000.0)).unwrap();
            b.link_xor(a, &[(hot, 0.7), (cold, 0.3)]).unwrap();
            let dag = b.build().unwrap();
            let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Speculative, seed));
            p.deploy(dag).unwrap();
            p.trigger_at("chain", SimTime::ZERO).unwrap();
            p.run_until_idle();
            let report = p.finish();
            let r = &report.results[0];
            assert_eq!(r.executed_functions, 2);
            if r.misses > 0 {
                saw_miss = true;
                // The hot worker was speculated but discarded unused.
                assert!(report
                    .worker_records
                    .iter()
                    .any(|w| w.function == "hot" && !w.ever_used));
                break;
            }
        }
        assert!(saw_miss, "no seed produced a prediction miss");
    }

    #[test]
    fn implicit_chain_learns_and_converges() {
        let dag = chain(3, 500.0);
        // Requests are spaced beyond the 10 min keep-alive so every request
        // starts with no warm workers: any warm start must come from
        // learned speculation.
        let cfg = PlatformConfig::for_mode(ExecutionMode::Speculative, 5);
        let mut p = Platform::new(cfg);
        p.deploy_implicit(dag).unwrap();
        // First request: nothing learned, runs cold.
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        assert_eq!(p.results()[0].warm_starts, 0);
        // After learning, later requests should speculate successfully.
        for i in 1..5 {
            p.trigger_at("chain", SimTime::from_mins(i * 20)).unwrap();
            p.run_until_idle();
        }
        let report = p.finish();
        let last = report.results.last().unwrap();
        assert!(
            last.warm_starts >= 2,
            "learned speculation warms the chain: {last:?}"
        );
        assert!(
            last.overhead.as_millis_f64() < report.results[0].overhead.as_millis_f64(),
            "overhead shrinks after learning"
        );
    }

    #[test]
    fn max_live_cap_adds_eviction_latency() {
        let dag = chain(5, 500.0);
        let mut capped = PlatformConfig::for_mode(ExecutionMode::Cold, 3).labeled("capped");
        capped.max_live = Some(4);
        let mut p = Platform::new(capped);
        p.deploy(dag.clone()).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        let capped_overhead = p.results()[0].overhead.as_millis_f64();

        let mut free = Platform::new(PlatformConfig::for_mode(ExecutionMode::Cold, 3));
        free.deploy(dag).unwrap();
        free.trigger_at("chain", SimTime::ZERO).unwrap();
        free.run_until_idle();
        let free_overhead = free.results()[0].overhead.as_millis_f64();
        assert!(
            capped_overhead > free_overhead + 300.0,
            "eviction penalty visible: capped {capped_overhead} vs free {free_overhead}"
        );
    }

    #[test]
    fn deploy_errors() {
        let mut p = Platform::new(PlatformConfig::default());
        p.deploy(chain(2, 100.0)).unwrap();
        assert!(matches!(
            p.deploy(chain(2, 100.0)),
            Err(PlatformError::AlreadyDeployed(_))
        ));
        assert!(matches!(
            p.trigger_at("ghost", SimTime::ZERO),
            Err(PlatformError::UnknownWorkflow(_))
        ));
    }

    #[test]
    fn declared_outputs_drive_conditionals_deterministically() {
        // The conditional says success with probability 0.9, but ingest's
        // declared output fails the `score >= 10` check — the fail branch
        // must be taken on *every* request.
        let doc = r#"{
            "ingest": {"type": "function", "wait_for": [], "service_ms": 100,
                        "conditional": "check",
                        "output": {"score": 3}},
            "check": {"type": "conditional", "wait_for": ["ingest"],
                       "condition": {"op1": "ingest.score", "op2": 10, "op": "gte"},
                       "success": "fast", "fail": "slow",
                       "success_probability": 0.9},
            "fast": {"type": "branch",
                "approve": {"type": "function", "wait_for": [], "service_ms": 50}},
            "slow": {"type": "branch",
                "review": {"type": "function", "wait_for": [], "service_ms": 500}}
        }"#;
        let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Cold, 3));
        p.deploy_sdl("cond", doc).unwrap();
        for i in 0..10 {
            p.trigger_at("cond", SimTime::from_mins(i * 20)).unwrap();
        }
        p.run_until_idle();
        for (req, r) in p.results().iter().enumerate() {
            assert_eq!(r.executed_functions, 2);
            let trace = p.trace(req as u64).expect("trace");
            assert!(
                trace.exec_interval("review").is_some(),
                "fail branch taken every time"
            );
            assert!(trace.exec_interval("approve").is_none());
        }

        // Without an output the probability governs: over 10 requests the
        // 0.9-success branch dominates.
        let doc_no_output =
            doc.replace(",\n                        \"output\": {\"score\": 3}", "");
        let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Cold, 3));
        p.deploy_sdl("cond", &doc_no_output).unwrap();
        for i in 0..10 {
            p.trigger_at("cond", SimTime::from_mins(i * 20)).unwrap();
        }
        p.run_until_idle();
        let approvals = (0..10)
            .filter(|&req| {
                p.trace(req as u64)
                    .is_some_and(|t| t.exec_interval("approve").is_some())
            })
            .count();
        assert!(
            approvals >= 6,
            "probability draw favours success: {approvals}"
        );
    }

    #[test]
    fn deploy_sdl_works_end_to_end() {
        let doc = r#"{
            "a": {"type": "function", "wait_for": [], "service_ms": 100},
            "b": {"type": "function", "wait_for": ["a"], "service_ms": 100}
        }"#;
        let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 9));
        p.deploy_sdl("sdl-flow", doc).unwrap();
        p.trigger_at("sdl-flow", SimTime::ZERO).unwrap();
        p.run_until_idle();
        let report = p.finish();
        assert_eq!(report.results[0].executed_functions, 2);
    }

    #[test]
    fn bus_and_metastore_observe_lifecycle() {
        let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Cold, 2));
        let completions = p.subscribe(Topic::RequestCompleted);
        let provisions = p.subscribe(Topic::WorkerProvisioned);
        p.deploy(chain(2, 100.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        assert_eq!(completions.drain().len(), 1);
        let provisioned = provisions.drain();
        assert_eq!(provisioned.len(), 2);
        assert!(provisioned.iter().all(|m| matches!(
            m.event,
            BusEvent::WorkerProvisioned {
                on_demand: true,
                ..
            }
        )));
        assert!(p.metastore().get("runs/0").is_some());
        assert!(p.metastore().get("workflow/chain").is_some());
    }

    #[test]
    fn unobserved_platforms_emit_no_events() {
        let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 2));
        p.deploy(chain(3, 100.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        assert_eq!(p.published_events(), 0, "no observers ⇒ no events built");
    }

    #[test]
    fn attached_observer_turns_emission_on_and_aggregates() {
        let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 2));
        let metrics = p.attach_metrics();
        p.deploy(chain(3, 100.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        assert!(p.published_events() > 0);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("requests.triggered"), 1);
        assert_eq!(snap.counter("requests.completed"), 1);
        assert_eq!(
            snap.counter("starts.cold") + snap.counter("starts.warm"),
            3,
            "every executed function started exactly once: {snap:?}"
        );
        let report = p.finish();
        assert_eq!(report.metrics.as_ref(), Some(&snap));
    }

    #[test]
    fn observer_presence_does_not_change_results() {
        let run = |observe: bool| {
            let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 31));
            if observe {
                p.attach_metrics();
            }
            p.deploy(chain(4, 300.0)).unwrap();
            p.trigger_at("chain", SimTime::ZERO).unwrap();
            p.run_until_idle();
            let mut report = p.finish();
            report.metrics = None;
            report
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn learned_state_survives_platform_restart() {
        // Learn on one platform, persist, restore into a fresh platform:
        // the very first request on the new platform speculates correctly.
        let dag = chain(3, 500.0);
        let mut first = Platform::new(PlatformConfig::for_mode(ExecutionMode::Speculative, 5));
        first.deploy_implicit(dag.clone()).unwrap();
        for i in 0..4 {
            first
                .trigger_at("chain", SimTime::from_mins(i * 20))
                .unwrap();
            first.run_until_idle();
        }
        first.persist_learned_state();
        let store = first.metastore().clone();

        let mut second = Platform::new(PlatformConfig::for_mode(ExecutionMode::Speculative, 99));
        second.deploy_implicit(dag).unwrap();
        second.restore_learned_state(&store).unwrap();
        second.trigger_at("chain", SimTime::ZERO).unwrap();
        second.run_until_idle();
        let r = &second.results()[0];
        assert!(
            r.warm_starts >= 2,
            "restored model speculates immediately: {r:?}"
        );

        // Restoring from an empty store fails cleanly.
        let mut third = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 1));
        assert!(third
            .restore_learned_state(&crate::metastore::MetaStore::new())
            .is_err());
    }

    #[test]
    fn fan_out_fan_in_barrier_semantics() {
        // m:1 barrier at scale: an 8-wide fan where one worker is slow.
        let mut b = WorkflowBuilder::new("chain");
        let split = b.add(FunctionSpec::new("split").service_ms(100.0)).unwrap();
        let join = b.add(FunctionSpec::new("join").service_ms(100.0)).unwrap();
        for i in 0..8 {
            let ms = if i == 0 { 4000.0 } else { 300.0 };
            let w = b
                .add(FunctionSpec::new(format!("w{i}")).service_ms(ms))
                .unwrap();
            b.link(split, w).unwrap();
            b.link(w, join).unwrap();
        }
        let dag = b.build().unwrap();
        let report = run_once(ExecutionMode::Speculative, dag);
        let r = &report.results[0];
        assert_eq!(r.executed_functions, 10);
        // Reference is the slow branch: 100 + 4000 + 100.
        assert_eq!(r.exec_reference.as_millis_f64(), 4200.0);
        // With speculation all ten workers deploy at t=0: the whole fan
        // pays roughly one (contended) cold start.
        assert!(
            r.overhead.as_secs_f64() < 8.0,
            "no cascade across the fan: {r:?}"
        );
    }

    #[test]
    fn replan_and_reuse_retargets_compatible_workers() {
        // XOR where both arms have identical resource shape: on a miss the
        // replanner may retarget the mispredicted arm's worker.
        let mut saw_replan_benefit = false;
        for seed in 0..60 {
            let mut b = WorkflowBuilder::new("chain");
            let a = b.add(FunctionSpec::new("a").service_ms(4000.0)).unwrap();
            let hot = b.add(FunctionSpec::new("hot").service_ms(500.0)).unwrap();
            let cold = b.add(FunctionSpec::new("cold").service_ms(500.0)).unwrap();
            let tail = b.add(FunctionSpec::new("tail").service_ms(500.0)).unwrap();
            b.link_xor(a, &[(hot, 0.7), (cold, 0.3)]).unwrap();
            b.link(cold, tail).unwrap();
            let dag = b.build().unwrap();
            let cfg = PlatformConfig::builder()
                .for_mode(ExecutionMode::Jit, seed)
                .miss_policy(MissPolicy::ReplanAndReuse)
                .build()
                .unwrap();
            let mut p = Platform::new(cfg);
            p.deploy(dag).unwrap();
            p.trigger_at("chain", SimTime::ZERO).unwrap();
            p.run_until_idle();
            let report = p.finish();
            let r = &report.results[0];
            if r.misses > 0 && r.warm_starts >= 1 {
                saw_replan_benefit = true;
                break;
            }
        }
        assert!(saw_replan_benefit, "no seed exercised replan-and-reuse");
    }

    #[test]
    fn keepalive_advisor_learns_speculation_coverage() {
        // JIT-run chain, triggered repeatedly past keep-alive: downstream
        // functions are always speculation-covered (floor recommendation);
        // the root's worker is also plan-spawned, so it too collapses —
        // contrast with a Cold platform where nothing is covered.
        let mut jit = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 4));
        jit.deploy(chain(3, 500.0)).unwrap();
        for i in 0..6 {
            jit.trigger_at("chain", SimTime::from_mins(i * 20)).unwrap();
            jit.run_until_idle();
        }
        let advisor = jit.keepalive_advisor();
        assert!(advisor.speculation_hit_rate("f1") > 0.8);
        assert_eq!(
            advisor.recommend("f1"),
            SimDuration::from_secs(5),
            "covered downstream function gets the floor"
        );

        let mut cold = Platform::new(PlatformConfig::for_mode(ExecutionMode::Cold, 4));
        cold.deploy(chain(3, 500.0)).unwrap();
        for i in 0..6 {
            cold.trigger_at("chain", SimTime::from_mins(i * 20))
                .unwrap();
            cold.run_until_idle();
        }
        let advisor = cold.keepalive_advisor();
        assert_eq!(advisor.speculation_hit_rate("f1"), 0.0);
        // Uncovered: sized to the observed 20-minute gaps, clamped at the
        // 10-minute ceiling.
        assert_eq!(advisor.recommend("f1"), SimDuration::from_mins(10));
    }

    #[test]
    fn static_prewarm_pool_serves_warm_and_replenishes() {
        let cfg = PlatformConfig::builder()
            .for_mode(ExecutionMode::Cold, 9)
            .static_prewarm(1)
            .discard_unused_after_run(false) // pool workers persist
            .build()
            .unwrap();
        let mut p = Platform::new(cfg);
        p.deploy(chain(3, 300.0)).unwrap();
        // Requests spaced far past keep-alive: pool workers are exempt from
        // reclamation, so every request after warm-up is fully warm.
        for i in 0..3 {
            p.trigger_at("chain", SimTime::from_mins(5 + i * 30))
                .unwrap();
            p.run_until_idle();
        }
        for r in p.results() {
            assert_eq!(r.warm_starts, 3, "pool covers the whole chain: {r:?}");
            assert_eq!(r.cold_starts, 0);
        }
        // The pool never shrinks below one available worker per function.
        for f in ["f0", "f1", "f2"] {
            let available = p.pool.live_workers().filter(|w| w.function() == f).count();
            assert!(available >= 1, "{f} pool drained");
        }
        // And the steady-state bill is what the paper warns about: pool
        // workers idle the whole 65+ minutes between/after requests.
        let report = p.finish();
        let steady: f64 = report
            .worker_records
            .iter()
            .map(|r| {
                xanadu_core::cost::worker_steady_cost(
                    r,
                    xanadu_core::cost::CpuRates {
                        provision_rate: 1.0,
                        idle_rate: 0.01,
                    },
                )
                .mem_mbs
            })
            .sum();
        assert!(
            steady > 3.0 * 512.0 * 3000.0,
            "three 512MB workers idle for ~an hour each: {steady}"
        );
    }

    #[test]
    fn faulty_run_terminates_and_counts_faults() {
        let cfg = PlatformConfig::builder()
            .for_mode(ExecutionMode::Jit, 42)
            .faults(FaultConfig::with_rate(1.0, 7))
            .build()
            .unwrap();
        let mut p = Platform::new(cfg);
        p.deploy(chain(4, 2000.0)).unwrap();
        for i in 0..3u64 {
            p.trigger_at("chain", SimTime::from_secs(i * 60)).unwrap();
        }
        p.run_until_idle();
        let report = p.finish();
        assert_eq!(report.results.len(), 3, "every request terminates");
        for r in &report.results {
            assert_eq!(r.executed_functions, 4, "{r:?}");
        }
        let (faults, retries) = report.fault_counts();
        assert!(faults > 0, "rate 1.0 must inject");
        assert!(retries > 0);
        assert!(report.worker_records.iter().any(|w| w.crashed));
    }

    #[test]
    fn timeout_retries_until_shielded_attempt() {
        let cfg = PlatformConfig::builder()
            .for_mode(ExecutionMode::Cold, 11)
            .faults(FaultConfig {
                rate: 1.0,
                seed: 3,
                spike_factor: 100.0,
                timeout_ms: 5_000.0,
                max_retries: 2,
                backoff_ms: 100.0,
                ..FaultConfig::default()
            })
            .build()
            .unwrap();
        let mut p = Platform::new(cfg);
        p.deploy(chain(1, 1000.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        let report = p.finish();
        let r = &report.results[0];
        // Every non-shielded attempt spikes 100x past the 5 s timeout (or
        // its worker crashes first); the shielded third attempt completes.
        assert_eq!(r.executed_functions, 1, "{r:?}");
        assert!(r.retries >= 2, "{r:?}");
        assert!(r.end_to_end > SimDuration::from_secs(10), "{r:?}");
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = || {
            let cfg = PlatformConfig::builder()
                .for_mode(ExecutionMode::Jit, 5)
                .faults(FaultConfig::with_rate(0.5, 21))
                .build()
                .unwrap();
            let mut p = Platform::new(cfg);
            p.deploy(chain(5, 1500.0)).unwrap();
            for i in 0..4u64 {
                p.trigger_at("chain", SimTime::from_secs(i * 20)).unwrap();
            }
            p.run_until_idle();
            p.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_fault_rate_matches_faultless_config() {
        // An explicitly-zero fault config must not perturb any RNG stream:
        // results are identical to the default (fault-free) platform.
        let base = {
            let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 17));
            p.deploy(chain(4, 800.0)).unwrap();
            p.trigger_at("chain", SimTime::ZERO).unwrap();
            p.run_until_idle();
            p.finish()
        };
        let zeroed = {
            let cfg = PlatformConfig::builder()
                .for_mode(ExecutionMode::Jit, 17)
                .faults(FaultConfig::with_rate(0.0, 999))
                .build()
                .unwrap();
            let mut p = Platform::new(cfg);
            p.deploy(chain(4, 800.0)).unwrap();
            p.trigger_at("chain", SimTime::ZERO).unwrap();
            p.run_until_idle();
            p.finish()
        };
        assert_eq!(base, zeroed);
        assert_eq!(base.fault_counts(), (0, 0));
    }

    #[test]
    fn crashed_warm_worker_leaves_pool_consistent_and_forces_cold_start() {
        // Crash every worker: a second request past the first must not
        // find a (dead) warm worker, and the pool indexes stay coherent.
        let cfg = PlatformConfig::builder()
            .for_mode(ExecutionMode::Cold, 23)
            .faults(FaultConfig::with_rate(1.0, 5))
            .build()
            .unwrap();
        let mut p = Platform::new(cfg);
        p.deploy(chain(2, 500.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.trigger_at("chain", SimTime::from_mins(5)).unwrap();
        p.run_until_idle();
        p.pool.check_index_consistency().expect("pool coherent");
        let report = p.finish();
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            assert_eq!(r.executed_functions, 2, "{r:?}");
        }
        // Every crash is visible in the worker ledger.
        assert!(report.worker_records.iter().any(|w| w.crashed));
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed| {
            let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, seed));
            p.deploy(chain(4, 500.0)).unwrap();
            p.trigger_at("chain", SimTime::ZERO).unwrap();
            p.run_until_idle();
            p.finish().results
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7)[0].end_to_end,
            run(8)[0].end_to_end,
            "different seeds differ"
        );
    }

    #[test]
    fn multi_host_cluster_places_and_releases_workers() {
        use crate::config::ClusterConfig;
        use crate::hosts::{HostSpec, PlacementPolicy};
        let cfg = PlatformConfig::builder()
            .for_mode(ExecutionMode::Speculative, 6)
            .cluster(ClusterConfig {
                policy: PlacementPolicy::LeastLoaded,
                hosts: vec![HostSpec::new("a", 1536), HostSpec::new("b", 1536)],
                ..ClusterConfig::default()
            })
            .build()
            .unwrap();
        let mut p = Platform::new(cfg);
        p.deploy(chain(5, 500.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        assert_eq!(p.results()[0].executed_functions, 5);
        // All five used workers remain warm and placed across the two
        // hosts, within capacity.
        assert_eq!(p.cluster().total_used_mb(), 5 * 512);
        assert_eq!(p.cluster().len(), 2);
        let report = p.finish();
        assert_eq!(report.results.len(), 1);
    }

    #[test]
    fn cluster_full_forces_eviction_but_completes() {
        use crate::config::ClusterConfig;
        use crate::hosts::{HostSpec, PlacementPolicy};
        let cfg = PlatformConfig::builder()
            .for_mode(ExecutionMode::Cold, 8)
            .cluster(ClusterConfig {
                policy: PlacementPolicy::FirstFit,
                // fits two 512 MB workers
                hosts: vec![HostSpec::new("tiny", 1024)],
                ..ClusterConfig::default()
            })
            .build()
            .unwrap();
        let mut p = Platform::new(cfg);
        p.deploy(chain(4, 200.0)).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        let r = &p.results()[0];
        assert_eq!(r.executed_functions, 4, "completes despite tiny host");
        assert!(p.cluster().total_used_mb() <= 1024);
    }

    #[test]
    fn barrier_workflow_executes_all_branches() {
        let mut b = WorkflowBuilder::new("chain");
        let a = b.add(FunctionSpec::new("a").service_ms(100.0)).unwrap();
        let l = b.add(FunctionSpec::new("l").service_ms(300.0)).unwrap();
        let r = b.add(FunctionSpec::new("r").service_ms(900.0)).unwrap();
        let j = b.add(FunctionSpec::new("j").service_ms(100.0)).unwrap();
        b.link(a, l).unwrap();
        b.link(a, r).unwrap();
        b.link(l, j).unwrap();
        b.link(r, j).unwrap();
        let dag = b.build().unwrap();
        let report = run_once(ExecutionMode::Cold, dag);
        let res = &report.results[0];
        assert_eq!(res.executed_functions, 4);
        // Reference is the slow branch: 100 + 900 + 100.
        assert_eq!(res.exec_reference.as_millis_f64(), 1100.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use xanadu_chain::{FunctionSpec, WorkflowBuilder};
    use xanadu_core::speculation::ExecutionMode;

    /// A random workflow: a linear backbone with optional XOR alternates,
    /// deterministic in its inputs.
    fn random_workflow(len: usize, xors: &[(usize, f64)], service_ms: f64) -> WorkflowDag {
        let mut b = WorkflowBuilder::new("chain");
        let mut backbone = Vec::new();
        for i in 0..len {
            backbone.push(
                b.add(FunctionSpec::new(format!("f{i}")).service_ms(service_ms))
                    .unwrap(),
            );
        }
        let mut plain_link: Vec<bool> = vec![true; len.saturating_sub(1)];
        for &(pos, p) in xors {
            let pos = pos % len.saturating_sub(1).max(1);
            if len >= 2 && plain_link[pos] {
                plain_link[pos] = false;
                let alt = b
                    .add(FunctionSpec::new(format!("alt{pos}")).service_ms(service_ms))
                    .unwrap();
                let p = p.clamp(0.05, 0.95);
                b.link_xor(backbone[pos], &[(backbone[pos + 1], p), (alt, 1.0 - p)])
                    .unwrap();
            }
        }
        for (i, plain) in plain_link.iter().enumerate() {
            if *plain {
                b.link(backbone[i], backbone[i + 1]).unwrap();
            }
        }
        b.build().unwrap()
    }

    fn run_one(dag: WorkflowDag, mode: ExecutionMode, seed: u64) -> (RunResult, PlatformReport) {
        let mut p = Platform::new(PlatformConfig::for_mode(mode, seed));
        p.deploy(dag).unwrap();
        p.trigger_at("chain", SimTime::ZERO).unwrap();
        p.run_until_idle();
        let report = p.finish();
        (report.results[0].clone(), report)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn run_invariants_hold_for_every_mode(
            len in 1usize..8,
            xors in proptest::collection::vec((0usize..8, 0.05f64..0.95), 0..3),
            service_ms in 50.0f64..3000.0,
            seed in 0u64..1000,
        ) {
            for mode in ExecutionMode::ALL {
                let dag = random_workflow(len, &xors, service_ms);
                let (r, report) = run_one(dag.clone(), mode, seed);
                // Every start is either cold or warm, one per executed fn.
                prop_assert_eq!(r.cold_starts + r.warm_starts, r.executed_functions);
                // At least the root executed; never more than the workflow.
                prop_assert!(r.executed_functions >= 1);
                prop_assert!(r.executed_functions <= dag.len() as u32);
                // Latency accounting is consistent.
                prop_assert!(r.overhead <= r.end_to_end);
                prop_assert!(r.end_to_end >= r.exec_reference);
                prop_assert_eq!(r.end_to_end, r.end.saturating_since(r.trigger));
                // Resources are non-negative and every spawned worker is
                // accounted for in the final report.
                prop_assert!(r.resources.cpu_s >= 0.0);
                prop_assert!(r.resources.mem_mbs >= 0.0);
                prop_assert_eq!(
                    report.worker_records.len() as u32,
                    r.workers_spawned,
                    "single-request run: all workers belong to it"
                );
            }
        }

        #[test]
        fn speculation_never_loses_badly_on_deterministic_chains(
            len in 2usize..8,
            service_ms in 100.0f64..3000.0,
            seed in 0u64..200,
        ) {
            // Without conditional points there are no misses, so both
            // speculative modes must strictly beat Cold.
            let dag = random_workflow(len, &[], service_ms);
            let (cold, _) = run_one(dag.clone(), ExecutionMode::Cold, seed);
            let (spec, _) = run_one(dag.clone(), ExecutionMode::Speculative, seed);
            let (jit, _) = run_one(dag, ExecutionMode::Jit, seed);
            prop_assert_eq!(spec.misses, 0);
            prop_assert_eq!(jit.misses, 0);
            prop_assert!(spec.overhead < cold.overhead);
            prop_assert!(jit.overhead < cold.overhead);
        }

        #[test]
        fn stepped_run_matches_full_run(
            len in 1usize..6,
            seed in 0u64..100,
        ) {
            let dag = random_workflow(len, &[], 500.0);
            let mut stepped = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, seed));
            stepped.deploy(dag.clone()).unwrap();
            stepped.trigger_at("chain", SimTime::ZERO).unwrap();
            // Step in 1-second increments far past completion.
            for sec in 1..=120u64 {
                stepped.run_until(SimTime::from_secs(sec));
            }
            stepped.run_until_idle();

            let mut full = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, seed));
            full.deploy(dag).unwrap();
            full.trigger_at("chain", SimTime::ZERO).unwrap();
            full.run_until_idle();

            prop_assert_eq!(stepped.results(), full.results());
        }
    }
}
