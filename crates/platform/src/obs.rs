//! Observers and the metrics registry.
//!
//! The [`Observer`] trait is the synchronous counterpart of a bus
//! subscription: the platform calls [`Observer::on_event`] inline for
//! every emitted [`BusEvent`], in deterministic simulation order. Because
//! the platform only *constructs* events when at least one observer or
//! subscriber is attached (see `Platform::attach_observer`), an
//! unobserved platform pays nothing — not even the `String` clones a
//! payload would need.
//!
//! [`MetricsRegistry`] is the built-in observer: a deterministic set of
//! counters and fixed-bucket histograms aggregated from the event stream,
//! embeddable into a `PlatformReport` and exportable as flat JSON.

use crate::events::BusEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use xanadu_simcore::SimTime;

/// A synchronous, in-order consumer of platform events.
///
/// Implementations must be deterministic functions of the event stream if
/// the surrounding experiment relies on byte-identical output across
/// harness thread counts (every built-in observer is).
pub trait Observer: Send {
    /// Called once per emitted event, at simulation time `at`, in
    /// emission order.
    fn on_event(&mut self, at: SimTime, event: &BusEvent);
}

/// Shared handle to an attached observer.
///
/// The platform keeps a type-erased clone and calls it from the dispatch
/// loop; the handle lets the caller read the observer's state back out
/// afterwards (e.g. snapshot an aggregated [`MetricsRegistry`]).
#[derive(Debug)]
pub struct ObserverHandle<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Clone for ObserverHandle<T> {
    fn clone(&self) -> Self {
        ObserverHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> ObserverHandle<T> {
    /// Wraps an observer for sharing between the platform and the caller.
    pub(crate) fn new(observer: T) -> Self {
        ObserverHandle {
            inner: Arc::new(Mutex::new(observer)),
        }
    }

    /// The type-erased clone the platform dispatches to.
    pub(crate) fn shared(&self) -> Arc<Mutex<T>> {
        Arc::clone(&self.inner)
    }

    /// Runs `f` against the observer's current state.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.inner.lock().expect("observer lock poisoned"))
    }

    /// Runs `f` against the observer's state with mutable access (e.g. to
    /// drain accumulated output out of an attached observer).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock().expect("observer lock poisoned"))
    }

    /// Clones the observer's current state out of the handle.
    pub fn snapshot(&self) -> T
    where
        T: Clone,
    {
        self.with(T::clone)
    }
}

/// Upper bounds (milliseconds) of the fixed latency buckets, chosen to
/// resolve both sub-millisecond queue waits and multi-second cold-start
/// cascades. The last bucket is implicit `+inf`.
pub const LATENCY_BUCKET_BOUNDS_MS: [f64; 14] = [
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0,
];

/// A fixed-bucket histogram of millisecond latencies.
///
/// Bucket bounds are fixed at construction so two histograms built from
/// the same event stream are structurally identical — a requirement for
/// the byte-identical-exports determinism guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bounds of each bucket (a value `v` lands in the first bucket
    /// with `v <= bound`); one final implicit `+inf` bucket follows.
    pub bounds: Vec<f64>,
    /// Observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values, in milliseconds.
    pub sum_ms: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::latency()
    }
}

impl Histogram {
    /// A histogram over the standard latency buckets
    /// ([`LATENCY_BUCKET_BOUNDS_MS`]).
    pub fn latency() -> Self {
        Histogram {
            bounds: LATENCY_BUCKET_BOUNDS_MS.to_vec(),
            counts: vec![0; LATENCY_BUCKET_BOUNDS_MS.len() + 1],
            count: 0,
            sum_ms: 0.0,
        }
    }

    /// Records one observation of `ms` milliseconds.
    pub fn observe(&mut self, ms: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ms += ms;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Bucket-interpolated quantile estimate (Prometheus-style): finds the
    /// bucket containing the `q`·count-th observation and interpolates
    /// linearly between the bucket's bounds. Observations in the implicit
    /// overflow bucket are clamped to the largest finite bound, so the
    /// estimate never invents a value beyond the histogram's range.
    /// Returns 0 for an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: clamp to the last finite bound.
                    return self.bounds.last().copied().unwrap_or(lower).max(lower);
                };
                let within = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * within;
            }
            cum = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Folds `other` into `self` bucket-by-bucket.
    ///
    /// Both histograms must share bucket bounds (all built-ins do — the
    /// bounds are fixed at construction); mismatched shapes panic rather
    /// than silently mis-merge. Merging is commutative on the integer
    /// counts, and the platform always merges in canonical shard order so
    /// the `sum_ms` float accumulation is reproducible too.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ms += other.sum_ms;
    }
}

/// Counter and histogram names the built-in registry maintains. Keys are
/// `BTreeMap`-ordered so serialization is deterministic.
///
/// Counters: `faults.crashes`, `faults.timeouts`, `functions.invoked`,
/// `plans.computed`, `prediction.misses`, `requests.completed`,
/// `requests.triggered`, `retries`, `slo.alerts`, `starts.cold`,
/// `starts.warm`, `workers.on_demand`, `workers.provisioned`,
/// `workers.ready`.
///
/// Histograms: `cold_start_ms`, `end_to_end_ms`, `exec_ms`,
/// `overhead_ms`, `queue_wait_ms`, `retry_backoff_ms`.
///
/// Plan-cache hit/miss statistics are deliberately *not* derived here:
/// the determinism guarantee requires metrics exports to be
/// byte-identical with the cache on and off, so cache stats stay on
/// `Platform::plan_cache_stats()`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotonic event counters, keyed by dotted metric name.
    pub counters: BTreeMap<String, u64>,
    /// Fixed-bucket latency histograms, keyed by metric name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records `ms` into histogram `name` (creating it with the standard
    /// latency buckets).
    pub fn observe_ms(&mut self, name: &str, ms: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::latency)
            .observe(ms);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, when any observation has been recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-by-bucket. Used to combine per-shard registries into one
    /// fleet-wide registry; callers merge in canonical shard order so the
    /// result is byte-identical at any thread count.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| Histogram {
                    bounds: hist.bounds.clone(),
                    counts: vec![0; hist.counts.len()],
                    count: 0,
                    sum_ms: 0.0,
                })
                .merge_from(hist);
        }
    }
}

impl Observer for MetricsRegistry {
    fn on_event(&mut self, _at: SimTime, event: &BusEvent) {
        match event {
            BusEvent::RequestTriggered { .. } => self.incr("requests.triggered", 1),
            BusEvent::PlanComputed { .. } => self.incr("plans.computed", 1),
            BusEvent::FunctionInvoked { .. } => self.incr("functions.invoked", 1),
            BusEvent::WorkerProvisioned {
                cold_start_ms,
                on_demand,
                ..
            } => {
                self.incr("workers.provisioned", 1);
                if *on_demand {
                    self.incr("workers.on_demand", 1);
                }
                self.observe_ms("cold_start_ms", *cold_start_ms);
            }
            BusEvent::WorkerReady { .. } => self.incr("workers.ready", 1),
            BusEvent::ExecStarted {
                warm,
                queue_wait_ms,
                ..
            } => {
                self.incr(if *warm { "starts.warm" } else { "starts.cold" }, 1);
                self.observe_ms("queue_wait_ms", *queue_wait_ms);
            }
            BusEvent::ExecEnded { exec_ms, .. } => self.observe_ms("exec_ms", *exec_ms),
            BusEvent::PredictionMiss { .. } => self.incr("prediction.misses", 1),
            BusEvent::WorkerCrashed { .. } => self.incr("faults.crashes", 1),
            BusEvent::InvokeTimeout { .. } => self.incr("faults.timeouts", 1),
            BusEvent::InvokeRetried { backoff_ms, .. } => {
                self.incr("retries", 1);
                self.observe_ms("retry_backoff_ms", *backoff_ms);
            }
            BusEvent::RequestCompleted {
                overhead_ms,
                end_to_end_ms,
                ..
            } => {
                self.incr("requests.completed", 1);
                self.observe_ms("overhead_ms", *overhead_ms);
                self.observe_ms("end_to_end_ms", *end_to_end_ms);
            }
            BusEvent::SloAlert { .. } => self.incr("slo.alerts", 1),
            BusEvent::HostUp { .. } => self.incr("hosts.up", 1),
            BusEvent::HostDown { workers_lost, .. } => {
                self.incr("hosts.down", 1);
                self.incr("hosts.workers_lost", u64::from(*workers_lost));
            }
            BusEvent::WorkerPlaced { .. } => self.incr("workers.placed", 1),
            BusEvent::WorkerEvicted { .. } => self.incr("workers.evicted", 1),
            BusEvent::PolicyDecision { .. } => self.incr("policy.decisions", 1),
            BusEvent::CheckpointWritten { docs, .. } => {
                self.incr("checkpoints.written", 1);
                self.incr("checkpoints.docs", *docs);
            }
            BusEvent::CheckpointRestored { .. } => self.incr("checkpoints.restored", 1),
            BusEvent::SketchEviction { evicted, .. } => self.incr("sketch.evictions", *evicted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_and_tracks_mean() {
        let mut h = Histogram::latency();
        h.observe(0.5); // bucket 0 (<= 1 ms)
        h.observe(30.0); // <= 50 ms
        h.observe(1e6); // overflow bucket
        assert_eq!(h.count, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[h.counts.len() - 1], 1);
        assert!((h.mean_ms() - (0.5 + 30.0 + 1e6) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets_and_clamp_overflow() {
        let mut h = Histogram::latency();
        // 100 observations spread uniformly through the (100, 250] bucket.
        for i in 0..100 {
            h.observe(101.0 + i as f64);
        }
        let p50 = h.quantile_ms(0.5);
        assert!(
            (100.0..=250.0).contains(&p50) && (p50 - 175.0).abs() < 1.0,
            "p50 {p50} should interpolate to the bucket midpoint"
        );
        assert!(h.quantile_ms(0.0) >= 100.0);
        assert!(h.quantile_ms(1.0) <= 250.0);
        assert!(h.quantile_ms(0.25) < h.quantile_ms(0.75), "monotone in q");

        // Overflow observations clamp to the largest finite bound.
        let mut o = Histogram::latency();
        o.observe(1e9);
        assert_eq!(
            o.quantile_ms(0.99),
            *LATENCY_BUCKET_BOUNDS_MS.last().unwrap()
        );

        // Empty histogram reports 0.
        assert_eq!(Histogram::latency().quantile_ms(0.95), 0.0);
    }

    #[test]
    fn registry_aggregates_events() {
        let mut reg = MetricsRegistry::new();
        let events = [
            BusEvent::RequestTriggered {
                request: 0,
                workflow: "w".into(),
            },
            BusEvent::ExecStarted {
                request: 0,
                function: "f".into(),
                worker: 1,
                warm: false,
                queue_wait_ms: 812.0,
            },
            BusEvent::ExecStarted {
                request: 0,
                function: "g".into(),
                worker: 2,
                warm: true,
                queue_wait_ms: 0.0,
            },
            BusEvent::RequestCompleted {
                request: 0,
                workflow: "w".into(),
                overhead_ms: 12.0,
                end_to_end_ms: 900.0,
            },
        ];
        for e in &events {
            reg.on_event(SimTime::ZERO, e);
        }
        assert_eq!(reg.counter("requests.triggered"), 1);
        assert_eq!(reg.counter("starts.cold"), 1);
        assert_eq!(reg.counter("starts.warm"), 1);
        assert_eq!(reg.counter("requests.completed"), 1);
        assert_eq!(reg.counter("never.touched"), 0);
        assert_eq!(reg.histogram("queue_wait_ms").unwrap().count, 2);
        assert!((reg.histogram("overhead_ms").unwrap().mean_ms() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn registry_roundtrips_through_serde() {
        let mut reg = MetricsRegistry::new();
        reg.incr("retries", 3);
        reg.observe_ms("exec_ms", 150.0);
        let json = serde_json::to_string(&reg).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg);
    }

    #[test]
    fn merge_combines_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.incr("retries", 2);
        a.observe_ms("exec_ms", 40.0);
        let mut b = MetricsRegistry::new();
        b.incr("retries", 3);
        b.incr("faults.crashes", 1);
        b.observe_ms("exec_ms", 400.0);
        b.observe_ms("queue_wait_ms", 5.0);
        a.merge_from(&b);
        assert_eq!(a.counter("retries"), 5);
        assert_eq!(a.counter("faults.crashes"), 1);
        let exec = a.histogram("exec_ms").unwrap();
        assert_eq!(exec.count, 2);
        assert!((exec.sum_ms - 440.0).abs() < 1e-9);
        assert_eq!(a.histogram("queue_wait_ms").unwrap().count, 1);

        // Merging is order-insensitive on the integer state.
        let mut h1 = Histogram::latency();
        h1.observe(3.0);
        let mut h2 = Histogram::latency();
        h2.observe(700.0);
        let mut left = h1.clone();
        left.merge_from(&h2);
        let mut right = h2.clone();
        right.merge_from(&h1);
        assert_eq!(left.counts, right.counts);
        assert_eq!(left.count, right.count);
    }

    #[test]
    fn handle_snapshot_reflects_platform_side_mutation() {
        let handle = ObserverHandle::new(MetricsRegistry::new());
        let shared = handle.shared();
        shared.lock().unwrap().incr("retries", 2);
        assert_eq!(handle.snapshot().counter("retries"), 2);
        assert_eq!(handle.with(|r| r.counter("retries")), 2);
    }
}
