//! Observability exporters — the serialization boundary.
//!
//! This is the **only** module in `xanadu-platform` where observability
//! data may meet `serde_json::Value`: everything upstream (bus, observers,
//! traces, metrics) is typed, and CI rejects diffs that introduce
//! `serde_json::Value` anywhere else under `crates/platform/src`.
//!
//! Two formats are produced:
//!
//! * [`chrome_trace`] — the Chrome `trace_event` JSON format (complete
//!   `"X"` events + instant `"i"` events), loadable in `chrome://tracing`
//!   or Perfetto. One process (`pid`) per request, one thread lane
//!   (`tid`) per function.
//! * [`metrics_json`] — a flat snapshot of a [`MetricsRegistry`]:
//!   counters plus histogram buckets, means and interpolated
//!   p50/p95/p99/p99.9 quantiles.
//! * [`alert_json_line`] / [`service_metrics_text`] — the service tier's
//!   live surfaces: one compact JSONL line per SLO breach
//!   (`docs/schemas/alerts.schema.json`) and a Prometheus-style text
//!   exposition snapshot.
//! * [`audit_json`] — the speculation [`Audit`] produced by the analysis
//!   tier, serialized losslessly (the document round-trips back into an
//!   `Audit` for `xanadu diff`).
//!
//! Both are deterministic functions of their typed inputs: spans are
//! ordered by the [`SpanTree`](crate::timeline::SpanTree) contract, map
//! keys are `BTreeMap`-ordered, and timestamps come from `SimTime` in
//! integer microseconds — so the same seed yields byte-identical files
//! regardless of harness thread count.

use crate::analysis::Audit;
use crate::obs::{Histogram, MetricsRegistry};
use crate::stream::{SloAlert, SloReport, StreamingAudit, StreamingSummary};
use crate::timeline::{SpanKind, SpanTree, Trace};
use serde_json::{json, Map, Value};

/// Builds a Chrome `trace_event` document from per-request traces.
///
/// `traces` is a `(request id, trace)` list; requests are emitted in the
/// given order (callers pass them sorted by id). Empty traces are
/// skipped.
pub fn chrome_trace(traces: &[(u64, Trace)]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (request, trace) in traces {
        let Some(tree) = SpanTree::from_trace(*request, trace) else {
            continue;
        };
        let lanes = tree.functions();
        let lane = |function: &str| -> u64 {
            if function.is_empty() {
                0
            } else {
                1 + lanes.iter().position(|f| *f == function).unwrap_or(0) as u64
            }
        };
        events.push(complete_event(
            &tree.root.name,
            "request",
            *request,
            0,
            tree.root.start.as_micros(),
            tree.root.duration().as_micros(),
        ));
        for span in &tree.children {
            let cat = match span.kind {
                SpanKind::Request => "request",
                SpanKind::Deploy => "deploy",
                SpanKind::Wait => "wait",
                SpanKind::Exec => "exec",
            };
            events.push(complete_event(
                &span.name,
                cat,
                *request,
                lane(&span.function),
                span.start.as_micros(),
                span.duration().as_micros(),
            ));
        }
        for marker in &tree.markers {
            events.push(json!({
                "name": marker.label.clone(),
                "cat": "marker",
                "ph": "i",
                "s": "p",
                "ts": marker.at.as_micros(),
                "pid": *request,
                "tid": lane(&marker.function),
            }));
        }
    }
    json!({
        "displayTimeUnit": "ms",
        "traceEvents": events,
    })
}

/// Renders [`chrome_trace`] as pretty JSON text with a trailing newline.
pub fn chrome_trace_string(traces: &[(u64, Trace)]) -> String {
    let mut out = chrome_trace(traces).to_json_string_pretty();
    out.push('\n');
    out
}

fn complete_event(name: &str, cat: &str, pid: u64, tid: u64, ts: u64, dur: u64) -> Value {
    json!({
        "name": name.to_string(),
        "cat": cat.to_string(),
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
    })
}

/// Builds the flat metrics document: `{"counters": {...},
/// "histograms": {name: {bounds, counts, count, sum_ms, mean_ms,
/// p50_ms, p95_ms, p99_ms}}}`. The quantiles are the bucket-interpolated
/// [`Histogram::quantile_ms`](crate::obs::Histogram::quantile_ms) values.
pub fn metrics_json(registry: &MetricsRegistry) -> Value {
    let mut counters = Map::new();
    for (name, value) in &registry.counters {
        counters.insert(name.clone(), json!(*value));
    }
    let mut histograms = Map::new();
    for (name, h) in &registry.histograms {
        histograms.insert(name.clone(), histogram_json(h));
    }
    json!({
        "counters": Value::Object(counters),
        "histograms": Value::Object(histograms),
    })
}

/// The shared histogram document: buckets plus derived mean and
/// bucket-interpolated quantiles.
fn histogram_json(h: &Histogram) -> Value {
    json!({
        "bounds": h.bounds.clone(),
        "counts": h.counts.clone(),
        "count": h.count,
        "sum_ms": h.sum_ms,
        "mean_ms": h.mean_ms(),
        "p50_ms": h.quantile_ms(0.50),
        "p95_ms": h.quantile_ms(0.95),
        "p99_ms": h.quantile_ms(0.99),
        "p99_9_ms": h.quantile_ms(0.999),
    })
}

/// Renders [`metrics_json`] as pretty JSON text with a trailing newline.
pub fn metrics_json_string(registry: &MetricsRegistry) -> String {
    let mut out = metrics_json(registry).to_json_string_pretty();
    out.push('\n');
    out
}

/// Serializes an [`Audit`] to its JSON document. The document matches
/// `docs/schemas/audit.schema.json` and deserializes back into an equal
/// `Audit` — `xanadu diff` relies on that round trip.
pub fn audit_json(audit: &Audit) -> Value {
    serde_json::to_value(audit).expect("Audit serializes infallibly: string keys, finite floats")
}

/// Renders [`audit_json`] as pretty JSON text with a trailing newline.
pub fn audit_json_string(audit: &Audit) -> String {
    let mut out = audit_json(audit).to_json_string_pretty();
    out.push('\n');
    out
}

/// Builds the bounded-memory audit document of a [`StreamingAudit`]:
/// the run-level [`StreamingSummary`](crate::stream::StreamingSummary)
/// rendered with derived quantiles, plus the worst-request exemplar
/// span trees.
///
/// Counts and totals match the exact `--audit-out` document; latency
/// quantiles are bucket-interpolated (see the [`crate::stream`] module
/// docs for the tolerance contract).
pub fn streaming_json(audit: &StreamingAudit) -> Value {
    let s = audit.summary();
    let exemplars: Vec<Value> = audit
        .exemplars()
        .iter()
        .map(|e| {
            json!({
                "request": e.request,
                "end_to_end_ms": e.end_to_end_us as f64 / 1000.0,
                "spans": e.span_tree().map(|t| {
                    serde_json::to_value(t)
                        .expect("SpanTree serializes infallibly: strings and integer micros")
                }),
            })
        })
        .collect();
    json!({
        "requests": s.requests,
        "end_to_end_ms": histogram_json(&s.end_to_end),
        "components": {
            "exec": {"total_ms": s.exec_ms, "hist": histogram_json(&s.exec)},
            "cold_start_wait": {
                "total_ms": s.cold_start_wait_ms,
                "hist": histogram_json(&s.cold_start_wait),
            },
            "queue_wait": {"total_ms": s.queue_wait_ms, "hist": histogram_json(&s.queue_wait)},
            "stall": {"total_ms": s.stall_ms, "hist": histogram_json(&s.stall)},
        },
        "mlp": serde_json::to_value(&s.mlp)
            .expect("MlpStats serializes infallibly: string keys, finite floats"),
        "waste": serde_json::to_value(&s.waste).expect("WasteStats serializes infallibly"),
        "jit": {
            "planned": s.jit.planned,
            "late": s.jit.late,
            "on_time": s.jit.on_time,
            "late_ms": histogram_json(&s.jit.late_ms),
            "slack_ms": histogram_json(&s.jit.slack_ms),
        },
        "exemplars": exemplars,
    })
}

/// Renders [`streaming_json`] as pretty JSON text with a trailing
/// newline.
pub fn streaming_json_string(audit: &StreamingAudit) -> String {
    let mut out = streaming_json(audit).to_json_string_pretty();
    out.push('\n');
    out
}

/// Serializes a windowed [`SloReport`] to the document described by
/// `docs/schemas/slo.schema.json`.
pub fn slo_json(report: &SloReport) -> Value {
    serde_json::to_value(report)
        .expect("SloReport serializes infallibly: string keys, finite floats")
}

/// Renders [`slo_json`] as pretty JSON text with a trailing newline.
pub fn slo_json_string(report: &SloReport) -> String {
    let mut out = slo_json(report).to_json_string_pretty();
    out.push('\n');
    out
}

/// Renders one [`SloAlert`] as a compact JSONL record (no trailing
/// newline) matching `docs/schemas/alerts.schema.json`. The service tier
/// appends one line per breach to `--alerts-out`; because the rendering
/// is a pure function of the alert, an interrupted-and-resumed serve
/// reproduces the log byte-identically.
pub fn alert_json_line(alert: &SloAlert) -> String {
    serde_json::to_value(alert)
        .expect("SloAlert serializes infallibly: strings and finite floats")
        .to_json_string()
}

/// Live counters of the service tier, paired with a
/// [`StreamingSummary`] to render the text exposition.
#[derive(Debug, Clone, Default)]
pub struct ServiceStatus {
    /// Stream time covered so far, milliseconds.
    pub uptime_ms: f64,
    /// Stream events ingested.
    pub events: u64,
    /// Requests completed.
    pub requests: u64,
    /// Checkpoint epochs committed.
    pub checkpoints: u64,
    /// SLO alerts raised.
    pub alerts: u64,
    /// Keys currently tracked by the edge sketch.
    pub sketch_occupancy: u64,
    /// The edge sketch's fixed capacity.
    pub sketch_capacity: u64,
    /// Sketch counters displaced so far.
    pub sketch_evictions: u64,
    /// Events ingested since the last durable checkpoint.
    pub checkpoint_lag_events: u64,
    /// Wall-clock ingest throughput, events per second.
    pub events_per_sec: f64,
}

/// Renders the service tier's Prometheus-style text exposition: `# HELP`
/// / `# TYPE` headers plus one sample per metric, latency quantiles as
/// `xanadu_end_to_end_ms{quantile="..."}` gauges. The service rewrites
/// the `--metrics-text` file atomically with this snapshot each flush.
pub fn service_metrics_text(status: &ServiceStatus, summary: &StreamingSummary) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, value: f64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        "xanadu_stream_events_total",
        "Stream events ingested.",
        status.events as f64,
    );
    counter(
        "xanadu_requests_completed_total",
        "Requests completed.",
        status.requests as f64,
    );
    counter(
        "xanadu_checkpoints_total",
        "Checkpoint epochs committed.",
        status.checkpoints as f64,
    );
    counter(
        "xanadu_slo_alerts_total",
        "SLO window breaches raised.",
        status.alerts as f64,
    );
    counter(
        "xanadu_sketch_evictions_total",
        "Sketch counters displaced under capacity pressure.",
        status.sketch_evictions as f64,
    );
    counter(
        "xanadu_wasted_deploys_total",
        "Speculative deployments that served no invocation.",
        summary.waste.deploys as f64,
    );
    let mut gauge = |name: &str, help: &str, value: f64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    gauge(
        "xanadu_uptime_stream_ms",
        "Stream time covered, milliseconds.",
        status.uptime_ms,
    );
    gauge(
        "xanadu_events_per_second",
        "Wall-clock ingest throughput.",
        status.events_per_sec,
    );
    gauge(
        "xanadu_sketch_occupancy",
        "Keys tracked by the edge sketch.",
        status.sketch_occupancy as f64,
    );
    gauge(
        "xanadu_sketch_capacity",
        "Fixed capacity of the edge sketch.",
        status.sketch_capacity as f64,
    );
    gauge(
        "xanadu_checkpoint_lag_events",
        "Events ingested since the last durable checkpoint.",
        status.checkpoint_lag_events as f64,
    );
    gauge(
        "xanadu_mlp_recall",
        "Plan coverage over the whole stream.",
        summary.mlp.recall,
    );
    out.push_str(concat!(
        "# HELP xanadu_end_to_end_ms End-to-end latency, bucket-interpolated quantiles.\n",
        "# TYPE xanadu_end_to_end_ms summary\n",
    ));
    for (label, q) in [
        ("0.5", 0.50),
        ("0.95", 0.95),
        ("0.99", 0.99),
        ("0.999", 0.999),
    ] {
        out.push_str(&format!(
            "xanadu_end_to_end_ms{{quantile=\"{label}\"}} {}\n",
            summary.end_to_end.quantile_ms(q)
        ));
    }
    out.push_str(&format!(
        "xanadu_end_to_end_ms_sum {}\nxanadu_end_to_end_ms_count {}\n",
        summary.end_to_end.sum_ms, summary.end_to_end.count
    ));
    out
}

/// Validates `value` against a minimal JSON-Schema subset: `type`
/// (`object`/`array`/`string`/`number`/`integer`/`boolean`/`null`),
/// `required`, `properties`, `additionalProperties` (boolean or schema),
/// and `items`. Enough for the checked-in export schemas under
/// `docs/schemas/`; unknown keywords are ignored.
pub fn validate_schema(value: &Value, schema: &Value) -> Result<(), String> {
    validate_at(value, schema, "$")
}

fn validate_at(value: &Value, schema: &Value, path: &str) -> Result<(), String> {
    let Some(schema) = schema.as_object() else {
        return Err(format!("{path}: schema node is not an object"));
    };
    if let Some(ty) = schema.get("type").and_then(Value::as_str) {
        let ok = match ty {
            "object" => value.as_object().is_some(),
            "array" => value.as_array().is_some(),
            "string" => value.as_str().is_some(),
            "number" => value.as_f64().is_some(),
            "integer" => value.as_i64().is_some() || value.as_u64().is_some(),
            "boolean" => value.as_bool().is_some(),
            "null" => value.is_null(),
            other => return Err(format!("{path}: unsupported schema type {other:?}")),
        };
        if !ok {
            return Err(format!("{path}: expected {ty}, got {value:?}"));
        }
    }
    if let Some(obj) = value.as_object() {
        if let Some(required) = schema.get("required").and_then(Value::as_array) {
            for key in required {
                let key = key
                    .as_str()
                    .ok_or_else(|| format!("{path}: non-string entry in required"))?;
                if !obj.contains_key(key) {
                    return Err(format!("{path}: missing required property {key:?}"));
                }
            }
        }
        let properties = schema.get("properties").and_then(Value::as_object);
        for (key, child) in obj {
            let child_path = format!("{path}.{key}");
            if let Some(prop_schema) = properties.and_then(|p| p.get(key)) {
                validate_at(child, prop_schema, &child_path)?;
            } else {
                match schema.get("additionalProperties") {
                    Some(Value::Bool(false)) => {
                        return Err(format!("{path}: unexpected property {key:?}"));
                    }
                    Some(extra @ Value::Object(_)) => validate_at(child, extra, &child_path)?,
                    _ => {}
                }
            }
        }
    }
    if let (Some(items), Some(arr)) = (schema.get("items"), value.as_array()) {
        for (i, item) in arr.iter().enumerate() {
            validate_at(item, items, &format!("{path}[{i}]"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TraceEventKind;
    use xanadu_simcore::SimTime;

    fn demo_trace() -> Trace {
        let mut t = Trace::default();
        let ms = SimTime::from_millis;
        t.record(ms(0), TraceEventKind::Triggered);
        t.record(ms(0), TraceEventKind::PlanComputed { planned: 1 });
        t.record(
            ms(0),
            TraceEventKind::DeployStarted {
                function: "f".into(),
                on_demand: false,
                ready_at: ms(800),
            },
        );
        t.record(
            ms(5),
            TraceEventKind::Invoked {
                function: "f".into(),
            },
        );
        t.record(
            ms(800),
            TraceEventKind::ExecStarted {
                function: "f".into(),
                warm: false,
            },
        );
        t.record(
            ms(950),
            TraceEventKind::ExecEnded {
                function: "f".into(),
            },
        );
        t.record(ms(950), TraceEventKind::Completed);
        t
    }

    #[test]
    fn chrome_trace_emits_complete_and_instant_events() {
        let doc = chrome_trace(&[(7, demo_trace())]);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // request root + deploy + wait + exec + plan marker.
        assert_eq!(events.len(), 5);
        let root = &events[0];
        assert_eq!(root.get("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(root.get("pid").unwrap().as_u64().unwrap(), 7);
        assert_eq!(root.get("tid").unwrap().as_u64().unwrap(), 0);
        assert_eq!(root.get("dur").unwrap().as_u64().unwrap(), 950_000);
        let marker = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str().unwrap() == "i")
            .expect("instant marker");
        assert_eq!(marker.get("cat").unwrap().as_str().unwrap(), "marker");
        // All function spans share the function's lane.
        for e in events.iter().skip(1) {
            if e.get("ph").unwrap().as_str().unwrap() == "X" {
                assert_eq!(e.get("tid").unwrap().as_u64().unwrap(), 1);
            }
        }
    }

    #[test]
    fn chrome_trace_is_deterministic_text() {
        let traces = vec![(0, demo_trace()), (1, demo_trace())];
        assert_eq!(chrome_trace_string(&traces), chrome_trace_string(&traces));
    }

    #[test]
    fn metrics_json_is_flat_and_ordered() {
        let mut reg = MetricsRegistry::new();
        reg.incr("starts.cold", 2);
        reg.incr("retries", 1);
        reg.observe_ms("exec_ms", 100.0);
        let doc = metrics_json(&reg);
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("starts.cold")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        let hist = doc.get("histograms").unwrap().get("exec_ms").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("mean_ms").unwrap().as_f64(), Some(100.0));
        // BTreeMap ordering ⇒ "retries" precedes "starts.cold" in text.
        let text = metrics_json_string(&reg);
        assert!(text.find("retries").unwrap() < text.find("starts.cold").unwrap());
    }

    #[test]
    fn metrics_json_exports_interpolated_quantiles() {
        let mut reg = MetricsRegistry::new();
        for _ in 0..10 {
            reg.observe_ms("end_to_end_ms", 200.0);
        }
        let doc = metrics_json(&reg);
        let hist = doc.get("histograms").unwrap().get("end_to_end_ms").unwrap();
        for key in ["p50_ms", "p95_ms", "p99_ms", "p99_9_ms"] {
            let q = hist.get(key).unwrap().as_f64().unwrap();
            // All samples landed in the (100, 250] bucket.
            assert!((100.0..=250.0).contains(&q), "{key} = {q}");
        }
    }

    #[test]
    fn audit_json_round_trips_through_text() {
        let audit = Audit::from_traces(&[(0, demo_trace()), (1, demo_trace())]);
        let text = audit_json_string(&audit);
        let parsed: Audit = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, audit);
        // Byte-determinism of the rendered document.
        assert_eq!(text, audit_json_string(&audit));
    }

    #[test]
    fn validator_accepts_matching_documents() {
        let schema = json!({
            "type": "object",
            "required": ["a"],
            "properties": {
                "a": {"type": "integer"},
                "b": {"type": "array", "items": {"type": "number"}},
            },
            "additionalProperties": false,
        });
        let doc = json!({"a": 3, "b": [1.5, 2.0]});
        validate_schema(&doc, &schema).unwrap();
    }

    #[test]
    fn validator_rejects_type_missing_and_extra_keys() {
        let schema = json!({
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": false,
        });
        assert!(validate_schema(&json!({"a": "nope"}), &schema)
            .unwrap_err()
            .contains("expected integer"));
        assert!(validate_schema(&json!({}), &schema)
            .unwrap_err()
            .contains("missing required"));
        assert!(validate_schema(&json!({"a": 1, "z": 2}), &schema)
            .unwrap_err()
            .contains("unexpected property"));
    }

    #[test]
    fn alert_lines_are_compact_and_deterministic() {
        let alert = SloAlert {
            window: 3,
            path: "$.windows[3].end_to_end_ms.p95".into(),
            baseline: 400.0,
            candidate: 1300.0,
            allowed: "+225.0% > allowed +10.0%".into(),
        };
        let line = alert_json_line(&alert);
        assert!(!line.contains('\n'), "JSONL records are single-line");
        assert_eq!(line, alert_json_line(&alert));
        let parsed: SloAlert = serde_json::from_str(&line).unwrap();
        assert_eq!(parsed, alert);
    }

    #[test]
    fn service_metrics_text_is_prometheus_shaped() {
        let mut summary = StreamingSummary::default();
        summary.end_to_end.observe(120.0);
        let status = ServiceStatus {
            uptime_ms: 60_000.0,
            events: 500,
            requests: 480,
            checkpoints: 5,
            alerts: 1,
            sketch_occupancy: 40,
            sketch_capacity: 64,
            sketch_evictions: 7,
            checkpoint_lag_events: 0,
            events_per_sec: 1234.5,
        };
        let text = service_metrics_text(&status, &summary);
        assert!(text.contains("# TYPE xanadu_stream_events_total counter"));
        assert!(text.contains("xanadu_stream_events_total 500"));
        assert!(text.contains("xanadu_sketch_occupancy 40"));
        assert!(text.contains("xanadu_end_to_end_ms{quantile=\"0.999\"}"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }

    #[test]
    fn validator_applies_additional_properties_schema_to_map_values() {
        let schema = json!({
            "type": "object",
            "additionalProperties": {"type": "integer"},
        });
        validate_schema(&json!({"x": 1, "y": 2}), &schema).unwrap();
        assert!(validate_schema(&json!({"x": 1.5}), &schema).is_err());
    }
}
