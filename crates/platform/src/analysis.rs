//! Speculation audit & regression analysis over typed traces.
//!
//! PR 3's observability layer records *what happened*; this module
//! interprets it. From per-request [`Trace`]s it derives the audit the
//! paper's evaluation is built on:
//!
//! * **Critical-path decomposition** — every microsecond between trigger
//!   and completion is attributed to exactly one of `exec`,
//!   `cold-start wait`, `queue wait` or `stall` (retry backoff and
//!   orchestration gaps), so the four components sum to the end-to-end
//!   latency *exactly* (the span-sum invariant,
//!   [`RequestAudit::decomposition_sums_to_end_to_end`]).
//! * **MLP prediction quality** (§3.1) — precision of the speculative
//!   pre-deployments (how many served) and recall of the plan (how many
//!   invocations it covered), overall, per function, and with prediction
//!   misses attributed to their cascade depth.
//! * **Wasted-deploy accounting** (§3.2.1) — count and CPU-ms charged to
//!   speculative sandboxes that never served an invocation.
//! * **JIT timing quality** (§3.2.2) — the distribution of
//!   sandbox-ready-time minus invoke-time: positive is *lateness* the
//!   request waited out, negative is *slack* the platform paid for early.
//!
//! [`diff_audits`] / [`diff_metrics`] compare two snapshots under
//! [`DiffThresholds`] and return the list of [`Regression`]s — the
//! machine-checkable gate behind `xanadu diff` and CI.
//!
//! Everything here is a deterministic function of the typed inputs: the
//! same traces produce byte-identical audits regardless of harness thread
//! count or plan-cache setting (plan-cache state never reaches the trace).

use crate::hosts::ClusterReport;
use crate::obs::MetricsRegistry;
use crate::timeline::{Trace, TraceEventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Order statistics of a latency sample set, in milliseconds.
///
/// Quantiles are nearest-rank over the *exact* per-request samples (not
/// bucketed), so they are deterministic and reproducible to the bit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencyStats {
    /// Computes the stats of `samples` (order irrelevant).
    pub fn from_samples(mut samples: Vec<f64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        LatencyStats {
            count: n as u64,
            mean: samples.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: samples[n - 1],
        }
    }
}

/// One planned-or-on-demand deployment paired with its invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JitSample {
    /// The deployed function.
    pub function: String,
    /// Whether the deployment was forced by a waiting request (on-demand
    /// provisions are late by a full cold start, by construction).
    pub on_demand: bool,
    /// Sandbox-ready-time minus invoke-time, in milliseconds. Positive:
    /// the sandbox was *late* and the request waited. Negative: the
    /// sandbox was warm early — the magnitude is the pre-warm slack paid.
    pub lateness_ms: f64,
}

/// The speculation audit of a single request, derived from its [`Trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestAudit {
    /// Request id (caller-assigned; harness merges re-key by trigger
    /// index).
    pub request: u64,
    /// Trigger-to-completion latency, integer microseconds.
    pub end_to_end_us: u64,
    /// Microseconds during which at least one function was executing.
    pub exec_us: u64,
    /// Microseconds waiting on an invocation that was eventually served
    /// cold (sandbox provisioning on the critical path).
    pub cold_start_wait_us: u64,
    /// Microseconds waiting on an invocation eventually served warm
    /// (dispatch/queueing overhead only).
    pub queue_wait_us: u64,
    /// Microseconds with nothing executing and nothing waiting — retry
    /// backoff windows and orchestration gaps.
    pub stall_us: u64,
    /// Functions speculatively pre-deployed for this request (first-deploy
    /// order). On-demand provisions are *not* predictions.
    pub predicted: Vec<String>,
    /// Functions invoked, in invocation order — a function's index is its
    /// cascade depth.
    pub invoked: Vec<String>,
    /// Invoked functions absent from the speculation plan.
    pub missed: Vec<String>,
    /// Speculative deployments that never served an invocation.
    pub unused_deploys: u64,
    /// CPU-ms charged to those unused speculative sandboxes (deploy start
    /// to trace end, the window [`SpanTree`](crate::timeline::SpanTree)
    /// also charges).
    pub wasted_cpu_ms: f64,
    /// Ready-versus-invoke timing of every deployment that served.
    pub jit: Vec<JitSample>,
}

impl RequestAudit {
    /// Builds the audit of one request from its trace, or `None` for an
    /// empty trace.
    pub fn from_trace(request: u64, trace: &Trace) -> Option<RequestAudit> {
        let events = trace.events();
        let t0 = events.first()?.at.as_micros();
        let tn = events.last().map(|e| e.at.as_micros()).unwrap_or(t0);

        struct Deploy {
            function: String,
            start_us: u64,
            ready_us: u64,
            on_demand: bool,
            used: bool,
        }
        let mut deploys: Vec<Deploy> = Vec::new();
        let mut exec_iv: Vec<(u64, u64)> = Vec::new();
        let mut cold_iv: Vec<(u64, u64)> = Vec::new();
        let mut warm_iv: Vec<(u64, u64)> = Vec::new();
        let mut open_waits: Vec<(String, u64)> = Vec::new();
        let mut open_execs: Vec<(String, u64)> = Vec::new();
        let mut predicted: Vec<String> = Vec::new();
        let mut invoked: Vec<String> = Vec::new();
        let mut invoke_at: Vec<(String, u64)> = Vec::new();
        let mut missed: Vec<String> = Vec::new();

        for e in events {
            let at = e.at.as_micros();
            match &e.kind {
                TraceEventKind::DeployStarted {
                    function,
                    on_demand,
                    ready_at,
                } => {
                    if !*on_demand && !predicted.contains(function) {
                        predicted.push(function.clone());
                    }
                    deploys.push(Deploy {
                        function: function.clone(),
                        start_us: at,
                        ready_us: ready_at.as_micros(),
                        on_demand: *on_demand,
                        used: false,
                    });
                }
                TraceEventKind::Invoked { function } => {
                    if !invoked.contains(function) {
                        invoked.push(function.clone());
                        invoke_at.push((function.clone(), at));
                    }
                    open_waits.push((function.clone(), at));
                }
                TraceEventKind::ExecStarted { function, warm } => {
                    if let Some(d) = deploys
                        .iter_mut()
                        .find(|d| d.function == *function && !d.used)
                    {
                        d.used = true;
                    }
                    if let Some(i) = open_waits.iter().position(|(f, _)| f == function) {
                        let (_, start) = open_waits.remove(i);
                        let iv = (start, at);
                        if *warm {
                            warm_iv.push(iv);
                        } else {
                            cold_iv.push(iv);
                        }
                    }
                    open_execs.push((function.clone(), at));
                }
                TraceEventKind::ExecEnded { function }
                | TraceEventKind::TimedOut { function, .. } => {
                    if let Some(i) = open_execs.iter().position(|(f, _)| f == function) {
                        let (_, start) = open_execs.remove(i);
                        exec_iv.push((start, at));
                    }
                }
                TraceEventKind::PredictionMiss { function } if !missed.contains(function) => {
                    missed.push(function.clone());
                }
                _ => {}
            }
        }
        // Intervals still open at trace end run to the end: an unfinished
        // execution counts as exec, an unserved wait as cold-start wait.
        exec_iv.extend(open_execs.into_iter().map(|(_, s)| (s, tn)));
        cold_iv.extend(open_waits.into_iter().map(|(_, s)| (s, tn)));

        // Partition [t0, tn] at every interval endpoint and attribute each
        // segment to exactly one category (exec dominates waits, cold
        // dominates warm). A partition sums to the total by construction —
        // the span-sum invariant is structural, not approximate.
        let mut cuts: Vec<u64> = vec![t0, tn];
        for &(s, e) in exec_iv.iter().chain(&cold_iv).chain(&warm_iv) {
            cuts.push(s.clamp(t0, tn));
            cuts.push(e.clamp(t0, tn));
        }
        cuts.sort_unstable();
        cuts.dedup();
        let covers = |iv: &[(u64, u64)], a: u64, b: u64| iv.iter().any(|&(s, e)| s <= a && e >= b);
        let (mut exec_us, mut cold_us, mut queue_us, mut stall_us) = (0u64, 0u64, 0u64, 0u64);
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            let len = b - a;
            if covers(&exec_iv, a, b) {
                exec_us += len;
            } else if covers(&cold_iv, a, b) {
                cold_us += len;
            } else if covers(&warm_iv, a, b) {
                queue_us += len;
            } else {
                stall_us += len;
            }
        }

        let unused: Vec<&Deploy> = deploys.iter().filter(|d| !d.used && !d.on_demand).collect();
        let wasted_cpu_ms = unused
            .iter()
            .map(|d| (tn - d.start_us) as f64 / 1000.0)
            .sum();
        let unused_deploys = unused.len() as u64;

        // Pair each invoked function with its first deployment (replacement
        // provisions after crashes keep their own events but the first
        // schedule is the planner's intent).
        let mut jit = Vec::new();
        for (function, inv_us) in &invoke_at {
            if let Some(d) = deploys.iter().find(|d| d.function == *function) {
                jit.push(JitSample {
                    function: function.clone(),
                    on_demand: d.on_demand,
                    lateness_ms: (d.ready_us as f64 - *inv_us as f64) / 1000.0,
                });
            }
        }

        Some(RequestAudit {
            request,
            end_to_end_us: tn - t0,
            exec_us,
            cold_start_wait_us: cold_us,
            queue_wait_us: queue_us,
            stall_us,
            predicted,
            invoked,
            missed,
            unused_deploys,
            wasted_cpu_ms,
            jit,
        })
    }

    /// The span-sum invariant: the four decomposition components sum to
    /// the end-to-end latency, exactly, in integer microseconds.
    pub fn decomposition_sums_to_end_to_end(&self) -> bool {
        self.exec_us + self.cold_start_wait_us + self.queue_wait_us + self.stall_us
            == self.end_to_end_us
    }

    /// End-to-end latency in milliseconds.
    pub fn end_to_end_ms(&self) -> f64 {
        self.end_to_end_us as f64 / 1000.0
    }

    /// Fraction of speculative pre-deploys that served (1 when none were
    /// made).
    pub fn precision(&self) -> f64 {
        if self.predicted.is_empty() {
            return 1.0;
        }
        let hits = self
            .predicted
            .iter()
            .filter(|f| self.invoked.contains(f))
            .count();
        hits as f64 / self.predicted.len() as f64
    }

    /// Fraction of invocations the plan covered (1 when nothing was
    /// invoked).
    pub fn recall(&self) -> f64 {
        if self.invoked.is_empty() {
            return 1.0;
        }
        1.0 - self.missed.len() as f64 / self.invoked.len() as f64
    }
}

/// Per-function prediction tallies aggregated across requests.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EdgeStats {
    /// Requests in which the function was speculatively pre-deployed.
    pub predicted: u64,
    /// Requests in which a pre-deploy of the function served (hit).
    pub hits: u64,
    /// Requests in which the function was invoked.
    pub invoked: u64,
    /// Requests in which its invocation was a prediction miss.
    pub misses: u64,
}

impl EdgeStats {
    /// hits / predicted (1 when never predicted).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            1.0
        } else {
            self.hits as f64 / self.predicted as f64
        }
    }

    /// (invoked − misses) / invoked (1 when never invoked).
    pub fn recall(&self) -> f64 {
        if self.invoked == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.invoked as f64
        }
    }
}

/// Aggregated MLP prediction quality.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MlpStats {
    /// Total speculative pre-deploys (function × request).
    pub predicted: u64,
    /// Pre-deploys that served an invocation.
    pub hits: u64,
    /// Total invocations.
    pub invoked: u64,
    /// Prediction misses.
    pub misses: u64,
    /// hits / predicted (1 when nothing was predicted).
    pub precision: f64,
    /// (invoked − misses) / invoked (1 when nothing was invoked).
    pub recall: f64,
    /// Per-function tallies, name-ordered.
    pub per_function: BTreeMap<String, EdgeStats>,
    /// Misses by cascade depth: `miss_depth[d]` counts misses whose
    /// function was the `d`-th invocation of its request.
    pub miss_depth: Vec<u64>,
}

/// Cost of speculation that never served.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WasteStats {
    /// Unused speculative deployments.
    pub deploys: u64,
    /// CPU-ms charged to them (deploy start to trace end).
    pub cpu_ms: f64,
}

/// JIT timeline quality over planned deployments that served.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JitStats {
    /// Planned (non-on-demand) deployments that served an invocation.
    pub planned: u64,
    /// Of those, sandboxes ready after their invocation (the request
    /// waited).
    pub late: u64,
    /// Sandboxes ready at or before their invocation.
    pub on_time: u64,
    /// Distribution of positive lateness (ms), late deployments only.
    pub late_ms: LatencyStats,
    /// Distribution of pre-warm slack (ms), on-time deployments only.
    pub slack_ms: LatencyStats,
}

/// Run-level audit aggregates.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Number of requests audited.
    pub requests: u64,
    /// End-to-end latency order statistics.
    pub end_to_end_ms: LatencyStats,
    /// Total milliseconds attributed to execution.
    pub exec_ms: f64,
    /// Total milliseconds attributed to cold-start waits.
    pub cold_start_wait_ms: f64,
    /// Total milliseconds attributed to warm-dispatch queueing.
    pub queue_wait_ms: f64,
    /// Total milliseconds attributed to stalls (backoff, gaps).
    pub stall_ms: f64,
    /// MLP prediction quality.
    pub mlp: MlpStats,
    /// Wasted-deploy accounting.
    pub waste: WasteStats,
    /// JIT timing quality.
    pub jit: JitStats,
}

/// A complete audit: run-level summary plus every per-request row.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Audit {
    /// Aggregates over [`Audit::requests`].
    pub summary: AuditSummary,
    /// Per-request audits, in the order given.
    pub requests: Vec<RequestAudit>,
    /// Cluster scheduling outcome (per-host utilization, tenant
    /// admission, cross-host cold attribution), attached via
    /// [`Audit::with_cluster`] when the run used an explicit multi-host
    /// cluster. Omitted from serialization otherwise, so single-testbed
    /// audits keep their pre-cluster shape.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cluster: Option<ClusterReport>,
}

impl Audit {
    /// Aggregates per-request audits into a full audit.
    pub fn from_requests(requests: Vec<RequestAudit>) -> Audit {
        let mut summary = AuditSummary {
            requests: requests.len() as u64,
            ..AuditSummary::default()
        };
        let (mut exec_us, mut cold_us, mut queue_us, mut stall_us) = (0u64, 0u64, 0u64, 0u64);
        let mut e2e = Vec::with_capacity(requests.len());
        let mut late = Vec::new();
        let mut slack = Vec::new();
        for r in &requests {
            e2e.push(r.end_to_end_ms());
            exec_us += r.exec_us;
            cold_us += r.cold_start_wait_us;
            queue_us += r.queue_wait_us;
            stall_us += r.stall_us;

            for f in &r.predicted {
                let edge = summary.mlp.per_function.entry(f.clone()).or_default();
                edge.predicted += 1;
                summary.mlp.predicted += 1;
                if r.invoked.contains(f) {
                    edge.hits += 1;
                    summary.mlp.hits += 1;
                }
            }
            for (depth, f) in r.invoked.iter().enumerate() {
                let edge = summary.mlp.per_function.entry(f.clone()).or_default();
                edge.invoked += 1;
                summary.mlp.invoked += 1;
                if r.missed.contains(f) {
                    edge.misses += 1;
                    summary.mlp.misses += 1;
                    if summary.mlp.miss_depth.len() <= depth {
                        summary.mlp.miss_depth.resize(depth + 1, 0);
                    }
                    summary.mlp.miss_depth[depth] += 1;
                }
            }

            summary.waste.deploys += r.unused_deploys;
            summary.waste.cpu_ms += r.wasted_cpu_ms;

            for s in r.jit.iter().filter(|s| !s.on_demand) {
                summary.jit.planned += 1;
                if s.lateness_ms > 0.0 {
                    summary.jit.late += 1;
                    late.push(s.lateness_ms);
                } else {
                    summary.jit.on_time += 1;
                    slack.push(-s.lateness_ms);
                }
            }
        }
        summary.end_to_end_ms = LatencyStats::from_samples(e2e);
        summary.exec_ms = exec_us as f64 / 1000.0;
        summary.cold_start_wait_ms = cold_us as f64 / 1000.0;
        summary.queue_wait_ms = queue_us as f64 / 1000.0;
        summary.stall_ms = stall_us as f64 / 1000.0;
        summary.mlp.precision = if summary.mlp.predicted == 0 {
            1.0
        } else {
            summary.mlp.hits as f64 / summary.mlp.predicted as f64
        };
        summary.mlp.recall = if summary.mlp.invoked == 0 {
            1.0
        } else {
            1.0 - summary.mlp.misses as f64 / summary.mlp.invoked as f64
        };
        summary.jit.late_ms = LatencyStats::from_samples(late);
        summary.jit.slack_ms = LatencyStats::from_samples(slack);
        Audit {
            summary,
            requests,
            cluster: None,
        }
    }

    /// Attaches a cluster scheduling report (see
    /// [`Platform::cluster_report`](crate::Platform::cluster_report)).
    #[must_use]
    pub fn with_cluster(mut self, cluster: Option<ClusterReport>) -> Audit {
        self.cluster = cluster;
        self
    }

    /// Builds the audit of `(request id, trace)` pairs (callers pass them
    /// in request order; empty traces are skipped).
    pub fn from_traces(traces: &[(u64, Trace)]) -> Audit {
        Audit::from_requests(
            traces
                .iter()
                .filter_map(|(id, t)| RequestAudit::from_trace(*id, t))
                .collect(),
        )
    }

    /// Renders the human-readable audit report.
    pub fn render(&self) -> String {
        let s = &self.summary;
        let mut out = String::new();
        let _ = writeln!(out, "speculation audit — {} requests", s.requests);
        let _ = writeln!(
            out,
            "  end-to-end ms: mean {:.1}  p50 {:.1}  p95 {:.1}  p99 {:.1}  max {:.1}",
            s.end_to_end_ms.mean,
            s.end_to_end_ms.p50,
            s.end_to_end_ms.p95,
            s.end_to_end_ms.p99,
            s.end_to_end_ms.max
        );
        let total = s.exec_ms + s.cold_start_wait_ms + s.queue_wait_ms + s.stall_ms;
        let pct = |part: f64| {
            if total > 0.0 {
                100.0 * part / total
            } else {
                0.0
            }
        };
        let _ = writeln!(
            out,
            "  critical path: exec {:.1}ms ({:.1}%)  cold-start wait {:.1}ms ({:.1}%)  \
             queue wait {:.1}ms ({:.1}%)  stall {:.1}ms ({:.1}%)",
            s.exec_ms,
            pct(s.exec_ms),
            s.cold_start_wait_ms,
            pct(s.cold_start_wait_ms),
            s.queue_wait_ms,
            pct(s.queue_wait_ms),
            s.stall_ms,
            pct(s.stall_ms)
        );
        let _ = writeln!(
            out,
            "  MLP: precision {:.2} ({}/{} pre-deploys served)  recall {:.2} \
             ({} misses / {} invocations)",
            s.mlp.precision, s.mlp.hits, s.mlp.predicted, s.mlp.recall, s.mlp.misses, s.mlp.invoked
        );
        if !s.mlp.miss_depth.is_empty() {
            let depths: Vec<String> = s
                .mlp
                .miss_depth
                .iter()
                .enumerate()
                .map(|(d, n)| format!("d{d}={n}"))
                .collect();
            let _ = writeln!(out, "  misses by cascade depth: {}", depths.join(" "));
        }
        let _ = writeln!(
            out,
            "  waste: {} unused pre-deploys, {:.1} CPU-ms",
            s.waste.deploys, s.waste.cpu_ms
        );
        let _ = writeln!(
            out,
            "  JIT: {} planned deploys served — {} on time (p50 slack {:.1}ms), \
             {} late (p95 lateness {:.1}ms)",
            s.jit.planned, s.jit.on_time, s.jit.slack_ms.p50, s.jit.late, s.jit.late_ms.p95
        );
        if let Some(c) = &self.cluster {
            let _ = writeln!(
                out,
                "  cluster ({} hosts, {} policy): {} placed, {} evicted, \
                 {} overcommitted, {} booted, {} failed",
                c.hosts.len(),
                c.policy.label(),
                c.hosts.iter().map(|h| h.placed).sum::<u64>(),
                c.hosts.iter().map(|h| h.evicted).sum::<u64>(),
                c.overcommitted,
                c.hosts_booted,
                c.hosts_failed
            );
            let chained = c.cross_host_cold + c.same_host_cold;
            if chained > 0 {
                let _ = writeln!(
                    out,
                    "    cold cascades: {} cross-host, {} co-located \
                     ({:.1}% locality), {} retargets co-located",
                    c.cross_host_cold,
                    c.same_host_cold,
                    100.0 * c.same_host_cold as f64 / chained as f64,
                    c.retargets_colocated
                );
            }
            for h in &c.hosts {
                let _ = writeln!(
                    out,
                    "    {}: peak {:.1}% of {} MB ({} placed, {} evicted, {} failures)",
                    h.name,
                    100.0 * h.peak_utilization(),
                    h.memory_mb,
                    h.placed,
                    h.evicted,
                    h.failures
                );
            }
            for t in &c.tenants {
                let _ = writeln!(
                    out,
                    "    tenant {}: weight {:.1}, {} placed, {} rejected, peak {} MB",
                    t.name, t.weight, t.placed, t.rejected, t.peak_used_mb
                );
            }
        }
        out
    }
}

/// Regression gates for [`diff_audits`] / [`diff_metrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffThresholds {
    /// Maximum tolerated relative increase of a latency quantile, percent.
    pub max_p95_regress_pct: f64,
    /// Maximum tolerated relative increase of wasted-deploy CPU-ms,
    /// percent.
    pub max_wasted_cpu_regress_pct: f64,
    /// Maximum tolerated absolute drop of MLP recall (and precision).
    pub max_recall_drop: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            max_p95_regress_pct: 10.0,
            max_wasted_cpu_regress_pct: 25.0,
            max_recall_drop: 0.05,
        }
    }
}

/// One metric that moved past its threshold, with the JSON-pointer-style
/// path of the offending field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Path of the field in the audit/metrics document (`$.summary…`).
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Human-readable statement of the exceeded limit.
    pub allowed: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: baseline {:.3} -> candidate {:.3} ({})",
            self.path, self.baseline, self.candidate, self.allowed
        )
    }
}

/// Milliseconds below which a relative latency/cost increase is ignored —
/// keeps near-zero baselines from flagging noise as an infinite-percent
/// regression.
pub(crate) const ABS_FLOOR_MS: f64 = 1.0;

pub(crate) fn pct_regression(
    path: &str,
    baseline: f64,
    candidate: f64,
    max_pct: f64,
) -> Option<Regression> {
    if candidate <= baseline || candidate < ABS_FLOOR_MS {
        return None;
    }
    let (grew, allowed) = if baseline < ABS_FLOOR_MS {
        // From ~zero any material value is an infinite-percent increase.
        (
            true,
            format!("grew from ~0 past the {ABS_FLOOR_MS}ms floor"),
        )
    } else {
        let pct = 100.0 * (candidate - baseline) / baseline;
        (
            pct > max_pct,
            format!("+{pct:.1}% > allowed +{max_pct:.1}%"),
        )
    };
    grew.then_some(Regression {
        path: path.to_string(),
        baseline,
        candidate,
        allowed,
    })
}

pub(crate) fn drop_regression(
    path: &str,
    baseline: f64,
    candidate: f64,
    max_drop: f64,
) -> Option<Regression> {
    let drop = baseline - candidate;
    (drop > max_drop).then_some(Regression {
        path: path.to_string(),
        baseline,
        candidate,
        allowed: format!("-{drop:.3} > allowed -{max_drop:.3}"),
    })
}

/// Compares two audits and returns every threshold the candidate crossed.
/// Empty means no regression.
pub fn diff_audits(
    baseline: &Audit,
    candidate: &Audit,
    thresholds: &DiffThresholds,
) -> Vec<Regression> {
    let (b, c) = (&baseline.summary, &candidate.summary);
    let mut out = Vec::new();
    out.extend(pct_regression(
        "$.summary.end_to_end_ms.p50",
        b.end_to_end_ms.p50,
        c.end_to_end_ms.p50,
        thresholds.max_p95_regress_pct,
    ));
    out.extend(pct_regression(
        "$.summary.end_to_end_ms.p95",
        b.end_to_end_ms.p95,
        c.end_to_end_ms.p95,
        thresholds.max_p95_regress_pct,
    ));
    out.extend(pct_regression(
        "$.summary.waste.cpu_ms",
        b.waste.cpu_ms,
        c.waste.cpu_ms,
        thresholds.max_wasted_cpu_regress_pct,
    ));
    out.extend(drop_regression(
        "$.summary.mlp.recall",
        b.mlp.recall,
        c.mlp.recall,
        thresholds.max_recall_drop,
    ));
    out.extend(drop_regression(
        "$.summary.mlp.precision",
        b.mlp.precision,
        c.mlp.precision,
        thresholds.max_recall_drop,
    ));
    out
}

/// Compares two metrics snapshots: every histogram present in both gates
/// on its interpolated p95, and the prediction-miss rate (misses per
/// triggered request) gates on the recall-drop threshold.
pub fn diff_metrics(
    baseline: &MetricsRegistry,
    candidate: &MetricsRegistry,
    thresholds: &DiffThresholds,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (name, bh) in &baseline.histograms {
        let Some(ch) = baseline_pair(candidate, name) else {
            continue;
        };
        out.extend(pct_regression(
            &format!("$.histograms.{name}.p95"),
            bh.quantile_ms(0.95),
            ch.quantile_ms(0.95),
            thresholds.max_p95_regress_pct,
        ));
    }
    let recall = |m: &MetricsRegistry| {
        let triggered = m.counter("requests.triggered");
        if triggered == 0 {
            1.0
        } else {
            1.0 - m.counter("prediction.misses") as f64 / triggered as f64
        }
    };
    out.extend(drop_regression(
        "$.counters.prediction.misses (recall per trigger)",
        recall(baseline),
        recall(candidate),
        thresholds.max_recall_drop,
    ));
    out
}

fn baseline_pair<'a>(
    candidate: &'a MetricsRegistry,
    name: &str,
) -> Option<&'a crate::obs::Histogram> {
    candidate.histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xanadu_simcore::SimTime;

    /// a: planned, slightly late. b: miss, on-demand. spare: wasted.
    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        let ms = SimTime::from_millis;
        t.record(ms(0), TraceEventKind::Triggered);
        t.record(ms(0), TraceEventKind::PlanComputed { planned: 2 });
        t.record(
            ms(0),
            TraceEventKind::DeployStarted {
                function: "a".into(),
                on_demand: false,
                ready_at: ms(120),
            },
        );
        t.record(
            ms(0),
            TraceEventKind::DeployStarted {
                function: "spare".into(),
                on_demand: false,
                ready_at: ms(150),
            },
        );
        t.record(
            ms(100),
            TraceEventKind::Invoked {
                function: "a".into(),
            },
        );
        t.record(
            ms(120),
            TraceEventKind::ExecStarted {
                function: "a".into(),
                warm: false,
            },
        );
        t.record(
            ms(620),
            TraceEventKind::ExecEnded {
                function: "a".into(),
            },
        );
        t.record(
            ms(620),
            TraceEventKind::PredictionMiss {
                function: "b".into(),
            },
        );
        t.record(
            ms(620),
            TraceEventKind::Invoked {
                function: "b".into(),
            },
        );
        t.record(
            ms(620),
            TraceEventKind::DeployStarted {
                function: "b".into(),
                on_demand: true,
                ready_at: ms(1400),
            },
        );
        t.record(
            ms(1400),
            TraceEventKind::ExecStarted {
                function: "b".into(),
                warm: false,
            },
        );
        t.record(
            ms(1700),
            TraceEventKind::ExecEnded {
                function: "b".into(),
            },
        );
        t.record(ms(1700), TraceEventKind::Completed);
        t
    }

    #[test]
    fn decomposition_partitions_the_timeline_exactly() {
        let audit = RequestAudit::from_trace(3, &sample_trace()).unwrap();
        assert_eq!(audit.request, 3);
        assert_eq!(audit.end_to_end_us, 1_700_000);
        // exec: 120–620 and 1400–1700 = 800ms.
        assert_eq!(audit.exec_us, 800_000);
        // cold waits: 100–120 (a) and 620–1400 (b) = 800ms.
        assert_eq!(audit.cold_start_wait_us, 800_000);
        assert_eq!(audit.queue_wait_us, 0);
        // Stall: 0–100 before the first invocation.
        assert_eq!(audit.stall_us, 100_000);
        assert!(audit.decomposition_sums_to_end_to_end());
    }

    #[test]
    fn prediction_waste_and_jit_are_attributed() {
        let audit = RequestAudit::from_trace(0, &sample_trace()).unwrap();
        assert_eq!(audit.predicted, vec!["a".to_string(), "spare".to_string()]);
        assert_eq!(audit.invoked, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(audit.missed, vec!["b".to_string()]);
        assert!((audit.precision() - 0.5).abs() < 1e-9, "spare never served");
        assert!((audit.recall() - 0.5).abs() < 1e-9, "b was a miss");
        assert_eq!(audit.unused_deploys, 1);
        // spare charged from deploy start (0) to trace end (1700ms).
        assert!((audit.wasted_cpu_ms - 1700.0).abs() < 1e-9);
        // a: ready 120 vs invoked 100 → 20ms late. b: on-demand, 780ms.
        assert_eq!(audit.jit.len(), 2);
        assert!(!audit.jit[0].on_demand);
        assert!((audit.jit[0].lateness_ms - 20.0).abs() < 1e-9);
        assert!(audit.jit[1].on_demand);
        assert!((audit.jit[1].lateness_ms - 780.0).abs() < 1e-9);
    }

    #[test]
    fn audit_aggregates_across_requests() {
        let traces = vec![(0, sample_trace()), (1, sample_trace())];
        let audit = Audit::from_traces(&traces);
        let s = &audit.summary;
        assert_eq!(s.requests, 2);
        assert_eq!(s.end_to_end_ms.count, 2);
        assert!((s.end_to_end_ms.p95 - 1700.0).abs() < 1e-9);
        assert_eq!(s.mlp.predicted, 4);
        assert_eq!(s.mlp.hits, 2);
        assert_eq!(s.mlp.misses, 2);
        assert!((s.mlp.precision - 0.5).abs() < 1e-9);
        assert!((s.mlp.recall - 0.5).abs() < 1e-9);
        // b misses at cascade depth 1 in both requests.
        assert_eq!(s.mlp.miss_depth, vec![0, 2]);
        let edge_b = &s.mlp.per_function["b"];
        assert_eq!((edge_b.invoked, edge_b.misses), (2, 2));
        assert_eq!(s.waste.deploys, 2);
        assert_eq!(s.jit.planned, 2);
        assert_eq!(s.jit.late, 2);
        let rendered = audit.render();
        assert!(
            rendered.contains("speculation audit — 2 requests"),
            "{rendered}"
        );
        assert!(
            rendered.contains("misses by cascade depth: d0=0 d1=2"),
            "{rendered}"
        );
    }

    #[test]
    fn latency_stats_use_nearest_rank() {
        let stats = LatencyStats::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(stats.count, 100);
        assert!((stats.p50 - 50.0).abs() < 1e-9);
        assert!((stats.p95 - 95.0).abs() < 1e-9);
        assert!((stats.p99 - 99.0).abs() < 1e-9);
        assert!((stats.max - 100.0).abs() < 1e-9);
        assert_eq!(
            LatencyStats::from_samples(Vec::new()),
            LatencyStats::default()
        );
    }

    #[test]
    fn diff_flags_p95_waste_and_recall_regressions() {
        let base = Audit::from_traces(&[(0, sample_trace())]);
        let thresholds = DiffThresholds::default();
        assert!(diff_audits(&base, &base, &thresholds).is_empty());

        let mut worse = base.clone();
        worse.summary.end_to_end_ms.p95 *= 1.5;
        worse.summary.waste.cpu_ms *= 2.0;
        worse.summary.mlp.recall -= 0.2;
        let regressions = diff_audits(&base, &worse, &thresholds);
        let paths: Vec<&str> = regressions.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "$.summary.end_to_end_ms.p95",
                "$.summary.waste.cpu_ms",
                "$.summary.mlp.recall"
            ]
        );
        assert!(regressions[0].to_string().contains("allowed +10.0%"));

        // Improvements and sub-floor noise never flag.
        let mut better = base.clone();
        better.summary.end_to_end_ms.p95 *= 0.5;
        better.summary.waste.cpu_ms = 0.0;
        assert!(diff_audits(&base, &better, &thresholds).is_empty());
    }

    #[test]
    fn diff_metrics_gates_on_histogram_p95_and_miss_rate() {
        let mut base = MetricsRegistry::new();
        base.incr("requests.triggered", 10);
        base.incr("prediction.misses", 1);
        for _ in 0..20 {
            base.observe_ms("end_to_end_ms", 400.0);
        }
        let mut cand = base.clone();
        assert!(diff_metrics(&base, &cand, &DiffThresholds::default()).is_empty());
        for _ in 0..20 {
            cand.observe_ms("end_to_end_ms", 9_000.0);
        }
        cand.incr("prediction.misses", 4);
        let regressions = diff_metrics(&base, &cand, &DiffThresholds::default());
        assert!(
            regressions
                .iter()
                .any(|r| r.path == "$.histograms.end_to_end_ms.p95"),
            "{regressions:?}"
        );
        assert!(
            regressions
                .iter()
                .any(|r| r.path.contains("prediction.misses")),
            "{regressions:?}"
        );
    }
}
