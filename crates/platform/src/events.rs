//! Typed bus events — the platform's event taxonomy.
//!
//! The paper's prototype publishes worker and request lifecycle signals
//! over Kafka (§4) and derives the whole evaluation from them. Here those
//! signals are a closed, typed vocabulary: every emission on the
//! [`Bus`](crate::bus::Bus) is a [`BusEvent`] variant and every topic is a
//! [`Topic`] constant. Untyped JSON values appear only at the
//! serialization boundary (the [`export`](crate::export) module); nothing
//! inside the dispatch path builds untyped JSON — CI greps for the type's
//! literal name to keep it that way.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The bus topics, one per [`BusEvent`] variant.
///
/// Topics are a closed enum rather than free-form strings so a typo in a
/// subscription is a compile error, and so the bus can answer
/// "does anyone listen?" with a bitmask test instead of a map lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Topic {
    /// A workflow trigger arrived at the Dispatch Manager.
    RequestTriggered,
    /// The speculation engine produced a deployment plan for a request.
    PlanComputed,
    /// The orchestrator invoked a function (its dependencies were met).
    FunctionInvoked,
    /// A sandbox finished provisioning (cold start paid).
    WorkerProvisioned,
    /// A provisioned worker reached the warm pool.
    WorkerReady,
    /// A function invocation began executing on a worker.
    ExecStarted,
    /// A function invocation finished executing.
    ExecEnded,
    /// Control flow took a branch the plan did not predict.
    PredictionMiss,
    /// A worker crashed (fault injection).
    WorkerCrashed,
    /// An invocation exceeded the per-invocation timeout.
    InvokeTimeout,
    /// A crashed or timed-out invocation was rescheduled after backoff.
    InvokeRetried,
    /// A request's last function completed; the run result is final.
    RequestCompleted,
    /// A live SLO window breached its thresholds.
    SloAlert,
    /// A host came up (autoscaled boot or post-failure reboot).
    HostUp,
    /// A host failed, losing all its workers.
    HostDown,
    /// The Dispatch Manager placed a worker on a host.
    WorkerPlaced,
    /// A worker was forcibly evicted (capacity or quota pressure).
    WorkerEvicted,
    /// The speculation policy made a planning decision (trigger or replan).
    PolicyDecision,
    /// The service tier committed a checkpoint segment.
    CheckpointWritten,
    /// The service tier resumed from a checkpoint manifest.
    CheckpointRestored,
    /// A learning sketch evicted counters under capacity pressure.
    SketchEviction,
}

impl Topic {
    /// Every topic, in declaration order.
    pub const ALL: [Topic; 21] = [
        Topic::RequestTriggered,
        Topic::PlanComputed,
        Topic::FunctionInvoked,
        Topic::WorkerProvisioned,
        Topic::WorkerReady,
        Topic::ExecStarted,
        Topic::ExecEnded,
        Topic::PredictionMiss,
        Topic::WorkerCrashed,
        Topic::InvokeTimeout,
        Topic::InvokeRetried,
        Topic::RequestCompleted,
        Topic::SloAlert,
        Topic::HostUp,
        Topic::HostDown,
        Topic::WorkerPlaced,
        Topic::WorkerEvicted,
        Topic::PolicyDecision,
        Topic::CheckpointWritten,
        Topic::CheckpointRestored,
        Topic::SketchEviction,
    ];

    /// The dotted wire name (what the Kafka topic would be called).
    pub const fn name(self) -> &'static str {
        match self {
            Topic::RequestTriggered => "request.triggered",
            Topic::PlanComputed => "plan.computed",
            Topic::FunctionInvoked => "function.invoked",
            Topic::WorkerProvisioned => "worker.provisioned",
            Topic::WorkerReady => "worker.ready",
            Topic::ExecStarted => "exec.started",
            Topic::ExecEnded => "exec.ended",
            Topic::PredictionMiss => "prediction.miss",
            Topic::WorkerCrashed => "worker.crashed",
            Topic::InvokeTimeout => "invoke.timeout",
            Topic::InvokeRetried => "invoke.retried",
            Topic::RequestCompleted => "request.completed",
            Topic::SloAlert => "slo.alert",
            Topic::HostUp => "host.up",
            Topic::HostDown => "host.down",
            Topic::WorkerPlaced => "worker.placed",
            Topic::WorkerEvicted => "worker.evicted",
            Topic::PolicyDecision => "policy.decision",
            Topic::CheckpointWritten => "checkpoint.written",
            Topic::CheckpointRestored => "checkpoint.restored",
            Topic::SketchEviction => "sketch.eviction",
        }
    }

    /// Stable position in [`Topic::ALL`]; used for the bus's subscriber
    /// bitmask.
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed platform lifecycle event.
///
/// Each variant maps to exactly one [`Topic`] (see [`BusEvent::topic`]).
/// All payload fields are plain data — durations pre-converted to
/// milliseconds, ids as integers — so events serialize deterministically
/// and observers never parse JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BusEvent {
    /// A workflow trigger arrived.
    RequestTriggered {
        /// Request id.
        request: u64,
        /// Workflow name.
        workflow: String,
    },
    /// The speculation engine planned a request's deployments.
    PlanComputed {
        /// Request id.
        request: u64,
        /// Workflow name.
        workflow: String,
        /// Number of functions the plan schedules for pre-deployment.
        planned: u64,
    },
    /// The orchestrator invoked a function (its dependencies were met).
    FunctionInvoked {
        /// Request id.
        request: u64,
        /// The invoked function.
        function: String,
        /// Node index of the invoked function in the workflow DAG.
        node: u64,
    },
    /// A sandbox finished provisioning.
    WorkerProvisioned {
        /// Worker id.
        worker: u64,
        /// Request that owns the deployment, or `u64::MAX` for
        /// pool-owned provisions (static pre-warming, replenishment).
        request: u64,
        /// Function the worker hosts.
        function: String,
        /// Sampled cold-start latency in milliseconds.
        cold_start_ms: f64,
        /// Total delay until the sandbox is ready, in milliseconds —
        /// the cold start plus any eviction/capacity stall. The sandbox
        /// is warm at the event time plus this delay.
        ready_in_ms: f64,
        /// `true` when provisioned on demand (a request is waiting),
        /// `false` for speculative pre-deployment.
        on_demand: bool,
    },
    /// A provisioned worker reached the warm pool.
    WorkerReady {
        /// Worker id.
        worker: u64,
    },
    /// An invocation began executing.
    ExecStarted {
        /// Request id.
        request: u64,
        /// Function name.
        function: String,
        /// Worker id serving the invocation.
        worker: u64,
        /// `true` when served from the warm pool (no startup wait).
        warm: bool,
        /// Time spent between invocation and execution start, in
        /// milliseconds (cold-start or provisioning wait).
        queue_wait_ms: f64,
    },
    /// An invocation finished executing.
    ExecEnded {
        /// Request id.
        request: u64,
        /// Function name.
        function: String,
        /// Worker id that served the invocation.
        worker: u64,
        /// Execution duration in milliseconds.
        exec_ms: f64,
    },
    /// Control flow took an unplanned branch.
    PredictionMiss {
        /// Request id.
        request: u64,
        /// Function that was actually invoked.
        function: String,
        /// Node index of the actual branch.
        node: u64,
    },
    /// A worker crashed.
    WorkerCrashed {
        /// Worker id.
        worker: u64,
        /// Function the worker hosted.
        function: String,
    },
    /// An invocation exceeded the timeout.
    InvokeTimeout {
        /// Request id.
        request: u64,
        /// Function name.
        function: String,
        /// Fault attempt count at the time of the timeout.
        attempt: u64,
    },
    /// A faulted invocation was rescheduled after backoff.
    InvokeRetried {
        /// Request id.
        request: u64,
        /// Function name.
        function: String,
        /// Retry attempt number (1 = first retry).
        attempt: u64,
        /// Backoff delay before the retry, in milliseconds.
        backoff_ms: f64,
    },
    /// A request completed.
    RequestCompleted {
        /// Request id.
        request: u64,
        /// Workflow name.
        workflow: String,
        /// Platform-attributable overhead in milliseconds.
        overhead_ms: f64,
        /// End-to-end latency in milliseconds.
        end_to_end_ms: f64,
    },
    /// A live SLO window breached its thresholds (emitted by an attached
    /// [`SloMonitor`](crate::stream::SloMonitor)).
    SloAlert {
        /// Index of the tumbling window that breached.
        window: u64,
        /// JSONPath-style pointer to the violated gate.
        path: String,
        /// Baseline-window value of the gated quantity.
        baseline: f64,
        /// Breaching-window value of the gated quantity.
        candidate: f64,
        /// Human-readable statement of the allowed envelope.
        allowed: String,
    },
    /// A host came up: an autoscaled boot or a post-failure reboot.
    HostUp {
        /// Host id.
        host: u32,
        /// The host's memory capacity, MB.
        memory_mb: u64,
    },
    /// A host failed; its workers crashed and will be re-placed.
    HostDown {
        /// Host id.
        host: u32,
        /// Workers lost with the host.
        workers_lost: u32,
    },
    /// The Dispatch Manager placed a worker on a host.
    WorkerPlaced {
        /// Worker id.
        worker: u64,
        /// Chosen host.
        host: u32,
        /// Request that owns the deployment, or `u64::MAX` for
        /// pool-owned provisions.
        request: u64,
        /// The worker's memory footprint, MB.
        memory_mb: u32,
    },
    /// A worker was forcibly evicted from its host (live-cap, capacity
    /// or quota pressure — not keep-alive reaping).
    WorkerEvicted {
        /// Worker id.
        worker: u64,
        /// Host it was evicted from.
        host: u32,
    },
    /// The speculation policy (DESIGN.md §11) committed a planning
    /// decision for a request, at trigger time or while replanning after
    /// a prediction miss.
    PolicyDecision {
        /// Request id.
        request: u64,
        /// Label of the deciding policy (e.g. `xanadu-jit`, `mpc`, `rl`).
        policy: String,
        /// Nodes in the committed plan.
        planned: u64,
        /// Why the decision was taken: `trigger` or `miss`.
        reason: String,
    },
    /// The service tier committed a checkpoint segment to the append-only
    /// metastore log (learned state + audit + cursor are durable up to
    /// `events`).
    CheckpointWritten {
        /// Checkpoint epoch just completed (0-based).
        epoch: u64,
        /// Sequence number of the segment file written.
        segment: u64,
        /// Documents captured in the segment.
        docs: u64,
        /// Stream events durable after this checkpoint.
        events: u64,
    },
    /// The service tier resumed from an existing checkpoint manifest.
    CheckpointRestored {
        /// Epoch the service resumes into.
        epoch: u64,
        /// Segments replayed from the log.
        segments: u64,
        /// Stream events already accounted for by the checkpoint.
        events: u64,
    },
    /// A learning sketch evicted counters under capacity pressure during
    /// the just-finished epoch (bounded-memory guarantee at work).
    SketchEviction {
        /// Counters displaced this epoch.
        evicted: u64,
        /// Keys tracked after the epoch.
        occupancy: u64,
        /// The sketch's fixed capacity.
        capacity: u64,
    },
}

impl BusEvent {
    /// The topic this event is published on.
    pub const fn topic(&self) -> Topic {
        match self {
            BusEvent::RequestTriggered { .. } => Topic::RequestTriggered,
            BusEvent::PlanComputed { .. } => Topic::PlanComputed,
            BusEvent::FunctionInvoked { .. } => Topic::FunctionInvoked,
            BusEvent::WorkerProvisioned { .. } => Topic::WorkerProvisioned,
            BusEvent::WorkerReady { .. } => Topic::WorkerReady,
            BusEvent::ExecStarted { .. } => Topic::ExecStarted,
            BusEvent::ExecEnded { .. } => Topic::ExecEnded,
            BusEvent::PredictionMiss { .. } => Topic::PredictionMiss,
            BusEvent::WorkerCrashed { .. } => Topic::WorkerCrashed,
            BusEvent::InvokeTimeout { .. } => Topic::InvokeTimeout,
            BusEvent::InvokeRetried { .. } => Topic::InvokeRetried,
            BusEvent::RequestCompleted { .. } => Topic::RequestCompleted,
            BusEvent::SloAlert { .. } => Topic::SloAlert,
            BusEvent::HostUp { .. } => Topic::HostUp,
            BusEvent::HostDown { .. } => Topic::HostDown,
            BusEvent::WorkerPlaced { .. } => Topic::WorkerPlaced,
            BusEvent::WorkerEvicted { .. } => Topic::WorkerEvicted,
            BusEvent::PolicyDecision { .. } => Topic::PolicyDecision,
            BusEvent::CheckpointWritten { .. } => Topic::CheckpointWritten,
            BusEvent::CheckpointRestored { .. } => Topic::CheckpointRestored,
            BusEvent::SketchEviction { .. } => Topic::SketchEviction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_indices_match_all_order() {
        for (i, t) in Topic::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn topic_names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Topic::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate topic name");
        for n in names {
            assert!(n.contains('.'), "topic {n} is not dotted");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Topic::WorkerReady.to_string(), "worker.ready");
    }

    #[test]
    fn every_variant_maps_to_a_distinct_topic() {
        let events = sample_events();
        assert_eq!(events.len(), Topic::ALL.len());
        let mut topics: Vec<Topic> = events.iter().map(|e| e.topic()).collect();
        topics.sort();
        topics.dedup();
        assert_eq!(topics.len(), Topic::ALL.len());
    }

    #[test]
    fn events_roundtrip_through_serde() {
        for event in sample_events() {
            let json = serde_json::to_string(&event).unwrap();
            let back: BusEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event, "roundtrip changed {json}");
        }
    }

    /// One instance of every variant; `every_variant_maps_to_a_distinct_topic`
    /// fails if a new variant is added without extending this list.
    fn sample_events() -> Vec<BusEvent> {
        vec![
            BusEvent::RequestTriggered {
                request: 1,
                workflow: "w".into(),
            },
            BusEvent::PlanComputed {
                request: 1,
                workflow: "w".into(),
                planned: 3,
            },
            BusEvent::FunctionInvoked {
                request: 1,
                function: "f".into(),
                node: 0,
            },
            BusEvent::WorkerProvisioned {
                worker: 7,
                request: 1,
                function: "f".into(),
                cold_start_ms: 812.5,
                ready_in_ms: 812.5,
                on_demand: false,
            },
            BusEvent::WorkerReady { worker: 7 },
            BusEvent::ExecStarted {
                request: 1,
                function: "f".into(),
                worker: 7,
                warm: true,
                queue_wait_ms: 0.0,
            },
            BusEvent::ExecEnded {
                request: 1,
                function: "f".into(),
                worker: 7,
                exec_ms: 150.0,
            },
            BusEvent::PredictionMiss {
                request: 1,
                function: "alt".into(),
                node: 2,
            },
            BusEvent::WorkerCrashed {
                worker: 7,
                function: "f".into(),
            },
            BusEvent::InvokeTimeout {
                request: 1,
                function: "f".into(),
                attempt: 1,
            },
            BusEvent::InvokeRetried {
                request: 1,
                function: "f".into(),
                attempt: 1,
                backoff_ms: 200.0,
            },
            BusEvent::RequestCompleted {
                request: 1,
                workflow: "w".into(),
                overhead_ms: 42.0,
                end_to_end_ms: 1042.0,
            },
            BusEvent::SloAlert {
                window: 3,
                path: "$.windows[3].end_to_end_ms.p95".into(),
                baseline: 400.0,
                candidate: 1300.0,
                allowed: "+225.0% > allowed +10.0%".into(),
            },
            BusEvent::HostUp {
                host: 2,
                memory_mb: 4096,
            },
            BusEvent::HostDown {
                host: 2,
                workers_lost: 3,
            },
            BusEvent::WorkerPlaced {
                worker: 7,
                host: 2,
                request: 1,
                memory_mb: 512,
            },
            BusEvent::WorkerEvicted { worker: 7, host: 2 },
            BusEvent::PolicyDecision {
                request: 1,
                policy: "xanadu-jit".into(),
                planned: 3,
                reason: "trigger".into(),
            },
            BusEvent::CheckpointWritten {
                epoch: 4,
                segment: 4,
                docs: 6,
                events: 5000,
            },
            BusEvent::CheckpointRestored {
                epoch: 5,
                segments: 5,
                events: 5000,
            },
            BusEvent::SketchEviction {
                evicted: 12,
                occupancy: 64,
                capacity: 64,
            },
        ]
    }
}
