//! Internal message bus (the paper's Kafka substitute).
//!
//! Xanadu "uses Apache Kafka for internal communication between the
//! Dispatch Manager and the Dispatch Daemon and also for state management
//! of Xanadu workers" (§4). In this reproduction the platform components
//! live in one process, so the bus is a typed topic-based pub/sub built on
//! `crossbeam` channels: the Dispatch Manager publishes [`BusEvent`]s, and
//! observers (tests, monitoring, the experiment harness) subscribe per
//! [`Topic`]. Payloads are typed end to end — no free-form JSON crosses
//! the bus.

use crate::events::{BusEvent, Topic};
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xanadu_simcore::SimTime;

/// A message published on the bus: a typed event stamped with the
/// simulation time of emission. The topic is implied by the event
/// ([`BusMessage::topic`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusMessage {
    /// Simulation time of the event.
    pub at: SimTime,
    /// The typed event payload.
    pub event: BusEvent,
}

impl BusMessage {
    /// The topic this message was published on.
    pub fn topic(&self) -> Topic {
        self.event.topic()
    }
}

/// A subscription handle: drain messages with
/// [`try_next`](Subscription::try_next) or [`drain`](Subscription::drain).
#[derive(Debug)]
pub struct Subscription {
    rx: Receiver<BusMessage>,
}

impl Subscription {
    /// Next pending message, or `None` when the queue is currently empty.
    pub fn try_next(&self) -> Option<BusMessage> {
        self.rx.try_recv().ok()
    }

    /// Drains all pending messages.
    pub fn drain(&self) -> Vec<BusMessage> {
        std::iter::from_fn(|| self.try_next()).collect()
    }
}

/// Topic-based publish/subscribe bus over typed [`BusEvent`]s.
///
/// # Example
///
/// ```
/// use xanadu_platform::bus::Bus;
/// use xanadu_platform::events::{BusEvent, Topic};
/// use xanadu_simcore::SimTime;
///
/// let mut bus = Bus::new();
/// let sub = bus.subscribe(Topic::WorkerReady);
/// bus.publish(SimTime::ZERO, BusEvent::WorkerReady { worker: 7 });
/// let msgs = sub.drain();
/// assert_eq!(msgs.len(), 1);
/// assert_eq!(msgs[0].event, BusEvent::WorkerReady { worker: 7 });
/// ```
#[derive(Debug, Default)]
pub struct Bus {
    topics: HashMap<Topic, Vec<Sender<BusMessage>>>,
    /// Bit `Topic::index()` is set while the topic may have live
    /// subscribers; cleared when the last one is pruned. Lets the
    /// dispatch hot path skip event construction with a single AND.
    live: u32,
    published: u64,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Subscribes to `topic`; messages published after this call are
    /// delivered to the returned handle.
    pub fn subscribe(&mut self, topic: Topic) -> Subscription {
        let (tx, rx) = unbounded();
        self.topics.entry(topic).or_default().push(tx);
        self.live |= 1 << topic.index();
        Subscription { rx }
    }

    /// `true` while `topic` may have live subscribers. Conservative: a
    /// dropped subscriber is only noticed (and the bit cleared) on the
    /// next publish to its topic.
    pub fn has_subscribers(&self, topic: Topic) -> bool {
        self.live & (1 << topic.index()) != 0
    }

    /// Publishes an event to every current subscriber of its topic.
    /// Events on topics without subscribers are dropped (fire-and-forget,
    /// like an unconsumed Kafka topic).
    pub fn publish(&mut self, at: SimTime, event: BusEvent) {
        self.published += 1;
        let topic = event.topic();
        if let Some(subs) = self.topics.get_mut(&topic) {
            let msg = BusMessage { at, event };
            // Drop senders whose receiver is gone.
            subs.retain(|tx| tx.send(msg.clone()).is_ok());
            if subs.is_empty() {
                self.live &= !(1 << topic.index());
            }
        }
    }

    /// Total messages published (including unconsumed ones).
    pub fn published_count(&self) -> u64 {
        self.published
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(worker: u64) -> BusEvent {
        BusEvent::WorkerReady { worker }
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let mut bus = Bus::new();
        let a = bus.subscribe(Topic::WorkerReady);
        let b = bus.subscribe(Topic::WorkerReady);
        bus.publish(SimTime::ZERO, ready(1));
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
    }

    #[test]
    fn topics_are_isolated() {
        let mut bus = Bus::new();
        let a = bus.subscribe(Topic::WorkerCrashed);
        bus.publish(SimTime::ZERO, ready(1));
        assert!(a.try_next().is_none());
    }

    #[test]
    fn unsubscribed_topics_drop_messages() {
        let mut bus = Bus::new();
        bus.publish(SimTime::ZERO, ready(1));
        assert_eq!(bus.published_count(), 1);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let mut bus = Bus::new();
        let sub = bus.subscribe(Topic::WorkerReady);
        drop(sub);
        assert!(bus.has_subscribers(Topic::WorkerReady)); // not yet noticed
        bus.publish(SimTime::ZERO, ready(1));
        assert!(!bus.has_subscribers(Topic::WorkerReady)); // pruned
        bus.publish(SimTime::ZERO, ready(2)); // second publish after prune
        assert_eq!(bus.published_count(), 2);
    }

    #[test]
    fn messages_carry_time_and_event() {
        let mut bus = Bus::new();
        let sub = bus.subscribe(Topic::WorkerReady);
        bus.publish(SimTime::from_secs(5), ready(9));
        let m = sub.try_next().unwrap();
        assert_eq!(m.at, SimTime::from_secs(5));
        assert_eq!(m.topic(), Topic::WorkerReady);
        assert_eq!(m.event, ready(9));
    }

    #[test]
    fn drain_preserves_order() {
        let mut bus = Bus::new();
        let sub = bus.subscribe(Topic::WorkerReady);
        for i in 0..5 {
            bus.publish(SimTime::ZERO, ready(i));
        }
        let workers: Vec<u64> = sub
            .drain()
            .into_iter()
            .map(|m| match m.event {
                BusEvent::WorkerReady { worker } => worker,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(workers, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn has_subscribers_tracks_topics_independently() {
        let mut bus = Bus::new();
        assert!(!bus.has_subscribers(Topic::ExecStarted));
        let _sub = bus.subscribe(Topic::ExecStarted);
        assert!(bus.has_subscribers(Topic::ExecStarted));
        assert!(!bus.has_subscribers(Topic::ExecEnded));
    }
}
