//! Internal message bus (the paper's Kafka substitute).
//!
//! Xanadu "uses Apache Kafka for internal communication between the
//! Dispatch Manager and the Dispatch Daemon and also for state management
//! of Xanadu workers" (§4). In this reproduction the platform components
//! live in one process, so the bus is a typed topic-based pub/sub built on
//! `crossbeam` channels: the Dispatch Manager publishes worker and request
//! lifecycle messages, and observers (tests, monitoring, the experiment
//! harness) subscribe per topic.

use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xanadu_simcore::SimTime;

/// A message published on the bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusMessage {
    /// Topic the message was published to.
    pub topic: String,
    /// Simulation time of the event.
    pub at: SimTime,
    /// JSON payload.
    pub payload: serde_json::Value,
}

/// A subscription handle: drain messages with
/// [`try_next`](Subscription::try_next) or [`drain`](Subscription::drain).
#[derive(Debug)]
pub struct Subscription {
    rx: Receiver<BusMessage>,
}

impl Subscription {
    /// Next pending message, or `None` when the queue is currently empty.
    pub fn try_next(&self) -> Option<BusMessage> {
        self.rx.try_recv().ok()
    }

    /// Drains all pending messages.
    pub fn drain(&self) -> Vec<BusMessage> {
        std::iter::from_fn(|| self.try_next()).collect()
    }
}

/// Topic-based publish/subscribe bus.
///
/// # Example
///
/// ```
/// use xanadu_platform::bus::Bus;
/// use xanadu_simcore::SimTime;
///
/// let mut bus = Bus::new();
/// let sub = bus.subscribe("worker.ready");
/// bus.publish("worker.ready", SimTime::ZERO, serde_json::json!({"worker": 7}));
/// let msgs = sub.drain();
/// assert_eq!(msgs.len(), 1);
/// assert_eq!(msgs[0].payload["worker"], 7);
/// ```
#[derive(Debug, Default)]
pub struct Bus {
    topics: HashMap<String, Vec<Sender<BusMessage>>>,
    published: u64,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Subscribes to `topic`; messages published after this call are
    /// delivered to the returned handle.
    pub fn subscribe(&mut self, topic: &str) -> Subscription {
        let (tx, rx) = unbounded();
        self.topics.entry(topic.to_string()).or_default().push(tx);
        Subscription { rx }
    }

    /// Publishes a message to every current subscriber of `topic`.
    /// Messages to topics without subscribers are dropped (fire-and-forget,
    /// like an unconsumed Kafka topic).
    pub fn publish(&mut self, topic: &str, at: SimTime, payload: serde_json::Value) {
        self.published += 1;
        if let Some(subs) = self.topics.get_mut(topic) {
            let msg = BusMessage {
                topic: topic.to_string(),
                at,
                payload,
            };
            // Drop senders whose receiver is gone.
            subs.retain(|tx| tx.send(msg.clone()).is_ok());
        }
    }

    /// Total messages published (including unconsumed ones).
    pub fn published_count(&self) -> u64 {
        self.published
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let mut bus = Bus::new();
        let a = bus.subscribe("t");
        let b = bus.subscribe("t");
        bus.publish("t", SimTime::ZERO, json!({"x": 1}));
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
    }

    #[test]
    fn topics_are_isolated() {
        let mut bus = Bus::new();
        let a = bus.subscribe("a");
        bus.publish("b", SimTime::ZERO, json!(null));
        assert!(a.try_next().is_none());
    }

    #[test]
    fn unsubscribed_topics_drop_messages() {
        let mut bus = Bus::new();
        bus.publish("nobody", SimTime::ZERO, json!(1));
        assert_eq!(bus.published_count(), 1);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let mut bus = Bus::new();
        let sub = bus.subscribe("t");
        drop(sub);
        bus.publish("t", SimTime::ZERO, json!(1));
        bus.publish("t", SimTime::ZERO, json!(2)); // second publish after prune
        assert_eq!(bus.published_count(), 2);
    }

    #[test]
    fn messages_carry_time_and_payload() {
        let mut bus = Bus::new();
        let sub = bus.subscribe("t");
        bus.publish("t", SimTime::from_secs(5), json!({"k": "v"}));
        let m = sub.try_next().unwrap();
        assert_eq!(m.at, SimTime::from_secs(5));
        assert_eq!(m.topic, "t");
        assert_eq!(m.payload["k"], "v");
    }

    #[test]
    fn drain_preserves_order() {
        let mut bus = Bus::new();
        let sub = bus.subscribe("t");
        for i in 0..5 {
            bus.publish("t", SimTime::ZERO, json!(i));
        }
        let payloads: Vec<i64> = sub
            .drain()
            .into_iter()
            .map(|m| m.payload.as_i64().unwrap())
            .collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }
}
