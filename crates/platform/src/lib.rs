//! # xanadu-platform
//!
//! The Xanadu FaaS platform (§4 of the paper): the Dispatch Manager
//! orchestration layer executing function workflows over the sandbox
//! substrate, with the speculative / just-in-time provisioning of
//! `xanadu-core` wired in.
//!
//! The architecture mirrors Figure 11 of the paper:
//!
//! * [`Platform`] — the Dispatch Manager: reverse proxy (request routing),
//!   function resource allocator (worker acquisition), speculation engine,
//!   metrics engine and branch detector, all driven by a deterministic
//!   discrete-event loop.
//! * [`PlatformConfig`] — execution mode (cold / speculative / JIT),
//!   aggressiveness, keep-alive and pool policy, plus the platform-shape
//!   knobs that the baseline emulations (`xanadu-baselines`) override.
//! * [`bus`] — the internal topic-based message bus (the paper's Kafka
//!   substitute) carrying worker/request lifecycle messages.
//! * [`metastore`] — the revisioned JSON document store (the paper's
//!   CouchDB substitute) persisting metrics and branch metadata.
//!
//! # Quickstart
//!
//! ```
//! use xanadu_chain::{linear_chain, FunctionSpec};
//! use xanadu_core::speculation::ExecutionMode;
//! use xanadu_platform::{Platform, PlatformConfig};
//! use xanadu_simcore::SimTime;
//!
//! let dag = linear_chain("chain", 3, &FunctionSpec::new("f").service_ms(500.0))?;
//! let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 42));
//! p.deploy(dag)?;
//! p.trigger_at("chain", SimTime::ZERO);
//! p.run_until_idle();
//! let report = p.finish();
//! assert_eq!(report.results.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bus;
mod config;
mod estimates;
pub mod events;
pub mod export;
pub mod faults;
pub mod hosts;
pub mod metastore;
pub mod obs;
mod result;
pub mod shard;
mod sim;
pub mod stream;
pub mod timeline;

pub use analysis::{
    diff_audits, diff_metrics, Audit, AuditSummary, DiffThresholds, EdgeStats, JitSample, JitStats,
    LatencyStats, MlpStats, Regression, RequestAudit, WasteStats,
};
pub use config::{ClusterConfig, ConfigError, PlatformConfig, PlatformConfigBuilder};
pub use events::{BusEvent, Topic};
pub use faults::{FaultConfig, FaultPlan};
pub use hosts::{
    AutoscaleConfig, ClusterReport, HostId, HostRegistry, HostReport, HostSpec, PlacementError,
    PlacementPolicy, PlacementRequest, TenantConfig, TenantReport,
};
pub use metastore::{LogError, Manifest, MetaStore, SegmentLog, SegmentRef};
pub use obs::{Histogram, MetricsRegistry, Observer, ObserverHandle};
pub use result::{PlatformReport, RunResult};
pub use shard::{
    replay_sharded, replay_sharded_with, KernelProfile, ShardOptions, ShardProfile, ShardTelemetry,
    ShardWorkload, ShardedRun,
};
pub use sim::{report_total_costs, LearnedState, Platform, PlatformError};
pub use stream::{
    AuditCheckpoint, ClusterActivity, SloAlert, SloCheckpoint, SloConfig, SloMonitor, SloReport,
    StreamingAudit, StreamingConfig, StreamingSummary,
};
