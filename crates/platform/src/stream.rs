//! Streaming telemetry: bounded-memory audits and live SLO gates.
//!
//! The batch audit tier ([`analysis`](crate::analysis)) derives its
//! numbers from full per-request [`Trace`]s, which is exact but cannot
//! survive fleet-scale replays — a 1M-invocation run would retain a
//! million timelines. This module recomputes the same accounting *online*
//! from the typed [`BusEvent`] stream via the [`Observer`] trait:
//!
//! - [`StreamingAudit`] keeps O(1) state per in-flight request plus O(1)
//!   state per function — fixed-bucket [`Histogram`]s of end-to-end
//!   latency and critical-path components, per-edge MLP hit/miss
//!   counters, wasted-deploy CPU accumulators, and a deterministic
//!   reservoir of the K worst requests (kept as reconstructed traces, so
//!   exemplar [`SpanTree`]s survive without retaining everything else).
//! - [`SloMonitor`] folds completed requests into tumbling windows and
//!   evaluates [`DiffThresholds`] against the first non-empty window; in
//!   live mode every breach becomes a typed
//!   [`BusEvent::SloAlert`](crate::events::BusEvent::SloAlert).
//!
//! Agreement with the exact audit is by construction: the per-request
//! tracker replays the *identical* interval-partition algorithm
//! (`RequestAudit::from_trace`), fed by bus events instead of trace
//! events, so every count, component total and MLP/JIT/waste statistic
//! matches exactly (totals up to float rounding of the accumulation
//! order). Only the latency *quantiles* are approximate: they are
//! bucket-interpolated from [`LATENCY_BUCKET_BOUNDS_MS`]-shaped
//! histograms, so a streaming quantile is guaranteed to land in (or
//! adjacent to, on bucket-boundary ties) the fixed bucket containing the
//! exact order statistic.
//!
//! Everything here merges canonically: per-shard state is a deterministic
//! function of the shard's event stream, and the sharded replay driver
//! merges shard states in canonical (workflow-name) shard order, so
//! exports are byte-identical at any `--shards`/`--jobs` width.

use crate::analysis::{
    drop_regression, pct_regression, DiffThresholds, JitSample, MlpStats, WasteStats, ABS_FLOOR_MS,
};
use crate::events::BusEvent;
use crate::obs::{Histogram, Observer, LATENCY_BUCKET_BOUNDS_MS};
use crate::timeline::{SpanTree, Trace, TraceEventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xanadu_simcore::{SimDuration, SimTime};

// ---------------------------------------------------------------------
// Per-request tracker (shared by StreamingAudit and SloMonitor)
// ---------------------------------------------------------------------

/// One deployment attributed to an in-flight request.
#[derive(Debug, Clone)]
struct DeployRec {
    function: String,
    start_us: u64,
    ready_us: u64,
    on_demand: bool,
    used: bool,
}

/// Bookkeeping for one in-flight request. Dropped (and folded into the
/// aggregates) the moment its `RequestCompleted` event arrives, so live
/// memory is bounded by in-flight concurrency, not by run length.
#[derive(Debug, Clone, Default)]
struct PendingRequest {
    t0_us: u64,
    deploys: Vec<DeployRec>,
    open_waits: Vec<(String, u64)>,
    open_execs: Vec<(String, u64)>,
    exec_iv: Vec<(u64, u64)>,
    cold_iv: Vec<(u64, u64)>,
    warm_iv: Vec<(u64, u64)>,
    predicted: Vec<String>,
    invoked: Vec<String>,
    invoke_at: Vec<(String, u64)>,
    missed: Vec<String>,
    /// Reconstructed timeline, recorded only when the tracker keeps
    /// traces (exemplar reservoir enabled).
    trace: Trace,
}

/// The finished accounting of one request — the streaming equivalent of
/// `RequestAudit`, produced the instant the request completes.
#[derive(Debug, Clone)]
pub(crate) struct RequestDigest {
    request: u64,
    completed_us: u64,
    end_to_end_us: u64,
    exec_us: u64,
    cold_us: u64,
    queue_us: u64,
    stall_us: u64,
    predicted: Vec<String>,
    invoked: Vec<String>,
    missed: Vec<String>,
    unused_deploys: u64,
    wasted_us: u64,
    jit: Vec<JitSample>,
    trace: Option<Trace>,
}

/// Converts an event-time ready-delay (milliseconds, produced from
/// integer microseconds by the platform) back to integer microseconds.
fn ms_to_us(ms: f64) -> u64 {
    (ms * 1000.0).round().max(0.0) as u64
}

/// Streams [`BusEvent`]s into per-request digests using the same
/// interval-partition algorithm as the exact audit.
#[derive(Debug, Clone, Default)]
struct RequestTracker {
    pending: BTreeMap<u64, PendingRequest>,
    keep_traces: bool,
}

impl RequestTracker {
    fn new(keep_traces: bool) -> Self {
        RequestTracker {
            pending: BTreeMap::new(),
            keep_traces,
        }
    }

    fn on_event(&mut self, at: SimTime, event: &BusEvent) -> Option<RequestDigest> {
        let at_us = at.as_micros();
        match event {
            BusEvent::RequestTriggered { request, .. } => {
                let mut p = PendingRequest {
                    t0_us: at_us,
                    ..PendingRequest::default()
                };
                if self.keep_traces {
                    p.trace.record(at, TraceEventKind::Triggered);
                }
                self.pending.insert(*request, p);
                None
            }
            BusEvent::PlanComputed {
                request, planned, ..
            } => {
                if self.keep_traces {
                    if let Some(p) = self.pending.get_mut(request) {
                        p.trace
                            .record(at, TraceEventKind::PlanComputed { planned: *planned });
                    }
                }
                None
            }
            BusEvent::FunctionInvoked {
                request, function, ..
            } => {
                let p = self.pending.get_mut(request)?;
                if !p.invoked.contains(function) {
                    p.invoked.push(function.clone());
                    p.invoke_at.push((function.clone(), at_us));
                }
                p.open_waits.push((function.clone(), at_us));
                if self.keep_traces {
                    p.trace.record(
                        at,
                        TraceEventKind::Invoked {
                            function: function.clone(),
                        },
                    );
                }
                None
            }
            BusEvent::WorkerProvisioned {
                request,
                function,
                ready_in_ms,
                on_demand,
                ..
            } => {
                // Pool-owned provisions (request == u64::MAX) have no
                // pending entry and are skipped, exactly as they have no
                // trace in the batch tier.
                let p = self.pending.get_mut(request)?;
                if !*on_demand && !p.predicted.contains(function) {
                    p.predicted.push(function.clone());
                }
                let ready_us = at_us + ms_to_us(*ready_in_ms);
                p.deploys.push(DeployRec {
                    function: function.clone(),
                    start_us: at_us,
                    ready_us,
                    on_demand: *on_demand,
                    used: false,
                });
                if self.keep_traces {
                    p.trace.record(
                        at,
                        TraceEventKind::DeployStarted {
                            function: function.clone(),
                            on_demand: *on_demand,
                            ready_at: SimTime::from_micros(ready_us),
                        },
                    );
                }
                None
            }
            BusEvent::ExecStarted {
                request,
                function,
                warm,
                ..
            } => {
                let p = self.pending.get_mut(request)?;
                if let Some(d) = p
                    .deploys
                    .iter_mut()
                    .find(|d| d.function == *function && !d.used)
                {
                    d.used = true;
                }
                if let Some(i) = p.open_waits.iter().position(|(f, _)| f == function) {
                    let (_, start) = p.open_waits.remove(i);
                    if *warm {
                        p.warm_iv.push((start, at_us));
                    } else {
                        p.cold_iv.push((start, at_us));
                    }
                }
                p.open_execs.push((function.clone(), at_us));
                if self.keep_traces {
                    p.trace.record(
                        at,
                        TraceEventKind::ExecStarted {
                            function: function.clone(),
                            warm: *warm,
                        },
                    );
                }
                None
            }
            BusEvent::ExecEnded {
                request, function, ..
            } => {
                let p = self.pending.get_mut(request)?;
                if let Some(i) = p.open_execs.iter().position(|(f, _)| f == function) {
                    let (_, start) = p.open_execs.remove(i);
                    p.exec_iv.push((start, at_us));
                }
                if self.keep_traces {
                    p.trace.record(
                        at,
                        TraceEventKind::ExecEnded {
                            function: function.clone(),
                        },
                    );
                }
                None
            }
            BusEvent::InvokeTimeout {
                request,
                function,
                attempt,
            } => {
                let p = self.pending.get_mut(request)?;
                if let Some(i) = p.open_execs.iter().position(|(f, _)| f == function) {
                    let (_, start) = p.open_execs.remove(i);
                    p.exec_iv.push((start, at_us));
                }
                if self.keep_traces {
                    p.trace.record(
                        at,
                        TraceEventKind::TimedOut {
                            function: function.clone(),
                            attempt: *attempt,
                        },
                    );
                }
                None
            }
            BusEvent::PredictionMiss {
                request, function, ..
            } => {
                let p = self.pending.get_mut(request)?;
                if !p.missed.contains(function) {
                    p.missed.push(function.clone());
                }
                if self.keep_traces {
                    p.trace.record(
                        at,
                        TraceEventKind::PredictionMiss {
                            function: function.clone(),
                        },
                    );
                }
                None
            }
            BusEvent::InvokeRetried {
                request,
                function,
                attempt,
                ..
            } => {
                if self.keep_traces {
                    if let Some(p) = self.pending.get_mut(request) {
                        p.trace.record(
                            at,
                            TraceEventKind::Retried {
                                function: function.clone(),
                                attempt: *attempt,
                            },
                        );
                    }
                }
                None
            }
            BusEvent::RequestCompleted { request, .. } => {
                let mut p = self.pending.remove(request)?;
                if self.keep_traces {
                    p.trace.record(at, TraceEventKind::Completed);
                }
                Some(finalize_request(*request, p, at_us, self.keep_traces))
            }
            BusEvent::WorkerReady { .. }
            | BusEvent::WorkerCrashed { .. }
            | BusEvent::SloAlert { .. }
            | BusEvent::HostUp { .. }
            | BusEvent::HostDown { .. }
            | BusEvent::WorkerPlaced { .. }
            | BusEvent::WorkerEvicted { .. }
            | BusEvent::PolicyDecision { .. }
            | BusEvent::CheckpointWritten { .. }
            | BusEvent::CheckpointRestored { .. }
            | BusEvent::SketchEviction { .. } => None,
        }
    }
}

/// Closes the request's open intervals at `tn` and partitions `[t0, tn]`
/// into exec / cold / warm / stall — the same dominance order and
/// cut-point construction as `RequestAudit::from_trace`, so the span-sum
/// invariant holds in integer microseconds here too.
fn finalize_request(request: u64, p: PendingRequest, tn: u64, keep_trace: bool) -> RequestDigest {
    let PendingRequest {
        t0_us,
        deploys,
        open_waits,
        open_execs,
        mut exec_iv,
        mut cold_iv,
        warm_iv,
        predicted,
        invoked,
        invoke_at,
        missed,
        trace,
    } = p;
    exec_iv.extend(open_execs.into_iter().map(|(_, s)| (s, tn)));
    cold_iv.extend(open_waits.into_iter().map(|(_, s)| (s, tn)));

    let mut cuts: Vec<u64> = vec![t0_us, tn];
    for &(s, e) in exec_iv.iter().chain(&cold_iv).chain(&warm_iv) {
        cuts.push(s.clamp(t0_us, tn));
        cuts.push(e.clamp(t0_us, tn));
    }
    cuts.sort_unstable();
    cuts.dedup();
    let covers = |iv: &[(u64, u64)], a: u64, b: u64| iv.iter().any(|&(s, e)| s <= a && e >= b);
    let (mut exec_us, mut cold_us, mut queue_us, mut stall_us) = (0u64, 0u64, 0u64, 0u64);
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let len = b - a;
        if covers(&exec_iv, a, b) {
            exec_us += len;
        } else if covers(&cold_iv, a, b) {
            cold_us += len;
        } else if covers(&warm_iv, a, b) {
            queue_us += len;
        } else {
            stall_us += len;
        }
    }

    let mut unused_deploys = 0u64;
    let mut wasted_us = 0u64;
    for d in deploys.iter().filter(|d| !d.used && !d.on_demand) {
        unused_deploys += 1;
        wasted_us += tn - d.start_us;
    }

    let mut jit = Vec::new();
    for (function, inv_us) in &invoke_at {
        if let Some(d) = deploys.iter().find(|d| d.function == *function) {
            jit.push(JitSample {
                function: function.clone(),
                on_demand: d.on_demand,
                lateness_ms: (d.ready_us as f64 - *inv_us as f64) / 1000.0,
            });
        }
    }

    RequestDigest {
        request,
        completed_us: tn,
        end_to_end_us: tn - t0_us,
        exec_us,
        cold_us,
        queue_us,
        stall_us,
        predicted,
        invoked,
        missed,
        unused_deploys,
        wasted_us,
        jit,
        trace: keep_trace.then_some(trace),
    }
}

// ---------------------------------------------------------------------
// StreamingAudit
// ---------------------------------------------------------------------

/// Configuration of a [`StreamingAudit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Size of the worst-request exemplar reservoir (0 disables trace
    /// reconstruction entirely).
    pub exemplars: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig { exemplars: 4 }
    }
}

/// One entry of the worst-request reservoir: the reconstructed timeline
/// of a completed request, kept so its [`SpanTree`] can be exported.
/// Serializable so the service tier can checkpoint the reservoir.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Request id (global after a sharded merge).
    pub request: u64,
    /// End-to-end latency, integer microseconds — the reservoir's sort
    /// key (descending, ties broken by ascending request id).
    pub end_to_end_us: u64,
    trace: Trace,
}

impl Exemplar {
    /// The span decomposition of the exemplar's reconstructed timeline.
    pub fn span_tree(&self) -> Option<SpanTree> {
        SpanTree::from_trace(self.request, &self.trace)
    }
}

/// JIT timing aggregates with streaming (histogram) distributions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamingJitStats {
    /// Planned (non-on-demand) deployments that served an invocation.
    pub planned: u64,
    /// Of those, sandboxes ready after their invocation.
    pub late: u64,
    /// Sandboxes ready at or before their invocation.
    pub on_time: u64,
    /// Distribution of positive lateness (ms), late deployments only.
    pub late_ms: Histogram,
    /// Distribution of pre-warm slack (ms), on-time deployments only.
    pub slack_ms: Histogram,
}

/// Cluster-scheduling activity observed on the event stream: host churn
/// and placement/eviction traffic. All counters stay zero on a default
/// single-testbed run (the platform gates Host*/Placed/Evicted emission
/// on an explicit cluster), so the summary serializes unchanged there.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterActivity {
    /// Host activations (autoscaled boots and post-failure reboots).
    pub hosts_up: u64,
    /// Injected host failures.
    pub hosts_down: u64,
    /// Workers lost to host failures.
    pub workers_lost: u64,
    /// Successful worker placements.
    pub placed: u64,
    /// Forced evictions (capacity/quota/warm-cap pressure).
    pub evicted: u64,
}

impl ClusterActivity {
    /// Whether no cluster activity was observed (serialization gate).
    pub fn is_empty(&self) -> bool {
        *self == ClusterActivity::default()
    }

    fn merge_from(&mut self, other: &ClusterActivity) {
        self.hosts_up += other.hosts_up;
        self.hosts_down += other.hosts_down;
        self.workers_lost += other.workers_lost;
        self.placed += other.placed;
        self.evicted += other.evicted;
    }
}

/// The run-level aggregates a [`StreamingAudit`] maintains — the
/// bounded-memory analogue of `AuditSummary`.
///
/// Counts (`requests`, `mlp`, `waste.deploys`, `jit.planned/late/on_time`)
/// and integer-microsecond component totals agree with the exact audit
/// exactly; `waste.cpu_ms` and histogram means agree up to float rounding
/// of the accumulation order; quantiles are bucket-interpolated and agree
/// within one [`LATENCY_BUCKET_BOUNDS_MS`] bucket.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamingSummary {
    /// Completed requests folded in.
    pub requests: u64,
    /// End-to-end latency distribution.
    pub end_to_end: Histogram,
    /// Per-request exec-time distribution.
    pub exec: Histogram,
    /// Per-request cold-start-wait distribution.
    pub cold_start_wait: Histogram,
    /// Per-request warm-queueing distribution.
    pub queue_wait: Histogram,
    /// Per-request stall distribution.
    pub stall: Histogram,
    /// Total milliseconds attributed to execution.
    pub exec_ms: f64,
    /// Total milliseconds attributed to cold-start waits.
    pub cold_start_wait_ms: f64,
    /// Total milliseconds attributed to warm-dispatch queueing.
    pub queue_wait_ms: f64,
    /// Total milliseconds attributed to stalls.
    pub stall_ms: f64,
    /// MLP prediction quality (exact).
    pub mlp: MlpStats,
    /// Wasted-deploy accounting (exact).
    pub waste: WasteStats,
    /// JIT timing quality with streaming distributions.
    pub jit: StreamingJitStats,
    /// Cluster scheduling activity (host churn, placements, evictions).
    /// Omitted from serialization when all-zero, so summaries from
    /// single-testbed runs keep their pre-cluster shape.
    #[serde(default, skip_serializing_if = "ClusterActivity::is_empty")]
    pub cluster: ClusterActivity,
}

/// Bounded-memory audit over the live event stream.
///
/// Attach with `Platform::attach_observer(StreamingAudit::new(cfg))`; per
/// logical shard the state is a deterministic function of the shard's
/// event stream, and [`merge_from`](StreamingAudit::merge_from) folds
/// shard states in canonical order.
#[derive(Debug, Clone)]
pub struct StreamingAudit {
    tracker: RequestTracker,
    config: StreamingConfig,
    requests: u64,
    end_to_end: Histogram,
    exec: Histogram,
    cold_start_wait: Histogram,
    queue_wait: Histogram,
    stall: Histogram,
    exec_us: u64,
    cold_us: u64,
    queue_us: u64,
    stall_us: u64,
    mlp: MlpStats,
    waste_deploys: u64,
    wasted_us: u64,
    jit_planned: u64,
    jit_late: u64,
    jit_on_time: u64,
    late_ms: Histogram,
    slack_ms: Histogram,
    cluster: ClusterActivity,
    exemplars: Vec<Exemplar>,
}

impl Default for StreamingAudit {
    fn default() -> Self {
        StreamingAudit::new(StreamingConfig::default())
    }
}

impl StreamingAudit {
    /// An empty audit with the given configuration.
    pub fn new(config: StreamingConfig) -> Self {
        StreamingAudit {
            tracker: RequestTracker::new(config.exemplars > 0),
            config,
            requests: 0,
            end_to_end: Histogram::latency(),
            exec: Histogram::latency(),
            cold_start_wait: Histogram::latency(),
            queue_wait: Histogram::latency(),
            stall: Histogram::latency(),
            exec_us: 0,
            cold_us: 0,
            queue_us: 0,
            stall_us: 0,
            mlp: MlpStats::default(),
            waste_deploys: 0,
            wasted_us: 0,
            jit_planned: 0,
            jit_late: 0,
            jit_on_time: 0,
            late_ms: Histogram::latency(),
            slack_ms: Histogram::latency(),
            cluster: ClusterActivity::default(),
            exemplars: Vec::new(),
        }
    }

    /// The configured exemplar-reservoir size.
    pub fn config(&self) -> StreamingConfig {
        self.config
    }

    /// Requests currently in flight (bounded by concurrency; 0 once the
    /// platform has drained).
    pub fn in_flight(&self) -> usize {
        self.tracker.pending.len()
    }

    fn fold(&mut self, digest: RequestDigest) {
        self.requests += 1;
        self.end_to_end
            .observe(digest.end_to_end_us as f64 / 1000.0);
        self.exec.observe(digest.exec_us as f64 / 1000.0);
        self.cold_start_wait.observe(digest.cold_us as f64 / 1000.0);
        self.queue_wait.observe(digest.queue_us as f64 / 1000.0);
        self.stall.observe(digest.stall_us as f64 / 1000.0);
        self.exec_us += digest.exec_us;
        self.cold_us += digest.cold_us;
        self.queue_us += digest.queue_us;
        self.stall_us += digest.stall_us;

        for f in &digest.predicted {
            let edge = self.mlp.per_function.entry(f.clone()).or_default();
            edge.predicted += 1;
            self.mlp.predicted += 1;
            if digest.invoked.contains(f) {
                edge.hits += 1;
                self.mlp.hits += 1;
            }
        }
        for (depth, f) in digest.invoked.iter().enumerate() {
            let edge = self.mlp.per_function.entry(f.clone()).or_default();
            edge.invoked += 1;
            self.mlp.invoked += 1;
            if digest.missed.contains(f) {
                edge.misses += 1;
                self.mlp.misses += 1;
                if self.mlp.miss_depth.len() <= depth {
                    self.mlp.miss_depth.resize(depth + 1, 0);
                }
                self.mlp.miss_depth[depth] += 1;
            }
        }

        self.waste_deploys += digest.unused_deploys;
        self.wasted_us += digest.wasted_us;

        for s in digest.jit.iter().filter(|s| !s.on_demand) {
            self.jit_planned += 1;
            if s.lateness_ms > 0.0 {
                self.jit_late += 1;
                self.late_ms.observe(s.lateness_ms);
            } else {
                self.jit_on_time += 1;
                self.slack_ms.observe(-s.lateness_ms);
            }
        }

        if self.config.exemplars > 0 {
            if let Some(trace) = digest.trace {
                self.exemplars.push(Exemplar {
                    request: digest.request,
                    end_to_end_us: digest.end_to_end_us,
                    trace,
                });
                self.sort_exemplars();
            }
        }
    }

    fn sort_exemplars(&mut self) {
        self.exemplars.sort_unstable_by(|a, b| {
            b.end_to_end_us
                .cmp(&a.end_to_end_us)
                .then(a.request.cmp(&b.request))
        });
        self.exemplars.truncate(self.config.exemplars);
    }

    /// The worst-request reservoir, worst first.
    pub fn exemplars(&self) -> &[Exemplar] {
        &self.exemplars
    }

    /// Rewrites exemplar request ids (the sharded merge maps shard-local
    /// ids to global trigger-order ids), then restores the canonical
    /// reservoir order.
    pub(crate) fn remap_exemplar_requests(&mut self, mut map: impl FnMut(u64) -> u64) {
        for e in &mut self.exemplars {
            e.request = map(e.request);
        }
        self.sort_exemplars();
    }

    /// Shifts every exemplar's request id up by `base`. The service tier
    /// runs each checkpoint epoch on a fresh platform whose trigger ids
    /// restart at 0; offsetting by the global request count restores
    /// stream-wide ids before epochs are merged.
    pub fn offset_requests(&mut self, base: u64) {
        self.remap_exemplar_requests(|r| r + base);
    }

    /// Folds another audit's aggregates into this one. Both must be
    /// drained (no in-flight requests) — callers merge per-shard audits
    /// after the fleet is idle, in canonical shard order.
    pub fn merge_from(&mut self, other: &StreamingAudit) {
        assert!(
            self.tracker.pending.is_empty() && other.tracker.pending.is_empty(),
            "merging streaming audits with in-flight requests"
        );
        self.requests += other.requests;
        self.end_to_end.merge_from(&other.end_to_end);
        self.exec.merge_from(&other.exec);
        self.cold_start_wait.merge_from(&other.cold_start_wait);
        self.queue_wait.merge_from(&other.queue_wait);
        self.stall.merge_from(&other.stall);
        self.exec_us += other.exec_us;
        self.cold_us += other.cold_us;
        self.queue_us += other.queue_us;
        self.stall_us += other.stall_us;
        for (name, edge) in &other.mlp.per_function {
            let mine = self.mlp.per_function.entry(name.clone()).or_default();
            mine.predicted += edge.predicted;
            mine.hits += edge.hits;
            mine.invoked += edge.invoked;
            mine.misses += edge.misses;
        }
        self.mlp.predicted += other.mlp.predicted;
        self.mlp.hits += other.mlp.hits;
        self.mlp.invoked += other.mlp.invoked;
        self.mlp.misses += other.mlp.misses;
        if self.mlp.miss_depth.len() < other.mlp.miss_depth.len() {
            self.mlp.miss_depth.resize(other.mlp.miss_depth.len(), 0);
        }
        for (d, n) in other.mlp.miss_depth.iter().enumerate() {
            self.mlp.miss_depth[d] += n;
        }
        self.waste_deploys += other.waste_deploys;
        self.wasted_us += other.wasted_us;
        self.jit_planned += other.jit_planned;
        self.jit_late += other.jit_late;
        self.jit_on_time += other.jit_on_time;
        self.late_ms.merge_from(&other.late_ms);
        self.slack_ms.merge_from(&other.slack_ms);
        self.cluster.merge_from(&other.cluster);
        self.exemplars.extend(other.exemplars.iter().cloned());
        self.sort_exemplars();
    }

    /// The current run-level aggregates.
    pub fn summary(&self) -> StreamingSummary {
        let mut mlp = self.mlp.clone();
        mlp.precision = if mlp.predicted == 0 {
            1.0
        } else {
            mlp.hits as f64 / mlp.predicted as f64
        };
        mlp.recall = if mlp.invoked == 0 {
            1.0
        } else {
            1.0 - mlp.misses as f64 / mlp.invoked as f64
        };
        StreamingSummary {
            requests: self.requests,
            end_to_end: self.end_to_end.clone(),
            exec: self.exec.clone(),
            cold_start_wait: self.cold_start_wait.clone(),
            queue_wait: self.queue_wait.clone(),
            stall: self.stall.clone(),
            exec_ms: self.exec_us as f64 / 1000.0,
            cold_start_wait_ms: self.cold_us as f64 / 1000.0,
            queue_wait_ms: self.queue_us as f64 / 1000.0,
            stall_ms: self.stall_us as f64 / 1000.0,
            mlp,
            waste: WasteStats {
                deploys: self.waste_deploys,
                cpu_ms: self.wasted_us as f64 / 1000.0,
            },
            jit: StreamingJitStats {
                planned: self.jit_planned,
                late: self.jit_late,
                on_time: self.jit_on_time,
                late_ms: self.late_ms.clone(),
                slack_ms: self.slack_ms.clone(),
            },
            cluster: self.cluster.clone(),
        }
    }
}

/// Serializable snapshot of a drained [`StreamingAudit`] — everything
/// but the (empty) in-flight tracker. Checkpoint → restore is lossless:
/// floats round-trip through JSON via shortest-round-trip formatting, so
/// a restored audit continues byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditCheckpoint {
    /// Exemplar-reservoir capacity the audit was configured with.
    pub exemplars_cap: usize,
    /// Completed requests folded in.
    pub requests: u64,
    /// End-to-end latency distribution.
    pub end_to_end: Histogram,
    /// Per-request exec-time distribution.
    pub exec: Histogram,
    /// Per-request cold-start-wait distribution.
    pub cold_start_wait: Histogram,
    /// Per-request warm-queueing distribution.
    pub queue_wait: Histogram,
    /// Per-request stall distribution.
    pub stall: Histogram,
    /// Total exec microseconds.
    pub exec_us: u64,
    /// Total cold-start-wait microseconds.
    pub cold_us: u64,
    /// Total warm-queueing microseconds.
    pub queue_us: u64,
    /// Total stall microseconds.
    pub stall_us: u64,
    /// MLP prediction quality.
    pub mlp: MlpStats,
    /// Unused speculative deployments.
    pub waste_deploys: u64,
    /// Wasted deploy CPU microseconds.
    pub wasted_us: u64,
    /// Planned deployments that served an invocation.
    pub jit_planned: u64,
    /// Of those, sandboxes ready after their invocation.
    pub jit_late: u64,
    /// Sandboxes ready at or before their invocation.
    pub jit_on_time: u64,
    /// Positive-lateness distribution (ms).
    pub late_ms: Histogram,
    /// Pre-warm slack distribution (ms).
    pub slack_ms: Histogram,
    /// Cluster scheduling activity.
    pub cluster: ClusterActivity,
    /// The worst-request reservoir.
    pub exemplars: Vec<Exemplar>,
}

impl StreamingAudit {
    /// Captures the audit as a serializable checkpoint.
    ///
    /// # Panics
    /// If requests are still in flight — the service tier checkpoints
    /// only at drained epoch boundaries.
    pub fn checkpoint(&self) -> AuditCheckpoint {
        assert!(
            self.tracker.pending.is_empty(),
            "checkpointing a streaming audit with in-flight requests"
        );
        AuditCheckpoint {
            exemplars_cap: self.config.exemplars,
            requests: self.requests,
            end_to_end: self.end_to_end.clone(),
            exec: self.exec.clone(),
            cold_start_wait: self.cold_start_wait.clone(),
            queue_wait: self.queue_wait.clone(),
            stall: self.stall.clone(),
            exec_us: self.exec_us,
            cold_us: self.cold_us,
            queue_us: self.queue_us,
            stall_us: self.stall_us,
            mlp: self.mlp.clone(),
            waste_deploys: self.waste_deploys,
            wasted_us: self.wasted_us,
            jit_planned: self.jit_planned,
            jit_late: self.jit_late,
            jit_on_time: self.jit_on_time,
            late_ms: self.late_ms.clone(),
            slack_ms: self.slack_ms.clone(),
            cluster: self.cluster.clone(),
            exemplars: self.exemplars.clone(),
        }
    }

    /// Rebuilds an audit from a checkpoint, with an empty in-flight
    /// tracker — the exact state [`checkpoint`](Self::checkpoint)
    /// captured.
    pub fn from_checkpoint(c: &AuditCheckpoint) -> StreamingAudit {
        let mut audit = StreamingAudit::new(StreamingConfig {
            exemplars: c.exemplars_cap,
        });
        audit.requests = c.requests;
        audit.end_to_end = c.end_to_end.clone();
        audit.exec = c.exec.clone();
        audit.cold_start_wait = c.cold_start_wait.clone();
        audit.queue_wait = c.queue_wait.clone();
        audit.stall = c.stall.clone();
        audit.exec_us = c.exec_us;
        audit.cold_us = c.cold_us;
        audit.queue_us = c.queue_us;
        audit.stall_us = c.stall_us;
        audit.mlp = c.mlp.clone();
        audit.waste_deploys = c.waste_deploys;
        audit.wasted_us = c.wasted_us;
        audit.jit_planned = c.jit_planned;
        audit.jit_late = c.jit_late;
        audit.jit_on_time = c.jit_on_time;
        audit.late_ms = c.late_ms.clone();
        audit.slack_ms = c.slack_ms.clone();
        audit.cluster = c.cluster.clone();
        audit.exemplars = c.exemplars.clone();
        audit
    }
}

impl Observer for StreamingAudit {
    fn on_event(&mut self, at: SimTime, event: &BusEvent) {
        match event {
            BusEvent::HostUp { .. } => self.cluster.hosts_up += 1,
            BusEvent::HostDown { workers_lost, .. } => {
                self.cluster.hosts_down += 1;
                self.cluster.workers_lost += u64::from(*workers_lost);
            }
            BusEvent::WorkerPlaced { .. } => self.cluster.placed += 1,
            BusEvent::WorkerEvicted { .. } => self.cluster.evicted += 1,
            _ => {}
        }
        if let Some(digest) = self.tracker.on_event(at, event) {
            self.fold(digest);
        }
    }
}

/// Index of the bucket a millisecond value falls into under the standard
/// latency bounds (the overflow bucket is `bounds.len()`). Tests use this
/// to state the documented quantile tolerance: a streaming quantile lands
/// in the same or an adjacent bucket as the exact order statistic.
pub fn latency_bucket(ms: f64) -> usize {
    LATENCY_BUCKET_BOUNDS_MS
        .iter()
        .position(|&b| ms <= b)
        .unwrap_or(LATENCY_BUCKET_BOUNDS_MS.len())
}

// ---------------------------------------------------------------------
// SloMonitor
// ---------------------------------------------------------------------

/// Configuration of a [`SloMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Width of the tumbling evaluation windows (must be positive).
    pub window: SimDuration,
    /// The gates each window is held to, relative to the baseline (first
    /// non-empty) window.
    pub thresholds: DiffThresholds,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window: SimDuration::from_mins(1),
            thresholds: DiffThresholds::default(),
        }
    }
}

/// One tumbling window's accumulated telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloWindow {
    /// Window index (`completion time / window width`).
    pub index: u64,
    /// Requests that completed inside the window.
    pub requests: u64,
    /// End-to-end latency distribution of those requests.
    pub end_to_end: Histogram,
    /// Wasted-deploy CPU, integer microseconds.
    pub wasted_us: u64,
    /// Function invocations.
    pub invoked: u64,
    /// Prediction misses.
    pub misses: u64,
}

impl SloWindow {
    fn new(index: u64) -> Self {
        SloWindow {
            index,
            requests: 0,
            end_to_end: Histogram::latency(),
            wasted_us: 0,
            invoked: 0,
            misses: 0,
        }
    }

    /// Plan coverage inside the window (1 when nothing was invoked).
    pub fn recall(&self) -> f64 {
        if self.invoked == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.invoked as f64
        }
    }

    /// Wasted CPU-ms per completed request (0 when empty).
    pub fn waste_per_request_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.wasted_us as f64 / 1000.0 / self.requests as f64
        }
    }
}

/// One SLO breach: a window whose telemetry crossed a threshold relative
/// to the baseline window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloAlert {
    /// Index of the breaching window.
    pub window: u64,
    /// JSONPath-style pointer to the violated gate.
    pub path: String,
    /// Baseline-window value.
    pub baseline: f64,
    /// Breaching-window value.
    pub candidate: f64,
    /// Human-readable statement of the exceeded limit.
    pub allowed: String,
}

impl SloAlert {
    /// The typed bus event announcing this breach.
    pub fn into_event(self) -> BusEvent {
        BusEvent::SloAlert {
            window: self.window,
            path: self.path,
            baseline: self.baseline,
            candidate: self.candidate,
            allowed: self.allowed,
        }
    }
}

/// Scalar view of one window, as exported in the SLO report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloWindowSummary {
    /// Window index.
    pub index: u64,
    /// Window start, milliseconds of simulation time.
    pub start_ms: f64,
    /// Requests completed inside the window.
    pub requests: u64,
    /// Bucket-interpolated median end-to-end latency.
    pub p50_ms: f64,
    /// Bucket-interpolated p95 end-to-end latency.
    pub p95_ms: f64,
    /// Mean end-to-end latency.
    pub mean_ms: f64,
    /// Wasted-deploy CPU-ms charged to requests completing here.
    pub wasted_cpu_ms: f64,
    /// Function invocations.
    pub invoked: u64,
    /// Prediction misses.
    pub misses: u64,
    /// Plan coverage (1 − misses/invoked; 1 when idle).
    pub recall: f64,
}

/// The windowed SLO export (`docs/schemas/slo.schema.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Tumbling-window width in milliseconds.
    pub window_ms: f64,
    /// The gates applied to every window.
    pub thresholds: DiffThresholds,
    /// Index of the baseline (first non-empty) window, if any window saw
    /// traffic.
    pub baseline_window: Option<u64>,
    /// Every non-empty window, index-ordered.
    pub windows: Vec<SloWindowSummary>,
    /// Every breach, in (window, gate) order. Empty means the stream
    /// stayed inside its envelope.
    pub alerts: Vec<SloAlert>,
}

/// Serializable snapshot of a drained [`SloMonitor`]: accumulated
/// windows plus the evaluation cursor and alerts already raised, so a
/// restored monitor neither re-raises nor skips alerts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloCheckpoint {
    /// Tumbling-window width, integer microseconds.
    pub window_us: u64,
    /// The gates every window is held to.
    pub thresholds: DiffThresholds,
    /// Accumulated windows, index-ordered.
    pub windows: Vec<SloWindow>,
    /// Baseline (first non-empty) window index, if evaluation started.
    pub baseline: Option<u64>,
    /// Highest window index already evaluated.
    pub evaluated: Option<u64>,
    /// Alerts raised so far, in emission order.
    pub alerts: Vec<SloAlert>,
}

/// Evaluates windowed telemetry against [`DiffThresholds`], live or
/// post-merge.
///
/// Requests are bucketed into tumbling windows by *completion* time. The
/// first non-empty window becomes the baseline; every later non-empty
/// window is gated against it with the same comparison semantics as
/// `xanadu diff` (p50/p95 relative regression, wasted-CPU-per-request
/// relative regression, absolute recall drop).
///
/// In live mode (attached via `Platform::attach_slo`) a window is
/// evaluated the moment a completion lands in a later window, and the
/// resulting [`SloAlert`]s are re-emitted by the platform as typed
/// [`BusEvent::SloAlert`]s. In collector mode (sharded replay) windows
/// only accumulate; the driver merges per-shard windows canonically and
/// evaluates once, which yields the identical alert list because
/// evaluation is a pure function of the merged windows.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    tracker: RequestTracker,
    config: SloConfig,
    windows: BTreeMap<u64, SloWindow>,
    live: bool,
    baseline: Option<u64>,
    /// Highest window index already evaluated (live mode).
    evaluated: Option<u64>,
    alerts: Vec<SloAlert>,
    /// Alerts raised but not yet drained by the platform (live mode).
    pending_alerts: Vec<SloAlert>,
}

impl SloMonitor {
    fn with_mode(config: SloConfig, live: bool) -> Self {
        assert!(
            config.window > SimDuration::ZERO,
            "SLO window must be positive"
        );
        SloMonitor {
            tracker: RequestTracker::new(false),
            config,
            windows: BTreeMap::new(),
            live,
            baseline: None,
            evaluated: None,
            alerts: Vec::new(),
            pending_alerts: Vec::new(),
        }
    }

    /// A live monitor: evaluates each window as it closes (attach via
    /// `Platform::attach_slo` so breaches are re-emitted as bus events).
    pub fn live(config: SloConfig) -> Self {
        SloMonitor::with_mode(config, true)
    }

    /// A collector: accumulates windows without evaluating. Used by the
    /// sharded replay driver, which merges shard collectors canonically
    /// and evaluates once via [`report`](Self::report).
    pub fn collector(config: SloConfig) -> Self {
        SloMonitor::with_mode(config, false)
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// The accumulated windows, index-ordered.
    pub fn windows(&self) -> impl Iterator<Item = &SloWindow> {
        self.windows.values()
    }

    fn fold(&mut self, digest: &RequestDigest) {
        let width = self.config.window.as_micros();
        let index = digest.completed_us / width;
        if self.live {
            self.close_windows_below(index);
        }
        let w = self
            .windows
            .entry(index)
            .or_insert_with(|| SloWindow::new(index));
        w.requests += 1;
        w.end_to_end.observe(digest.end_to_end_us as f64 / 1000.0);
        w.wasted_us += digest.wasted_us;
        w.invoked += digest.invoked.len() as u64;
        w.misses += digest.missed.len() as u64;
    }

    /// Live mode: evaluates every not-yet-evaluated non-empty window with
    /// index below `upto` (they can no longer receive completions —
    /// completion times are nondecreasing).
    fn close_windows_below(&mut self, upto: u64) {
        let ready: Vec<u64> = self
            .windows
            .keys()
            .copied()
            .filter(|&i| i < upto && self.evaluated.is_none_or(|e| i > e))
            .collect();
        for index in ready {
            self.evaluate_window(index);
            self.evaluated = Some(index);
        }
    }

    fn evaluate_window(&mut self, index: u64) {
        let Some(window) = self.windows.get(&index) else {
            return;
        };
        if window.requests == 0 {
            return;
        }
        match self.baseline {
            None => self.baseline = Some(index),
            Some(b) if b == index => {}
            Some(b) => {
                let baseline = self.windows.get(&b).expect("baseline window exists");
                let fresh = gate_window(baseline, window, &self.config.thresholds);
                self.pending_alerts.extend(fresh.iter().cloned());
                self.alerts.extend(fresh);
            }
        }
    }

    /// Drains alerts raised since the last call (live mode; the platform
    /// calls this after every delivery and re-emits them as bus events).
    pub fn take_alerts(&mut self) -> Vec<SloAlert> {
        std::mem::take(&mut self.pending_alerts)
    }

    /// Evaluates every not-yet-evaluated window strictly below `horizon`
    /// and returns the fresh alerts, in (window, gate) order.
    ///
    /// The service tier calls this at checkpoint boundaries: completions
    /// are *not* globally time-ordered across epochs (a draining epoch
    /// emits completions later than the next epoch's first trigger), so
    /// only windows below `floor(next trigger time / width)` are final —
    /// every future completion lands at or above that index. Evaluation
    /// is incremental and index-ordered against the same first-non-empty
    /// baseline as [`report`](Self::report), so the union of all
    /// `evaluate_below` results equals the report's alert list exactly.
    ///
    /// # Panics
    /// If requests are still in flight.
    pub fn evaluate_below(&mut self, horizon: u64) -> Vec<SloAlert> {
        assert!(
            self.tracker.pending.is_empty(),
            "evaluating an SLO monitor with in-flight requests"
        );
        let ready: Vec<u64> = self
            .windows
            .keys()
            .copied()
            .filter(|&i| i < horizon && self.evaluated.is_none_or(|e| i > e))
            .collect();
        for index in ready {
            self.evaluate_window(index);
            self.evaluated = Some(index);
        }
        self.take_alerts()
    }

    /// Every alert raised so far, in emission order.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Closes the stream: evaluates the final (still-open) window and
    /// returns any remaining alerts. Collector-mode monitors defer all
    /// evaluation to [`report`](Self::report) and return nothing.
    pub fn finish_stream(&mut self) -> Vec<SloAlert> {
        if self.live {
            let open: Vec<u64> = self
                .windows
                .keys()
                .copied()
                .filter(|&i| self.evaluated.is_none_or(|e| i > e))
                .collect();
            for index in open {
                self.evaluate_window(index);
                self.evaluated = Some(index);
            }
        }
        self.take_alerts()
    }

    /// Folds another monitor's windows into this one (shard merge; both
    /// must be drained). Window width must match.
    pub fn merge_from(&mut self, other: &SloMonitor) {
        assert!(
            self.tracker.pending.is_empty() && other.tracker.pending.is_empty(),
            "merging SLO monitors with in-flight requests"
        );
        assert_eq!(
            self.config.window, other.config.window,
            "merging SLO monitors with different window widths"
        );
        for (index, theirs) in &other.windows {
            let mine = self
                .windows
                .entry(*index)
                .or_insert_with(|| SloWindow::new(*index));
            mine.requests += theirs.requests;
            mine.end_to_end.merge_from(&theirs.end_to_end);
            mine.wasted_us += theirs.wasted_us;
            mine.invoked += theirs.invoked;
            mine.misses += theirs.misses;
        }
    }

    /// Captures the monitor as a serializable checkpoint (windows,
    /// baseline, evaluation cursor, and alerts raised so far).
    ///
    /// # Panics
    /// If requests are in flight or alerts are pending un-drained.
    pub fn checkpoint(&self) -> SloCheckpoint {
        assert!(
            self.tracker.pending.is_empty(),
            "checkpointing an SLO monitor with in-flight requests"
        );
        assert!(
            self.pending_alerts.is_empty(),
            "checkpointing an SLO monitor with undrained alerts"
        );
        SloCheckpoint {
            window_us: self.config.window.as_micros(),
            thresholds: self.config.thresholds.clone(),
            windows: self.windows.values().cloned().collect(),
            baseline: self.baseline,
            evaluated: self.evaluated,
            alerts: self.alerts.clone(),
        }
    }

    /// Rebuilds a collector-mode monitor from a checkpoint — the exact
    /// state [`checkpoint`](Self::checkpoint) captured, ready to resume
    /// folding and incremental evaluation.
    pub fn from_checkpoint(c: &SloCheckpoint) -> SloMonitor {
        let mut monitor = SloMonitor::collector(SloConfig {
            window: SimDuration::from_micros(c.window_us),
            thresholds: c.thresholds.clone(),
        });
        monitor.windows = c.windows.iter().map(|w| (w.index, w.clone())).collect();
        monitor.baseline = c.baseline;
        monitor.evaluated = c.evaluated;
        monitor.alerts = c.alerts.clone();
        monitor
    }

    /// Builds the windowed export: every non-empty window summarized, plus
    /// the full evaluation (pure function of the windows, so a live
    /// monitor's report lists exactly the alerts it already emitted).
    pub fn report(&self) -> SloReport {
        let window_ms = self.config.window.as_micros() as f64 / 1000.0;
        let occupied: Vec<&SloWindow> = self.windows.values().filter(|w| w.requests > 0).collect();
        let baseline_window = occupied.first().map(|w| w.index);
        let mut alerts = Vec::new();
        if let Some(baseline) = occupied.first() {
            for window in occupied.iter().skip(1) {
                alerts.extend(gate_window(baseline, window, &self.config.thresholds));
            }
        }
        let windows = occupied
            .iter()
            .map(|w| SloWindowSummary {
                index: w.index,
                start_ms: w.index as f64 * window_ms,
                requests: w.requests,
                p50_ms: w.end_to_end.quantile_ms(0.50),
                p95_ms: w.end_to_end.quantile_ms(0.95),
                mean_ms: w.end_to_end.mean_ms(),
                wasted_cpu_ms: w.wasted_us as f64 / 1000.0,
                invoked: w.invoked,
                misses: w.misses,
                recall: w.recall(),
            })
            .collect();
        SloReport {
            window_ms,
            thresholds: self.config.thresholds.clone(),
            baseline_window,
            windows,
            alerts,
        }
    }
}

impl Observer for SloMonitor {
    fn on_event(&mut self, at: SimTime, event: &BusEvent) {
        if let Some(digest) = self.tracker.on_event(at, event) {
            self.fold(&digest);
        }
    }
}

/// Applies the diff gates to one window against the baseline window.
fn gate_window(baseline: &SloWindow, window: &SloWindow, t: &DiffThresholds) -> Vec<SloAlert> {
    let i = window.index;
    let mut out = Vec::new();
    out.extend(pct_regression(
        &format!("$.windows[{i}].end_to_end_ms.p50"),
        baseline.end_to_end.quantile_ms(0.50),
        window.end_to_end.quantile_ms(0.50),
        t.max_p95_regress_pct,
    ));
    out.extend(pct_regression(
        &format!("$.windows[{i}].end_to_end_ms.p95"),
        baseline.end_to_end.quantile_ms(0.95),
        window.end_to_end.quantile_ms(0.95),
        t.max_p95_regress_pct,
    ));
    // Windowed waste baselines are routinely zero (a window with no
    // speculative deploys wastes nothing), so the whole-run diff's
    // grew-from-~0 escalation would alert on every later window no
    // matter how loose the configured percentage. Flooring the baseline
    // at the noise floor keeps this gate relative: the threshold always
    // applies, measured against at least 1ms of waste per request.
    out.extend(pct_regression(
        &format!("$.windows[{i}].waste.cpu_ms_per_request"),
        baseline.waste_per_request_ms().max(ABS_FLOOR_MS),
        window.waste_per_request_ms(),
        t.max_wasted_cpu_regress_pct,
    ));
    out.extend(drop_regression(
        &format!("$.windows[{i}].mlp.recall"),
        baseline.recall(),
        window.recall(),
        t.max_recall_drop,
    ));
    out.into_iter()
        .map(|r| SloAlert {
            window: i,
            path: r.path,
            baseline: r.baseline,
            candidate: r.candidate,
            allowed: r.allowed,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn feed(obs: &mut impl Observer, events: &[(SimTime, BusEvent)]) {
        for (t, e) in events {
            obs.on_event(*t, e);
        }
    }

    /// One request with a hit, an on-demand miss, and an unused planned
    /// deploy — every accounting path in a single stream.
    fn mixed_request(request: u64, base_ms: u64) -> Vec<(SimTime, BusEvent)> {
        let t = |d: u64| at(base_ms + d);
        vec![
            (
                t(0),
                BusEvent::RequestTriggered {
                    request,
                    workflow: "wf".into(),
                },
            ),
            (
                t(0),
                BusEvent::PlanComputed {
                    request,
                    workflow: "wf".into(),
                    planned: 2,
                },
            ),
            (
                t(0),
                BusEvent::FunctionInvoked {
                    request,
                    function: "a".into(),
                    node: 0,
                },
            ),
            (
                t(0),
                BusEvent::WorkerProvisioned {
                    worker: 1,
                    request,
                    function: "a".into(),
                    cold_start_ms: 100.0,
                    ready_in_ms: 100.0,
                    on_demand: false,
                },
            ),
            (
                t(0),
                BusEvent::WorkerProvisioned {
                    worker: 3,
                    request,
                    function: "c".into(),
                    cold_start_ms: 50.0,
                    ready_in_ms: 50.0,
                    on_demand: false,
                },
            ),
            (
                t(100),
                BusEvent::ExecStarted {
                    request,
                    function: "a".into(),
                    worker: 1,
                    warm: false,
                    queue_wait_ms: 100.0,
                },
            ),
            (
                t(150),
                BusEvent::ExecEnded {
                    request,
                    function: "a".into(),
                    worker: 1,
                    exec_ms: 50.0,
                },
            ),
            (
                t(150),
                BusEvent::FunctionInvoked {
                    request,
                    function: "b".into(),
                    node: 1,
                },
            ),
            (
                t(150),
                BusEvent::PredictionMiss {
                    request,
                    function: "b".into(),
                    node: 1,
                },
            ),
            (
                t(150),
                BusEvent::WorkerProvisioned {
                    worker: 2,
                    request,
                    function: "b".into(),
                    cold_start_ms: 80.0,
                    ready_in_ms: 80.0,
                    on_demand: true,
                },
            ),
            (
                t(230),
                BusEvent::ExecStarted {
                    request,
                    function: "b".into(),
                    worker: 2,
                    warm: false,
                    queue_wait_ms: 80.0,
                },
            ),
            (
                t(280),
                BusEvent::ExecEnded {
                    request,
                    function: "b".into(),
                    worker: 2,
                    exec_ms: 50.0,
                },
            ),
            (
                t(280),
                BusEvent::RequestCompleted {
                    request,
                    workflow: "wf".into(),
                    overhead_ms: 180.0,
                    end_to_end_ms: 280.0,
                },
            ),
        ]
    }

    /// Minimal request: triggered, one exec covering `[0, e2e]`, completed.
    fn simple_request(request: u64, base_ms: u64, e2e_ms: u64) -> Vec<(SimTime, BusEvent)> {
        vec![
            (
                at(base_ms),
                BusEvent::RequestTriggered {
                    request,
                    workflow: "wf".into(),
                },
            ),
            (
                at(base_ms),
                BusEvent::FunctionInvoked {
                    request,
                    function: "a".into(),
                    node: 0,
                },
            ),
            (
                at(base_ms),
                BusEvent::ExecStarted {
                    request,
                    function: "a".into(),
                    worker: 1,
                    warm: true,
                    queue_wait_ms: 0.0,
                },
            ),
            (
                at(base_ms + e2e_ms),
                BusEvent::ExecEnded {
                    request,
                    function: "a".into(),
                    worker: 1,
                    exec_ms: e2e_ms as f64,
                },
            ),
            (
                at(base_ms + e2e_ms),
                BusEvent::RequestCompleted {
                    request,
                    workflow: "wf".into(),
                    overhead_ms: 0.0,
                    end_to_end_ms: e2e_ms as f64,
                },
            ),
        ]
    }

    #[test]
    fn streaming_audit_accounts_a_mixed_request_exactly() {
        let mut audit = StreamingAudit::default();
        feed(&mut audit, &mixed_request(1, 0));
        assert_eq!(audit.in_flight(), 0);
        let s = audit.summary();
        assert_eq!(s.requests, 1);
        assert_eq!(s.exec_ms, 100.0, "two 50ms execs");
        assert_eq!(s.cold_start_wait_ms, 180.0, "100ms hit + 80ms on-demand");
        assert_eq!(s.queue_wait_ms, 0.0);
        assert_eq!(s.stall_ms, 0.0);
        assert_eq!(
            s.exec_ms + s.cold_start_wait_ms + s.queue_wait_ms + s.stall_ms,
            280.0,
            "span-sum invariant"
        );
        assert_eq!(s.mlp.predicted, 2, "a and the unused c");
        assert_eq!(s.mlp.hits, 1);
        assert_eq!(s.mlp.invoked, 2);
        assert_eq!(s.mlp.misses, 1);
        assert_eq!(s.mlp.precision, 0.5);
        assert_eq!(s.mlp.recall, 0.5);
        assert_eq!(s.mlp.miss_depth, vec![0, 1], "b missed at depth 1");
        assert_eq!(s.mlp.per_function["b"].misses, 1);
        assert_eq!(s.waste.deploys, 1, "c never served");
        assert_eq!(s.waste.cpu_ms, 280.0, "charged to request end");
        assert_eq!(s.jit.planned, 1, "on-demand b excluded");
        assert_eq!(s.jit.late, 1, "a ready 100ms after its invoke");
        assert_eq!(s.jit.on_time, 0);
        assert_eq!(s.end_to_end.count, 1);
    }

    #[test]
    fn exemplar_reservoir_keeps_worst_requests_with_span_trees() {
        let mut audit = StreamingAudit::new(StreamingConfig { exemplars: 2 });
        feed(&mut audit, &simple_request(1, 0, 50));
        feed(&mut audit, &simple_request(2, 1_000, 400));
        feed(&mut audit, &simple_request(3, 2_000, 200));
        let ex = audit.exemplars();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].request, 2, "worst first");
        assert_eq!(ex[1].request, 3);
        assert_eq!(ex[0].end_to_end_us, 400_000);
        let tree = ex[0].span_tree().expect("reconstructed trace spans");
        assert!(tree.root.name.contains("request 2"));
    }

    #[test]
    fn pool_owned_provisions_are_ignored() {
        let mut audit = StreamingAudit::default();
        let mut events = simple_request(1, 0, 50);
        events.insert(
            1,
            (
                at(0),
                BusEvent::WorkerProvisioned {
                    worker: 9,
                    request: u64::MAX,
                    function: "a".into(),
                    cold_start_ms: 10.0,
                    ready_in_ms: 10.0,
                    on_demand: false,
                },
            ),
        );
        feed(&mut audit, &events);
        let s = audit.summary();
        assert_eq!(s.mlp.predicted, 0);
        assert_eq!(s.waste.deploys, 0);
    }

    #[test]
    fn merged_shard_audits_equal_the_single_stream_audit() {
        let r1 = mixed_request(1, 0);
        let r2 = simple_request(2, 500, 120);
        let r3 = mixed_request(3, 1_000);

        let mut whole = StreamingAudit::default();
        feed(&mut whole, &r1);
        feed(&mut whole, &r2);
        feed(&mut whole, &r3);

        let mut shard_a = StreamingAudit::default();
        feed(&mut shard_a, &r1);
        feed(&mut shard_a, &r2);
        let mut shard_b = StreamingAudit::default();
        feed(&mut shard_b, &r3);
        shard_a.merge_from(&shard_b);

        assert_eq!(shard_a.summary(), whole.summary());
        assert_eq!(
            shard_a.exemplars().len(),
            whole.exemplars().len(),
            "reservoirs merge canonically"
        );
        for (a, b) in shard_a.exemplars().iter().zip(whole.exemplars()) {
            assert_eq!(a.request, b.request);
            assert_eq!(a.end_to_end_us, b.end_to_end_us);
        }
    }

    fn slo_config(window_secs: u64) -> SloConfig {
        SloConfig {
            window: SimDuration::from_secs(window_secs),
            thresholds: DiffThresholds::default(),
        }
    }

    #[test]
    fn clean_stream_raises_no_alerts() {
        let mut slo = SloMonitor::live(slo_config(1));
        for (i, base) in [100u64, 1_100, 2_100, 3_100].iter().enumerate() {
            feed(&mut slo, &simple_request(i as u64 + 1, *base, 100));
            assert!(slo.take_alerts().is_empty());
        }
        assert!(slo.finish_stream().is_empty());
        let report = slo.report();
        assert_eq!(report.baseline_window, Some(0));
        assert_eq!(report.windows.len(), 4);
        assert!(report.alerts.is_empty());
    }

    #[test]
    fn degraded_window_raises_alert_in_the_correct_window() {
        let mut slo = SloMonitor::live(slo_config(1));
        // Window 0: healthy baseline (100ms).
        for (req, base) in [(1u64, 100u64), (2, 300), (3, 500)] {
            feed(&mut slo, &simple_request(req, base, 100));
        }
        // Window 2: 3x p95 degradation (300ms → a different bucket).
        for (req, base) in [(4u64, 2_100u64), (5, 2_300), (6, 2_500)] {
            feed(&mut slo, &simple_request(req, base, 300));
        }
        assert!(
            slo.take_alerts().is_empty(),
            "window 2 still open, nothing evaluated yet"
        );
        // Window 3: healthy again; its arrival closes window 2 live.
        feed(&mut slo, &simple_request(7, 3_100, 100));
        let live = slo.take_alerts();
        assert!(!live.is_empty(), "closing window 2 evaluates it");
        assert!(live.iter().all(|a| a.window == 2));
        assert!(live
            .iter()
            .any(|a| a.path == "$.windows[2].end_to_end_ms.p95"));
        // The final (healthy) window closes without alerts.
        assert!(slo.finish_stream().is_empty());
        let report = slo.report();
        assert_eq!(report.baseline_window, Some(0));
        assert_eq!(report.alerts, live, "batch evaluation matches live");
        let w2 = report.windows.iter().find(|w| w.index == 2).unwrap();
        assert!(w2.p95_ms > report.windows[0].p95_ms * 2.0);
    }

    #[test]
    fn alert_converts_into_typed_bus_event() {
        let alert = SloAlert {
            window: 2,
            path: "$.windows[2].end_to_end_ms.p95".into(),
            baseline: 100.0,
            candidate: 300.0,
            allowed: "+200.0% > allowed +10.0%".into(),
        };
        match alert.clone().into_event() {
            BusEvent::SloAlert { window, path, .. } => {
                assert_eq!(window, 2);
                assert_eq!(path, alert.path);
            }
            other => panic!("expected SloAlert, got {other:?}"),
        }
    }

    #[test]
    fn collector_merge_reproduces_the_live_report() {
        let streams: Vec<Vec<(SimTime, BusEvent)>> = vec![
            simple_request(1, 100, 100),
            simple_request(2, 2_100, 300),
            simple_request(3, 2_400, 320),
        ];
        let mut live = SloMonitor::live(slo_config(1));
        for s in &streams {
            feed(&mut live, s);
        }
        live.finish_stream();

        let mut shard_a = SloMonitor::collector(slo_config(1));
        feed(&mut shard_a, &streams[0]);
        feed(&mut shard_a, &streams[1]);
        let mut shard_b = SloMonitor::collector(slo_config(1));
        feed(&mut shard_b, &streams[2]);
        assert!(shard_a.finish_stream().is_empty(), "collectors never alert");
        assert!(shard_b.finish_stream().is_empty());
        shard_a.merge_from(&shard_b);

        assert_eq!(shard_a.report(), live.report());
        assert!(!live.report().alerts.is_empty());
    }

    #[test]
    fn latency_bucket_indexes_the_standard_bounds() {
        assert_eq!(latency_bucket(0.5), 0);
        assert_eq!(latency_bucket(1.0), 0);
        assert_eq!(latency_bucket(75.0), 6);
        assert_eq!(latency_bucket(1e9), LATENCY_BUCKET_BOUNDS_MS.len());
    }
}
