//! Platform configuration.

use crate::faults::FaultConfig;
use crate::hosts::{AutoscaleConfig, HostSpec, PlacementPolicy, TenantConfig};
use serde::{Deserialize, Serialize};
use xanadu_core::policy::{PolicyRegistry, PolicySpec};
use xanadu_core::speculation::{ExecutionMode, SpeculationConfig};
use xanadu_sandbox::PoolConfig;
use xanadu_simcore::Distribution;

/// Serde default for [`PlatformConfig::plan_cache`]: caching is on.
fn default_plan_cache() -> bool {
    true
}

/// Serde default for [`PlatformConfig::record_traces`]: recording is on.
fn default_record_traces() -> bool {
    true
}

/// The cluster the Dispatch Daemons run on: hosts plus the placement
/// policy the Dispatch Manager uses (Figure 11 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Placement policy for new workers.
    pub policy: PlacementPolicy,
    /// The hosts; empty means "the paper's single-machine testbed".
    pub hosts: Vec<HostSpec>,
    /// Tenants sharing the cluster (quotas + weighted fair admission).
    /// Empty means single-tenant: no admission control at all.
    #[serde(default)]
    pub tenants: Vec<TenantConfig>,
    /// Reactive fleet autoscaling; disabled by default.
    #[serde(default)]
    pub autoscale: AutoscaleConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            policy: PlacementPolicy::LeastLoaded,
            hosts: Vec::new(),
            tenants: Vec::new(),
            autoscale: AutoscaleConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// `n` identical hosts of `memory_mb` MB under `policy`. `n = 0`
    /// gives the default single-machine testbed.
    pub fn uniform(policy: PlacementPolicy, n: u32, memory_mb: u64) -> Self {
        ClusterConfig {
            policy,
            hosts: (0..n)
                .map(|i| HostSpec::new(format!("host-{i}"), memory_mb))
                .collect(),
            ..ClusterConfig::default()
        }
    }

    /// `k` equal-weight, unquota'd tenants named `tenant-0..k`.
    pub fn with_tenants(mut self, k: u32) -> Self {
        self.tenants = (0..k)
            .map(|i| TenantConfig::new(format!("tenant-{i}")))
            .collect();
        self
    }
}

/// Configuration of a [`Platform`](crate::Platform).
///
/// Besides Xanadu's own knobs (speculation mode, aggressiveness, pool
/// policy), the config exposes the platform-shape parameters that the
/// baseline emulations in `xanadu-baselines` override: per-hop
/// orchestration overhead, a live-worker cap with eviction delay (the
/// OpenWhisk warm-pool limitation of §2.3), and whether workflow structure
/// may be consulted at all (chain-agnostic baselines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Human-readable platform label used in experiment output.
    pub label: String,
    /// Speculation mode / aggressiveness / miss policy. Parameterizes the
    /// default Xanadu policy; learned policies carry their own parameters
    /// in [`policy`](PlatformConfig::policy).
    pub speculation: SpeculationConfig,
    /// Which speculation policy drives planning (§11 of DESIGN.md). The
    /// default, [`PolicySpec::Xanadu`], is the paper's engine configured
    /// by [`speculation`](PlatformConfig::speculation); the field is
    /// skipped during serialization in that case so default configs keep
    /// their exact bytes.
    #[serde(default, skip_serializing_if = "PolicySpec::is_default")]
    pub policy: PolicySpec,
    /// Warm-pool keep-alive and cap policy.
    pub pool: PoolConfig,
    /// Master RNG seed; every derived stream is deterministic in it.
    pub seed: u64,
    /// Per-hop orchestration latency (request routing, signalling): added
    /// between a trigger/parent-completion and the child invocation. The
    /// paper calls these "networking and signalling delays … orders of
    /// magnitude lower" than cold starts (§1).
    pub orchestration_overhead: Distribution,
    /// Maximum number of live workers (any state), or `None` for
    /// unlimited. When at the cap, provisioning must first evict an idle
    /// warm worker, paying `eviction_delay` — this models OpenWhisk's
    /// limited container pool (§2.3).
    pub max_live: Option<usize>,
    /// Latency of evicting a warm worker when `max_live` forces it.
    pub eviction_delay: Distribution,
    /// Kill speculated workers that never served once their request
    /// completes (per-request accounting hygiene; the paper discards
    /// mispredicted deployments, §3.2).
    pub discard_unused_after_run: bool,
    /// Whether planning consults learned (detector/EMA) probabilities
    /// before falling back to the workflow's declared probabilities.
    pub use_learned_probabilities: bool,
    /// The hosts the Dispatch Daemons manage.
    pub cluster: ClusterConfig,
    /// Memoize per-workflow deployment plans in the speculation engine,
    /// invalidated whenever the profiled metrics or learned branch
    /// probabilities change. On by default; the `abl` determinism checks
    /// turn it off to prove results are unchanged either way.
    #[serde(default = "default_plan_cache")]
    pub plan_cache: bool,
    /// Pre-crafted worker pool size per function (0 = off). When set, the
    /// platform keeps this many workers warm for *every* deployed
    /// function, replenishing after use and exempting them from
    /// keep-alive reclamation — the long-running pool approach of the
    /// paper's related work (§6), used by the `abl-pool` ablation as a
    /// cost foil for JIT speculation.
    pub static_prewarm: usize,
    /// Record per-request artifacts: the orchestration timeline
    /// ([`Trace`](crate::timeline::Trace)) of every request plus its
    /// `runs/{id}` metadata-store document. On by default — audits, the
    /// CLI's `--trace` rendering and Chrome export all read them.
    /// Fleet-scale replays (millions of invocations) turn this off so
    /// per-request memory stays flat; aggregate results and metrics are
    /// unaffected either way.
    #[serde(default = "default_record_traces")]
    pub record_traces: bool,
    /// Fault injection: rate, fault seed, timeout and retry policy.
    /// Disabled (rate 0) by default.
    #[serde(default)]
    pub faults: FaultConfig,
}

/// A [`PlatformConfigBuilder`] validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid platform config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`PlatformConfig`] with typed setters and validated
/// [`build`](PlatformConfigBuilder::build).
///
/// Preferred over poking the config's public fields in tests and
/// benchmarks: the builder keeps presets ([`for_mode`]
/// (PlatformConfigBuilder::for_mode)) and overrides in one expression and
/// rejects nonsense (empty label, fault rates outside `[0, 1]`, a
/// zero-worker live cap) before a platform is ever constructed.
///
/// ```
/// use xanadu_core::speculation::ExecutionMode;
/// use xanadu_platform::PlatformConfig;
///
/// let config = PlatformConfig::builder()
///     .for_mode(ExecutionMode::Jit, 42)
///     .plan_cache(false)
///     .static_prewarm(2)
///     .build()?;
/// assert_eq!(config.seed, 42);
/// # Ok::<(), xanadu_platform::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlatformConfigBuilder {
    config: PlatformConfig,
    /// Whether `.speculation()`/`.miss_policy()` were called explicitly —
    /// those knobs only parameterize the Xanadu policy, so combining them
    /// with a learned `.policy(...)` is rejected at `build()`.
    speculation_touched: bool,
}

impl PlatformConfigBuilder {
    /// Resets every field to the [`PlatformConfig::for_mode`] preset for
    /// `mode` and `seed`; call first, then layer overrides.
    pub fn for_mode(mut self, mode: ExecutionMode, seed: u64) -> Self {
        self.config = PlatformConfig::for_mode(mode, seed);
        self.speculation_touched = false;
        self
    }

    /// Human-readable platform label used in experiment output.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.config.label = label.into();
        self
    }

    /// Master RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Full speculation configuration (mode, aggressiveness, miss policy).
    pub fn speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.config.speculation = speculation;
        self.speculation_touched = true;
        self
    }

    /// Miss policy override, keeping the rest of the speculation preset.
    pub fn miss_policy(mut self, policy: xanadu_core::speculation::MissPolicy) -> Self {
        self.config.speculation.miss_policy = policy;
        self.speculation_touched = true;
        self
    }

    /// Which speculation policy drives planning. The default
    /// [`PolicySpec::Xanadu`] reads the `speculation` knobs; learned
    /// policies ([`PolicySpec::Mpc`], [`PolicySpec::Rl`]) carry their own
    /// parameters and reject explicit `speculation`/`miss_policy`
    /// overrides.
    pub fn policy(mut self, spec: PolicySpec) -> Self {
        self.config.policy = spec;
        self
    }

    /// Warm-pool keep-alive and cap policy.
    pub fn pool(mut self, pool: PoolConfig) -> Self {
        self.config.pool = pool;
        self
    }

    /// Per-hop orchestration latency distribution.
    pub fn orchestration_overhead(mut self, dist: Distribution) -> Self {
        self.config.orchestration_overhead = dist;
        self
    }

    /// Live-worker cap (`None` = unlimited).
    pub fn max_live(mut self, cap: Option<usize>) -> Self {
        self.config.max_live = cap;
        self
    }

    /// Latency of evicting a warm worker when the live cap forces it.
    pub fn eviction_delay(mut self, dist: Distribution) -> Self {
        self.config.eviction_delay = dist;
        self
    }

    /// Whether speculated-but-unused workers die with their request.
    pub fn discard_unused_after_run(mut self, discard: bool) -> Self {
        self.config.discard_unused_after_run = discard;
        self
    }

    /// Whether planning consults learned branch probabilities.
    pub fn use_learned_probabilities(mut self, learned: bool) -> Self {
        self.config.use_learned_probabilities = learned;
        self
    }

    /// The hosts the Dispatch Daemons manage, plus placement policy.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.config.cluster = cluster;
        self
    }

    /// Whether deployment plans are memoized per workflow.
    pub fn plan_cache(mut self, enabled: bool) -> Self {
        self.config.plan_cache = enabled;
        self
    }

    /// Pre-crafted worker pool size per function (0 = off).
    pub fn static_prewarm(mut self, per_function: usize) -> Self {
        self.config.static_prewarm = per_function;
        self
    }

    /// Whether per-request traces and run documents are recorded.
    pub fn record_traces(mut self, record: bool) -> Self {
        self.config.record_traces = record;
        self
    }

    /// Fault injection policy.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.config.faults = faults;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<PlatformConfig, ConfigError> {
        let c = self.config;
        if c.label.trim().is_empty() {
            return Err(ConfigError("label must not be empty".into()));
        }
        if self.speculation_touched && !c.policy.is_default() {
            return Err(ConfigError(format!(
                "policy `{}` does not read the xanadu speculation knobs; \
                 configure it via its own `--policy {}:param=val` parameters",
                c.policy.name(),
                c.policy.name()
            )));
        }
        PolicyRegistry::validate(&c.policy).map_err(|e| ConfigError(e.to_string()))?;
        if c.max_live == Some(0) {
            return Err(ConfigError(
                "max_live = 0 would make provisioning impossible".into(),
            ));
        }
        if !(0.0..=1.0).contains(&c.faults.rate) || !c.faults.rate.is_finite() {
            return Err(ConfigError(format!(
                "fault rate {} outside [0, 1]",
                c.faults.rate
            )));
        }
        if c.faults.rate > 0.0 && c.faults.timeout_ms <= 0.0 {
            return Err(ConfigError(
                "fault injection needs a positive invocation timeout".into(),
            ));
        }
        if !(0.0..=1.0).contains(&c.faults.host_failure_rate)
            || !c.faults.host_failure_rate.is_finite()
        {
            return Err(ConfigError(format!(
                "host failure rate {} outside [0, 1]",
                c.faults.host_failure_rate
            )));
        }
        if c.faults.host_failure_rate > 0.0
            && (c.faults.host_mtbf_ms <= 0.0 || c.faults.host_reboot_ms <= 0.0)
        {
            return Err(ConfigError(
                "host failure injection needs positive mtbf and reboot times".into(),
            ));
        }
        for t in &c.cluster.tenants {
            if t.name.trim().is_empty() {
                return Err(ConfigError("tenant names must not be empty".into()));
            }
            if t.weight <= 0.0 || !t.weight.is_finite() {
                return Err(ConfigError(format!(
                    "tenant `{}` weight {} must be positive",
                    t.name, t.weight
                )));
            }
        }
        if c.cluster.autoscale.enabled()
            && (c.cluster.autoscale.host_memory_mb == 0 || c.cluster.autoscale.boot_ms < 0.0)
        {
            return Err(ConfigError(
                "autoscaled hosts need memory and a non-negative boot time".into(),
            ));
        }
        Ok(c)
    }
}

impl PlatformConfig {
    /// A copy of this configuration under a different master seed. The
    /// service tier derives one seed per checkpoint epoch, so each
    /// epoch's platform samples fresh (but reproducible) latencies while
    /// every other knob stays fixed.
    pub fn reseeded(&self, seed: u64) -> Self {
        let mut config = self.clone();
        config.seed = seed;
        config
    }

    /// Starts a [`PlatformConfigBuilder`] from the default (JIT, seed 0)
    /// preset.
    pub fn builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder::default()
    }

    /// A Xanadu platform in the given execution mode with the paper's
    /// default pool policy.
    pub fn for_mode(mode: ExecutionMode, seed: u64) -> Self {
        PlatformConfig {
            label: mode.label().to_string(),
            speculation: SpeculationConfig::for_mode(mode),
            policy: PolicySpec::Xanadu,
            pool: PoolConfig::default(),
            seed,
            orchestration_overhead: Distribution::log_normal(20.0, 5.0)
                .expect("default overhead valid"),
            max_live: None,
            eviction_delay: Distribution::Constant { value_ms: 500.0 },
            discard_unused_after_run: true,
            use_learned_probabilities: false,
            cluster: ClusterConfig::default(),
            plan_cache: true,
            static_prewarm: 0,
            record_traces: true,
            faults: FaultConfig::default(),
        }
    }

    /// Builder-style label override.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::for_mode(ExecutionMode::Jit, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_mode_sets_label_and_mode() {
        let c = PlatformConfig::for_mode(ExecutionMode::Speculative, 7);
        assert_eq!(c.label, "xanadu-spec");
        assert_eq!(c.speculation.mode, ExecutionMode::Speculative);
        assert_eq!(c.seed, 7);
        assert!(c.max_live.is_none());
        assert!(c.discard_unused_after_run);
    }

    #[test]
    fn labeled_overrides() {
        let c = PlatformConfig::default().labeled("knative");
        assert_eq!(c.label, "knative");
    }

    #[test]
    fn default_is_jit() {
        assert_eq!(
            PlatformConfig::default().speculation.mode,
            ExecutionMode::Jit
        );
    }

    #[test]
    fn builder_matches_for_mode_preset_plus_overrides() {
        let built = PlatformConfig::builder()
            .for_mode(ExecutionMode::Speculative, 9)
            .plan_cache(false)
            .static_prewarm(2)
            .build()
            .unwrap();
        let mut poked = PlatformConfig::for_mode(ExecutionMode::Speculative, 9);
        poked.plan_cache = false;
        poked.static_prewarm = 2;
        assert_eq!(built, poked);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert!(PlatformConfig::builder().label("  ").build().is_err());
        assert!(PlatformConfig::builder().max_live(Some(0)).build().is_err());
        let mut bad = FaultConfig::with_rate(0.5, 1);
        bad.rate = 1.5;
        assert!(PlatformConfig::builder().faults(bad).build().is_err());
        let mut no_timeout = FaultConfig::with_rate(0.5, 1);
        no_timeout.timeout_ms = 0.0;
        assert!(PlatformConfig::builder()
            .faults(no_timeout)
            .build()
            .is_err());
        let bad_host = FaultConfig {
            host_failure_rate: 1.5,
            ..FaultConfig::default()
        };
        assert!(PlatformConfig::builder().faults(bad_host).build().is_err());
        let no_reboot = FaultConfig {
            host_failure_rate: 0.5,
            host_reboot_ms: 0.0,
            ..FaultConfig::default()
        };
        assert!(PlatformConfig::builder().faults(no_reboot).build().is_err());
        let bad_tenant = ClusterConfig {
            tenants: vec![TenantConfig {
                weight: 0.0,
                ..TenantConfig::new("t")
            }],
            ..ClusterConfig::uniform(PlacementPolicy::Affinity, 2, 1024)
        };
        assert!(PlatformConfig::builder()
            .cluster(bad_tenant)
            .build()
            .is_err());
        let bad_auto = ClusterConfig {
            autoscale: AutoscaleConfig {
                max_hosts: 2,
                host_memory_mb: 0,
                ..AutoscaleConfig::default()
            },
            ..ClusterConfig::default()
        };
        assert!(PlatformConfig::builder().cluster(bad_auto).build().is_err());
    }

    #[test]
    fn uniform_cluster_and_tenant_helpers() {
        let c = ClusterConfig::uniform(PlacementPolicy::Affinity, 4, 2048).with_tenants(2);
        assert_eq!(c.hosts.len(), 4);
        assert_eq!(c.hosts[3].name, "host-3");
        assert_eq!(c.hosts[0].memory_mb, 2048);
        assert_eq!(c.tenants.len(), 2);
        assert_eq!(c.tenants[1].name, "tenant-1");
        assert!(PlatformConfig::builder().cluster(c).build().is_ok());
    }

    #[test]
    fn builder_default_builds_the_default_config() {
        assert_eq!(
            PlatformConfig::builder().build().unwrap(),
            PlatformConfig::default()
        );
    }

    #[test]
    fn policy_field_is_skipped_when_default() {
        use serde::Serialize;
        let json = PlatformConfig::default().to_json();
        assert!(json.as_object().unwrap().get("policy").is_none());
        let learned = PlatformConfig::builder()
            .policy(PolicySpec::Mpc(xanadu_core::policy::MpcConfig::default()))
            .build()
            .unwrap();
        assert!(learned
            .to_json()
            .as_object()
            .unwrap()
            .get("policy")
            .is_some());
    }

    #[test]
    fn builder_rejects_speculation_knobs_on_learned_policies() {
        use xanadu_core::policy::{MpcConfig, RlConfig};
        use xanadu_core::speculation::MissPolicy;
        // Learned policy + explicit speculation override: typed error.
        assert!(PlatformConfig::builder()
            .policy(PolicySpec::Mpc(MpcConfig::default()))
            .miss_policy(MissPolicy::ReplanAndReuse)
            .build()
            .is_err());
        assert!(PlatformConfig::builder()
            .speculation(SpeculationConfig::default())
            .policy(PolicySpec::Rl(RlConfig::default()))
            .build()
            .is_err());
        // The same knobs are fine with the default policy, and a preset
        // reset clears the conflict.
        assert!(PlatformConfig::builder()
            .miss_policy(MissPolicy::ReplanAndReuse)
            .build()
            .is_ok());
        assert!(PlatformConfig::builder()
            .miss_policy(MissPolicy::ReplanAndReuse)
            .for_mode(ExecutionMode::Jit, 3)
            .policy(PolicySpec::Mpc(MpcConfig::default()))
            .build()
            .is_ok());
        // Malformed learned-policy parameters fail validation.
        assert!(PlatformConfig::builder()
            .policy(PolicySpec::Mpc(MpcConfig {
                horizon: 0,
                ..MpcConfig::default()
            }))
            .build()
            .is_err());
    }
}
