//! Platform configuration.

use crate::faults::FaultConfig;
use crate::hosts::{HostSpec, PlacementPolicy};
use serde::{Deserialize, Serialize};
use xanadu_core::speculation::{ExecutionMode, SpeculationConfig};
use xanadu_sandbox::PoolConfig;
use xanadu_simcore::Distribution;

/// Serde default for [`PlatformConfig::plan_cache`]: caching is on.
fn default_plan_cache() -> bool {
    true
}

/// The cluster the Dispatch Daemons run on: hosts plus the placement
/// policy the Dispatch Manager uses (Figure 11 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Placement policy for new workers.
    pub policy: PlacementPolicy,
    /// The hosts; empty means "the paper's single-machine testbed".
    pub hosts: Vec<HostSpec>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            policy: PlacementPolicy::LeastLoaded,
            hosts: Vec::new(),
        }
    }
}

/// Configuration of a [`Platform`](crate::Platform).
///
/// Besides Xanadu's own knobs (speculation mode, aggressiveness, pool
/// policy), the config exposes the platform-shape parameters that the
/// baseline emulations in `xanadu-baselines` override: per-hop
/// orchestration overhead, a live-worker cap with eviction delay (the
/// OpenWhisk warm-pool limitation of §2.3), and whether workflow structure
/// may be consulted at all (chain-agnostic baselines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Human-readable platform label used in experiment output.
    pub label: String,
    /// Speculation mode / aggressiveness / miss policy.
    pub speculation: SpeculationConfig,
    /// Warm-pool keep-alive and cap policy.
    pub pool: PoolConfig,
    /// Master RNG seed; every derived stream is deterministic in it.
    pub seed: u64,
    /// Per-hop orchestration latency (request routing, signalling): added
    /// between a trigger/parent-completion and the child invocation. The
    /// paper calls these "networking and signalling delays … orders of
    /// magnitude lower" than cold starts (§1).
    pub orchestration_overhead: Distribution,
    /// Maximum number of live workers (any state), or `None` for
    /// unlimited. When at the cap, provisioning must first evict an idle
    /// warm worker, paying `eviction_delay` — this models OpenWhisk's
    /// limited container pool (§2.3).
    pub max_live: Option<usize>,
    /// Latency of evicting a warm worker when `max_live` forces it.
    pub eviction_delay: Distribution,
    /// Kill speculated workers that never served once their request
    /// completes (per-request accounting hygiene; the paper discards
    /// mispredicted deployments, §3.2).
    pub discard_unused_after_run: bool,
    /// Whether planning consults learned (detector/EMA) probabilities
    /// before falling back to the workflow's declared probabilities.
    pub use_learned_probabilities: bool,
    /// The hosts the Dispatch Daemons manage.
    pub cluster: ClusterConfig,
    /// Memoize per-workflow deployment plans in the speculation engine,
    /// invalidated whenever the profiled metrics or learned branch
    /// probabilities change. On by default; the `abl` determinism checks
    /// turn it off to prove results are unchanged either way.
    #[serde(default = "default_plan_cache")]
    pub plan_cache: bool,
    /// Pre-crafted worker pool size per function (0 = off). When set, the
    /// platform keeps this many workers warm for *every* deployed
    /// function, replenishing after use and exempting them from
    /// keep-alive reclamation — the long-running pool approach of the
    /// paper's related work (§6), used by the `abl-pool` ablation as a
    /// cost foil for JIT speculation.
    pub static_prewarm: usize,
    /// Fault injection: rate, fault seed, timeout and retry policy.
    /// Disabled (rate 0) by default.
    #[serde(default)]
    pub faults: FaultConfig,
}

impl PlatformConfig {
    /// A Xanadu platform in the given execution mode with the paper's
    /// default pool policy.
    pub fn for_mode(mode: ExecutionMode, seed: u64) -> Self {
        PlatformConfig {
            label: mode.label().to_string(),
            speculation: SpeculationConfig::for_mode(mode),
            pool: PoolConfig::default(),
            seed,
            orchestration_overhead: Distribution::log_normal(20.0, 5.0)
                .expect("default overhead valid"),
            max_live: None,
            eviction_delay: Distribution::Constant { value_ms: 500.0 },
            discard_unused_after_run: true,
            use_learned_probabilities: false,
            cluster: ClusterConfig::default(),
            plan_cache: true,
            static_prewarm: 0,
            faults: FaultConfig::default(),
        }
    }

    /// Builder-style label override.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::for_mode(ExecutionMode::Jit, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_mode_sets_label_and_mode() {
        let c = PlatformConfig::for_mode(ExecutionMode::Speculative, 7);
        assert_eq!(c.label, "xanadu-spec");
        assert_eq!(c.speculation.mode, ExecutionMode::Speculative);
        assert_eq!(c.seed, 7);
        assert!(c.max_live.is_none());
        assert!(c.discard_unused_after_run);
    }

    #[test]
    fn labeled_overrides() {
        let c = PlatformConfig::default().labeled("knative");
        assert_eq!(c.label, "knative");
    }

    #[test]
    fn default_is_jit() {
        assert_eq!(
            PlatformConfig::default().speculation.mode,
            ExecutionMode::Jit
        );
    }
}
