//! Calibrated sandbox latency profiles.
//!
//! Every latency constant in this module is calibrated to a sentence of the
//! Xanadu paper (cited inline). The experiments reproduce the paper's
//! *shapes* — who wins, by what factor, where crossovers fall — so these
//! profiles are the single place absolute numbers come from.

use serde::{Deserialize, Serialize};
use xanadu_chain::IsolationLevel;
use xanadu_simcore::Distribution;

/// Cold-start latency components of one isolation level.
///
/// The paper decomposes cold start into "environment provisioning latency,
/// library download and setup latency, and process startup latency" (§1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationProfile {
    /// Environment provisioning (namespace/cgroup/VM image) latency.
    pub env_provision: Distribution,
    /// Library download and setup latency.
    pub library_setup: Distribution,
    /// Process / runtime startup latency.
    pub process_startup: Distribution,
    /// Fraction of one CPU core consumed while provisioning.
    pub provision_cpu_rate: f64,
    /// Fraction of one CPU core consumed by a warm idle worker.
    pub idle_cpu_rate: f64,
    /// Warm-start dispatch latency: queueing/signalling into an already
    /// warm worker.
    pub warm_dispatch: Distribution,
}

impl IsolationProfile {
    /// Mean total cold-start latency in milliseconds.
    pub fn mean_cold_start_ms(&self) -> f64 {
        self.env_provision.mean_ms() + self.library_setup.mean_ms() + self.process_startup.mean_ms()
    }
}

/// Models Docker's concurrent-provisioning bottleneck.
///
/// The paper observes "Docker's concurrent scalability issues" (§3.2,
/// citing Mohan et al. and SOCK): starting many containers at once slows
/// each start down. This is why Xanadu JIT — which spreads provisioning
/// over the workflow's lifetime — beats Xanadu Speculative by ~10% on
/// latency (§5.2). We model the effect as a multiplicative penalty on
/// provisioning latency that grows linearly with the number of in-flight
/// provisions beyond a free threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyPenalty {
    /// Number of concurrent provisions that incur no penalty.
    pub free_concurrency: u32,
    /// Additional latency fraction per concurrent provision beyond the
    /// threshold: factor = 1 + slope · max(0, inflight − free).
    pub slope: f64,
}

impl ConcurrencyPenalty {
    /// No penalty regardless of concurrency (isolates/processes, which the
    /// paper does not report scalability problems for).
    pub const NONE: ConcurrencyPenalty = ConcurrencyPenalty {
        free_concurrency: u32::MAX,
        slope: 0.0,
    };

    /// The latency multiplication factor when `inflight` provisions
    /// (including the new one) are running.
    pub fn factor(&self, inflight: u32) -> f64 {
        let excess = inflight.saturating_sub(self.free_concurrency);
        1.0 + self.slope * excess as f64
    }
}

/// The full latency model of a sandbox substrate: one profile per
/// isolation level plus the container concurrency penalty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SandboxProfiles {
    isolate: IsolationProfile,
    process: IsolationProfile,
    container: IsolationProfile,
    /// Concurrency penalty applied to container provisioning.
    pub container_concurrency: ConcurrencyPenalty,
}

impl SandboxProfiles {
    /// The calibrated default profiles.
    ///
    /// Calibration sources:
    /// * Containers: "cold start latency ~3000ms" (§1 Observation 2);
    ///   split into provisioning 1800 ms + library setup 800 ms + process
    ///   startup 400 ms, matching Figure 1's component stacking where
    ///   provisioning dominates.
    /// * Processes: "processes and threads (cold start latency ~1000ms)"
    ///   (§1) — calibrated at 1100 ms so containers sit at the reported
    ///   2.5×–2.9× overhead multiple (§2.3).
    /// * Isolates: Figure 7 places V8 isolates just below processes (both
    ///   boot a JS runtime; the isolate saves the container environment),
    ///   and Figure 16 reports a depth-10 isolate chain overhead of
    ///   1289 ms end-to-end with speculation — i.e. roughly one isolate
    ///   cold start of ~900 ms plus per-hop dispatch.
    /// * Warm dispatch: the "networking and signalling delays … orders of
    ///   magnitude lower as compared to the cold start latency" (§1).
    ///   Containers pay ≈100 ms for Docker network proxying into the
    ///   sandbox; processes and isolates are cheaper. These values also
    ///   set the memory-cost floor of on-demand (cold) provisioning, which
    ///   Figure 13b compares JIT against (JIT ≈ 2.18× Cold).
    /// * Container concurrency penalty: chosen so that ~10 simultaneous
    ///   container starts (Speculative on a depth-10 chain) lose ≈10%
    ///   versus spread-out starts, per §5.2's "overhead improvement of
    ///   10%" for JIT over Speculative.
    pub fn paper_defaults() -> Self {
        let dist = |mean: f64, std: f64| {
            Distribution::log_normal(mean, std).expect("calibration constants valid")
        };
        SandboxProfiles {
            isolate: IsolationProfile {
                env_provision: dist(80.0, 15.0),
                library_setup: dist(450.0, 60.0),
                process_startup: dist(370.0, 50.0),
                provision_cpu_rate: 0.5,
                idle_cpu_rate: 0.002,
                warm_dispatch: dist(10.0, 2.5),
            },
            process: IsolationProfile {
                env_provision: dist(280.0, 45.0),
                library_setup: dist(480.0, 70.0),
                process_startup: dist(340.0, 55.0),
                provision_cpu_rate: 0.8,
                idle_cpu_rate: 0.005,
                warm_dispatch: dist(40.0, 8.0),
            },
            container: IsolationProfile {
                env_provision: dist(1800.0, 220.0),
                library_setup: dist(800.0, 120.0),
                process_startup: dist(400.0, 70.0),
                provision_cpu_rate: 1.0,
                idle_cpu_rate: 0.01,
                warm_dispatch: dist(100.0, 20.0),
            },
            container_concurrency: ConcurrencyPenalty {
                free_concurrency: 2,
                slope: 0.04,
            },
        }
    }

    /// The profile for one isolation level.
    pub fn profile(&self, level: IsolationLevel) -> &IsolationProfile {
        match level {
            IsolationLevel::Isolate => &self.isolate,
            IsolationLevel::Process => &self.process,
            IsolationLevel::Container => &self.container,
        }
    }

    /// Mutable access, for experiment-specific recalibration.
    pub fn profile_mut(&mut self, level: IsolationLevel) -> &mut IsolationProfile {
        match level {
            IsolationLevel::Isolate => &mut self.isolate,
            IsolationLevel::Process => &mut self.process,
            IsolationLevel::Container => &mut self.container,
        }
    }

    /// The concurrency penalty applicable to `level` (only containers are
    /// penalized in the default model).
    pub fn concurrency_penalty(&self, level: IsolationLevel) -> ConcurrencyPenalty {
        match level {
            IsolationLevel::Container => self.container_concurrency,
            _ => ConcurrencyPenalty::NONE,
        }
    }
}

impl Default for SandboxProfiles {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_cold_start_magnitudes() {
        let p = SandboxProfiles::paper_defaults();
        let container = p.profile(IsolationLevel::Container).mean_cold_start_ms();
        let process = p.profile(IsolationLevel::Process).mean_cold_start_ms();
        let isolate = p.profile(IsolationLevel::Isolate).mean_cold_start_ms();
        assert!(
            (container - 3000.0).abs() < 100.0,
            "container ~3000ms (§1), got {container}"
        );
        assert!(
            (process - 1100.0).abs() < 120.0,
            "process ~1000-1100ms (§1), got {process}"
        );
        assert!(
            (800.0..1000.0).contains(&isolate),
            "isolate ~900ms (fig 16), got {isolate}"
        );
        // "2.5x to 2.9x increased overhead compared to processes and
        // isolates" (§2.3)
        for base in [process, isolate] {
            let ratio = container / base;
            assert!((2.4..3.6).contains(&ratio), "container ratio {ratio}");
        }
    }

    #[test]
    fn ordering_weakest_isolation_is_fastest() {
        let p = SandboxProfiles::paper_defaults();
        let mut last = 0.0;
        for level in IsolationLevel::ALL {
            let cs = p.profile(level).mean_cold_start_ms();
            assert!(cs > last, "{level} should be slower than weaker levels");
            last = cs;
        }
    }

    #[test]
    fn warm_dispatch_orders_of_magnitude_below_cold() {
        let p = SandboxProfiles::paper_defaults();
        for level in IsolationLevel::ALL {
            let prof = p.profile(level);
            assert!(prof.warm_dispatch.mean_ms() * 10.0 < prof.mean_cold_start_ms());
        }
    }

    #[test]
    fn concurrency_penalty_grows_past_threshold() {
        let c = ConcurrencyPenalty {
            free_concurrency: 2,
            slope: 0.1,
        };
        assert_eq!(c.factor(0), 1.0);
        assert_eq!(c.factor(2), 1.0);
        assert!((c.factor(3) - 1.1).abs() < 1e-12);
        assert!((c.factor(12) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn none_penalty_is_identity() {
        assert_eq!(ConcurrencyPenalty::NONE.factor(1_000_000), 1.0);
    }

    #[test]
    fn only_containers_penalized_by_default() {
        let p = SandboxProfiles::paper_defaults();
        assert_eq!(
            p.concurrency_penalty(IsolationLevel::Isolate).factor(100),
            1.0
        );
        assert_eq!(
            p.concurrency_penalty(IsolationLevel::Process).factor(100),
            1.0
        );
        assert!(p.concurrency_penalty(IsolationLevel::Container).factor(100) > 1.0);
    }

    #[test]
    fn profile_mut_allows_recalibration() {
        let mut p = SandboxProfiles::paper_defaults();
        p.profile_mut(IsolationLevel::Container).idle_cpu_rate = 0.5;
        assert_eq!(p.profile(IsolationLevel::Container).idle_cpu_rate, 0.5);
    }
}
