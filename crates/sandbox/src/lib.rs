//! # xanadu-sandbox
//!
//! The isolation-sandbox substrate of the Xanadu reproduction.
//!
//! The paper executes functions inside *workers* — sandboxes at one of
//! three isolation granularities (§4): V8-style isolates, OS processes, and
//! Docker-style containers. The dominant performance effect the paper
//! studies is the sandbox **cold start**: environment provisioning, library
//! download/setup, and process startup (§1, Figure 1).
//!
//! This crate provides:
//!
//! * [`profile`] — calibrated cold-start latency profiles per
//!   [`IsolationLevel`](xanadu_chain::IsolationLevel), each constant
//!   documented against the paper sentence it reproduces, plus the
//!   Docker-style *concurrent provisioning bottleneck* model.
//! * [`Worker`] / [`WorkerRecord`] — worker lifecycle
//!   (provisioning → warm → busy → dead) with the timeline bookkeeping the
//!   paper's cost model needs (`C_R` in §2.4: CPU and memory spent before a
//!   worker first executes).
//! * [`WorkerPool`] — warm-worker pools with keep-alive reclamation and an
//!   optional pool-size cap (modelling OpenWhisk's limited warm pool,
//!   §2.3).
//! * [`SimSandboxProvider`] — the discrete-event provider used by all
//!   simulated experiments.
//! * [`os_process`] — a real OS-process provider demonstrating the same
//!   orchestration code against actual processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod os_process;
mod pool;
pub mod profile;
mod provider;
mod worker;

pub use pool::{PoolConfig, WorkerPool};
pub use provider::{ColdStart, SandboxProvider, SimSandboxProvider};
pub use worker::{Worker, WorkerId, WorkerRecord, WorkerState};
