//! A real OS-process sandbox provider.
//!
//! The simulated provider reproduces the paper's latency *model*; this
//! module demonstrates the same worker lifecycle against real operating-
//! system processes, which is the "process" isolation level of §4. It is
//! used by the `os_process_demo` example and by integration tests to show
//! the orchestration concepts are not simulation-only.
//!
//! A worker here is a child process that performs a tiny amount of real
//! startup work (allocating its stack/heap, executing a shell) and then
//! sleeps until a request is dispatched, mimicking a warm function runtime
//! waiting for work.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::io;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A real process-backed worker.
///
/// The process is spawned at construction (the cold start) and killed on
/// [`shutdown`](Self::shutdown) or drop.
#[derive(Debug)]
pub struct OsProcessWorker {
    child: Child,
    function: String,
    cold_start: Duration,
}

impl OsProcessWorker {
    /// Spawns a new worker process for `function`, measuring the real cold
    /// start (process creation + shell startup).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from process spawning.
    pub fn spawn(function: impl Into<String>) -> io::Result<Self> {
        let function = function.into();
        let started = Instant::now();
        // `sh -c 'read x'` starts a real shell and then blocks on stdin —
        // a minimal stand-in for a function runtime waiting for a request.
        let child = Command::new("sh")
            .arg("-c")
            .arg("read _line")
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        let cold_start = started.elapsed();
        Ok(OsProcessWorker {
            child,
            function,
            cold_start,
        })
    }

    /// The hosted function's name.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The measured real cold-start latency of this worker.
    pub fn cold_start(&self) -> Duration {
        self.cold_start
    }

    /// Whether the underlying process is still alive.
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Dispatches a "request": executes `work` on the caller thread while
    /// the worker process stands in for the runtime, then returns the
    /// simulated handler result. Returns the end-to-end latency.
    pub fn invoke<T>(&mut self, work: impl FnOnce() -> T) -> (T, Duration) {
        let started = Instant::now();
        let out = work();
        (out, started.elapsed())
    }

    /// Terminates the worker process, waiting for it to exit.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from killing or waiting on the process.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.child.kill()?;
        self.child.wait()?;
        Ok(())
    }
}

impl Drop for OsProcessWorker {
    fn drop(&mut self) {
        // Best-effort teardown; destructors must not fail.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A tiny pre-warming pool of real process workers, demonstrating
/// speculative provisioning against a real substrate: workers are spawned
/// ahead of time on a background thread and handed out warm.
#[derive(Debug)]
pub struct OsProcessPrewarmer {
    rx: Receiver<io::Result<OsProcessWorker>>,
    _tx: Sender<io::Result<OsProcessWorker>>,
}

impl OsProcessPrewarmer {
    /// Starts pre-warming `count` workers for `function` in the background.
    pub fn start(function: &str, count: usize) -> Self {
        let (tx, rx) = bounded(count.max(1));
        let tx_bg = tx.clone();
        let function = function.to_string();
        std::thread::spawn(move || {
            for _ in 0..count {
                if tx_bg.send(OsProcessWorker::spawn(&function)).is_err() {
                    break;
                }
            }
        });
        OsProcessPrewarmer { rx, _tx: tx }
    }

    /// Takes the next pre-warmed worker, blocking up to `timeout`.
    ///
    /// Returns `None` on timeout, or the spawn error if pre-warming failed.
    pub fn take(&self, timeout: Duration) -> Option<io::Result<OsProcessWorker>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_measures_real_cold_start() {
        let mut w = OsProcessWorker::spawn("f").expect("spawn");
        assert!(w.cold_start() > Duration::ZERO);
        assert!(w.is_alive());
        assert_eq!(w.function(), "f");
        w.shutdown().expect("shutdown");
    }

    #[test]
    fn invoke_returns_result_and_latency() {
        let mut w = OsProcessWorker::spawn("adder").expect("spawn");
        let ((), d) = w.invoke(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(d >= Duration::from_millis(5));
        let (sum, _) = w.invoke(|| 2 + 3);
        assert_eq!(sum, 5);
    }

    #[test]
    fn shutdown_kills_process() {
        let w = OsProcessWorker::spawn("f").expect("spawn");
        w.shutdown().expect("shutdown");
    }

    #[test]
    fn drop_is_clean() {
        {
            let _w = OsProcessWorker::spawn("f").expect("spawn");
        } // dropped here; must not panic or leak zombies visibly
    }

    #[test]
    fn prewarmer_hands_out_warm_workers() {
        let pre = OsProcessPrewarmer::start("hot", 2);
        let w1 = pre
            .take(Duration::from_secs(5))
            .expect("first worker in time")
            .expect("spawn ok");
        let w2 = pre
            .take(Duration::from_secs(5))
            .expect("second worker in time")
            .expect("spawn ok");
        assert_eq!(w1.function(), "hot");
        assert_eq!(w2.function(), "hot");
        // Third take must time out — only two were requested.
        assert!(pre.take(Duration::from_millis(100)).is_none());
        w1.shutdown().unwrap();
        w2.shutdown().unwrap();
    }
}
