//! Worker lifecycle and timeline bookkeeping.
//!
//! A *worker* is one isolation sandbox hosting one function. The paper's
//! cost model (§2.4) charges a worker for everything it consumes **before**
//! it starts executing a request — CPU burnt during provisioning and idle
//! waiting, and memory held while idle — so each worker records the
//! timestamps needed to integrate those costs after the fact.

use serde::{Deserialize, Serialize};
use std::fmt;
use xanadu_chain::IsolationLevel;
use xanadu_simcore::{SimDuration, SimTime};

/// Unique identifier of a worker within one platform run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u64);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Lifecycle state of a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerState {
    /// Sandbox is being created; not yet able to serve.
    Provisioning,
    /// Ready and idle, counting against keep-alive.
    Warm,
    /// Currently executing a request.
    Busy,
    /// Torn down (reaped by keep-alive, killed on prediction miss, or
    /// platform shutdown).
    Dead,
}

/// A live worker tracked by the [`WorkerPool`](crate::WorkerPool).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    id: WorkerId,
    function: String,
    isolation: IsolationLevel,
    memory_mb: u32,
    state: WorkerState,
    provision_started: SimTime,
    ready_at: SimTime,
    /// When the worker first started executing a request, if ever.
    first_exec_at: Option<SimTime>,
    /// End of the most recent execution (basis for keep-alive expiry).
    last_active: SimTime,
    /// Total busy time accumulated.
    busy_total: SimDuration,
    /// Number of requests served.
    served: u64,
}

impl Worker {
    /// Creates a worker in the `Provisioning` state.
    pub fn provisioning(
        id: WorkerId,
        function: impl Into<String>,
        isolation: IsolationLevel,
        memory_mb: u32,
        now: SimTime,
        ready_at: SimTime,
    ) -> Self {
        Worker {
            id,
            function: function.into(),
            isolation,
            memory_mb,
            state: WorkerState::Provisioning,
            provision_started: now,
            ready_at,
            first_exec_at: None,
            last_active: ready_at,
            busy_total: SimDuration::ZERO,
            served: 0,
        }
    }

    /// Worker id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// The function this worker hosts.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The worker's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Memory allocated to the worker, in MB.
    pub fn memory_mb(&self) -> u32 {
        self.memory_mb
    }

    /// Current lifecycle state.
    pub fn state(&self) -> WorkerState {
        self.state
    }

    /// When provisioning began.
    pub fn provision_started(&self) -> SimTime {
        self.provision_started
    }

    /// When the sandbox became (or will become) warm.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// End of the most recent execution (or readiness time if never used);
    /// the keep-alive clock measures idleness from here.
    pub fn last_active(&self) -> SimTime {
        self.last_active
    }

    /// Number of requests this worker has served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Marks the provisioning as finished. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the worker is already dead.
    pub fn mark_ready(&mut self) {
        assert_ne!(self.state, WorkerState::Dead, "worker {} is dead", self.id);
        if self.state == WorkerState::Provisioning {
            self.state = WorkerState::Warm;
        }
    }

    /// Transitions to `Busy` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the worker is not `Warm` or `now` precedes readiness.
    pub fn begin_exec(&mut self, now: SimTime) {
        assert_eq!(
            self.state,
            WorkerState::Warm,
            "worker {} must be warm to execute",
            self.id
        );
        assert!(
            now >= self.ready_at,
            "execution at {now} precedes readiness {}",
            self.ready_at
        );
        if self.first_exec_at.is_none() {
            self.first_exec_at = Some(now);
        }
        self.state = WorkerState::Busy;
    }

    /// Transitions back to `Warm` at `now` after an execution that lasted
    /// since `begin_exec`.
    ///
    /// # Panics
    ///
    /// Panics if the worker is not `Busy`.
    pub fn end_exec(&mut self, began: SimTime, now: SimTime) {
        assert_eq!(self.state, WorkerState::Busy, "worker {} not busy", self.id);
        self.state = WorkerState::Warm;
        self.busy_total += now.saturating_since(began);
        self.last_active = now;
        self.served += 1;
    }

    /// Re-targets an unused worker to host a different function.
    ///
    /// The paper's future work (§7) proposes reusing speculatively deployed
    /// workers for functions on the alternate branch after a prediction
    /// miss, "provided they are of similar architectures" — the caller is
    /// responsible for checking isolation/memory compatibility.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the unchanged worker name if the worker has
    /// already served a request (its runtime state is function-specific) or
    /// is not warm.
    pub fn retarget(&mut self, function: impl Into<String>) -> Result<(), String> {
        if self.served > 0 || self.first_exec_at.is_some() {
            return Err(format!(
                "worker {} already served {}",
                self.id, self.function
            ));
        }
        if self.state != WorkerState::Warm {
            return Err(format!("worker {} not warm", self.id));
        }
        self.function = function.into();
        Ok(())
    }

    /// Kills the worker at `now`, producing its final accounting record.
    pub fn kill(mut self, now: SimTime) -> WorkerRecord {
        self.state = WorkerState::Dead;
        WorkerRecord::from_worker(&self, now)
    }

    /// Kills the worker at `now` because its sandbox crashed (fault
    /// injection). Identical to [`kill`](Self::kill) except the record is
    /// flagged, so fault accounting can separate crashes from orderly
    /// keep-alive/eviction reclamation.
    pub fn crash(self, now: SimTime) -> WorkerRecord {
        let mut record = self.kill(now);
        record.crashed = true;
        record
    }

    /// Aborts an in-flight execution at `now` (the invocation timed out or
    /// failed): the worker returns to `Warm` and its busy time is charged,
    /// but the request does **not** count as served — the sandbox produced
    /// no result.
    ///
    /// # Panics
    ///
    /// Panics if the worker is not `Busy`.
    pub fn abort_exec(&mut self, began: SimTime, now: SimTime) {
        assert_eq!(self.state, WorkerState::Busy, "worker {} not busy", self.id);
        self.state = WorkerState::Warm;
        self.busy_total += now.saturating_since(began);
        self.last_active = now;
    }

    /// Builds an accounting record *as of* `now` without killing the worker
    /// (used at end-of-experiment snapshots).
    pub fn snapshot(&self, now: SimTime) -> WorkerRecord {
        WorkerRecord::from_worker(self, now)
    }
}

/// Immutable accounting record of one worker's lifetime, the input to the
/// paper's `C_R` cost computations (§2.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerRecord {
    /// Worker id.
    pub id: WorkerId,
    /// Hosted function name.
    pub function: String,
    /// Isolation level.
    pub isolation: IsolationLevel,
    /// Memory allocation in MB.
    pub memory_mb: u32,
    /// Provisioning duration.
    pub provision_time: SimDuration,
    /// Idle time between readiness and first execution — the paper's
    /// "time before being put to use". Workers that never execute idle
    /// until death.
    pub prestart_idle: SimDuration,
    /// Total idle (non-busy) time after readiness over the whole lifetime.
    pub total_idle: SimDuration,
    /// Total busy time.
    pub busy_total: SimDuration,
    /// Requests served.
    pub served: u64,
    /// Whether the worker ever executed a request (false = wasted
    /// speculative deployment).
    pub ever_used: bool,
    /// Whether the worker died from an injected crash rather than orderly
    /// reclamation (keep-alive reaping, eviction, end-of-run teardown).
    #[serde(default)]
    pub crashed: bool,
}

impl WorkerRecord {
    fn from_worker(w: &Worker, now: SimTime) -> Self {
        let end = now.max(w.ready_at);
        let lifetime_after_ready = end.saturating_since(w.ready_at);
        let prestart_idle = match w.first_exec_at {
            Some(t) => t.saturating_since(w.ready_at),
            None => lifetime_after_ready,
        };
        WorkerRecord {
            id: w.id,
            function: w.function.clone(),
            isolation: w.isolation,
            memory_mb: w.memory_mb,
            provision_time: w.ready_at.saturating_since(w.provision_started),
            prestart_idle,
            total_idle: lifetime_after_ready.saturating_sub(w.busy_total),
            busy_total: w.busy_total,
            served: w.served,
            ever_used: w.first_exec_at.is_some(),
            crashed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(now_ms: u64, ready_ms: u64) -> Worker {
        Worker::provisioning(
            WorkerId(1),
            "f",
            IsolationLevel::Container,
            512,
            SimTime::from_millis(now_ms),
            SimTime::from_millis(ready_ms),
        )
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut w = mk(0, 3000);
        assert_eq!(w.state(), WorkerState::Provisioning);
        w.mark_ready();
        assert_eq!(w.state(), WorkerState::Warm);
        let t0 = SimTime::from_millis(3500);
        w.begin_exec(t0);
        assert_eq!(w.state(), WorkerState::Busy);
        let t1 = SimTime::from_millis(4000);
        w.end_exec(t0, t1);
        assert_eq!(w.state(), WorkerState::Warm);
        assert_eq!(w.served(), 1);
        assert_eq!(w.last_active(), t1);

        let rec = w.kill(SimTime::from_millis(5000));
        assert_eq!(rec.provision_time, SimDuration::from_millis(3000));
        assert_eq!(rec.prestart_idle, SimDuration::from_millis(500));
        assert_eq!(rec.busy_total, SimDuration::from_millis(500));
        // ready at 3000, dead at 5000 → 2000 after-ready, 500 busy.
        assert_eq!(rec.total_idle, SimDuration::from_millis(1500));
        assert!(rec.ever_used);
    }

    #[test]
    fn unused_worker_idles_until_death() {
        let mut w = mk(0, 1000);
        w.mark_ready();
        let rec = w.kill(SimTime::from_millis(9000));
        assert!(!rec.ever_used);
        assert_eq!(rec.prestart_idle, SimDuration::from_millis(8000));
        assert_eq!(rec.total_idle, SimDuration::from_millis(8000));
        assert_eq!(rec.served, 0);
    }

    #[test]
    fn killed_while_provisioning_has_zero_idle() {
        let w = mk(0, 3000);
        let rec = w.kill(SimTime::from_millis(1000));
        // Killed before ready: no after-ready lifetime.
        assert_eq!(rec.total_idle, SimDuration::ZERO);
        assert_eq!(rec.prestart_idle, SimDuration::ZERO);
        assert_eq!(rec.provision_time, SimDuration::from_millis(3000));
        assert!(!rec.ever_used);
    }

    #[test]
    fn first_exec_recorded_once() {
        let mut w = mk(0, 100);
        w.mark_ready();
        w.begin_exec(SimTime::from_millis(200));
        w.end_exec(SimTime::from_millis(200), SimTime::from_millis(300));
        w.begin_exec(SimTime::from_millis(400));
        w.end_exec(SimTime::from_millis(400), SimTime::from_millis(600));
        let rec = w.snapshot(SimTime::from_millis(600));
        assert_eq!(rec.prestart_idle, SimDuration::from_millis(100));
        assert_eq!(rec.busy_total, SimDuration::from_millis(300));
        assert_eq!(rec.served, 2);
    }

    #[test]
    fn mark_ready_is_idempotent() {
        let mut w = mk(0, 100);
        w.mark_ready();
        w.mark_ready();
        assert_eq!(w.state(), WorkerState::Warm);
    }

    #[test]
    #[should_panic(expected = "must be warm")]
    fn begin_exec_requires_warm() {
        let mut w = mk(0, 100);
        w.begin_exec(SimTime::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "precedes readiness")]
    fn begin_exec_before_ready_panics() {
        let mut w = mk(0, 1000);
        w.mark_ready();
        w.begin_exec(SimTime::from_millis(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(WorkerId(7).to_string(), "w7");
    }

    #[test]
    fn crash_flags_record() {
        let mut w = mk(0, 100);
        w.mark_ready();
        let rec = w.crash(SimTime::from_millis(500));
        assert!(rec.crashed);
        assert!(!rec.ever_used);
        // Orderly kill is unflagged.
        let rec = mk(0, 100).kill(SimTime::from_millis(500));
        assert!(!rec.crashed);
    }

    #[test]
    fn abort_exec_returns_worker_warm_without_serving() {
        let mut w = mk(0, 100);
        w.mark_ready();
        let t0 = SimTime::from_millis(200);
        w.begin_exec(t0);
        let t1 = SimTime::from_millis(900);
        w.abort_exec(t0, t1);
        assert_eq!(w.state(), WorkerState::Warm);
        assert_eq!(w.served(), 0);
        assert_eq!(w.last_active(), t1);
        // The aborted attempt's busy time is still charged.
        let rec = w.snapshot(t1);
        assert_eq!(rec.busy_total, SimDuration::from_millis(700));
        // The worker stays usable: a later execution succeeds normally.
        w.begin_exec(SimTime::from_millis(1000));
        w.end_exec(SimTime::from_millis(1000), SimTime::from_millis(1100));
        assert_eq!(w.served(), 1);
    }

    #[test]
    #[should_panic(expected = "not busy")]
    fn abort_exec_requires_busy() {
        let mut w = mk(0, 100);
        w.mark_ready();
        w.abort_exec(SimTime::from_millis(200), SimTime::from_millis(300));
    }

    #[test]
    fn retarget_unused_warm_worker() {
        let mut w = mk(0, 100);
        w.mark_ready();
        assert!(w.retarget("other").is_ok());
        assert_eq!(w.function(), "other");
    }

    #[test]
    fn retarget_rejects_used_or_unready_workers() {
        // Still provisioning: not warm.
        let mut w = mk(0, 100);
        assert!(w.retarget("other").is_err());
        // Already served: runtime state is function-specific.
        w.mark_ready();
        w.begin_exec(SimTime::from_millis(200));
        w.end_exec(SimTime::from_millis(200), SimTime::from_millis(300));
        let err = w.retarget("other").unwrap_err();
        assert!(err.contains("already served"), "{err}");
        assert_eq!(w.function(), "f");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn accounting_identities_hold(
            provision_ms in 1u64..10_000,
            idle_gaps in proptest::collection::vec(1u64..5_000, 0..6),
            exec_ms in 1u64..5_000,
        ) {
            // Build a worker that executes after each idle gap; check the
            // record's identities: prestart idle is the first gap, total
            // idle + busy equals the after-ready lifetime.
            let ready = SimTime::from_millis(provision_ms);
            let mut w = Worker::provisioning(
                WorkerId(0),
                "f",
                IsolationLevel::Process,
                256,
                SimTime::ZERO,
                ready,
            );
            w.mark_ready();
            let mut t = ready;
            for &gap in &idle_gaps {
                t += SimDuration::from_millis(gap);
                w.begin_exec(t);
                let end = t + SimDuration::from_millis(exec_ms);
                w.end_exec(t, end);
                t = end;
            }
            let death = t + SimDuration::from_millis(50);
            let record = w.kill(death);

            prop_assert_eq!(record.provision_time, SimDuration::from_millis(provision_ms));
            prop_assert_eq!(record.served, idle_gaps.len() as u64);
            prop_assert_eq!(record.ever_used, !idle_gaps.is_empty());
            let expected_prestart = match idle_gaps.first() {
                Some(&g) => SimDuration::from_millis(g),
                None => death.saturating_since(ready),
            };
            prop_assert_eq!(record.prestart_idle, expected_prestart);
            let lifetime = death.saturating_since(ready);
            prop_assert_eq!(record.total_idle + record.busy_total, lifetime);
        }
    }
}
