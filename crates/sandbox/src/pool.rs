//! Warm-worker pools with keep-alive reclamation.
//!
//! FaaS platforms keep finished workers warm for a platform-specific
//! interval so subsequent triggers can reuse them (§1). The pool implements
//! that policy plus two refinements the paper studies:
//!
//! * **keep-alive** — workers idle past the keep-alive window are reaped
//!   (ASF ≈ 10 min, ADF ≈ 20 min in §2.3; Xanadu's future work proposes
//!   seconds, §7).
//! * **warm-pool cap** — OpenWhisk "keeps a limited number of containers
//!   warm, even for consecutive requests, which explains the sudden
//!   increase in cold start latency for chain length 5" (§2.3). The cap
//!   bounds the number of simultaneously warm (idle) workers; exceeding it
//!   evicts the least-recently-used warm worker.

use crate::worker::{Worker, WorkerId, WorkerRecord, WorkerState};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};
use xanadu_simcore::{SimDuration, SimTime};

/// Configuration of a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// How long an idle warm worker is retained before being reaped.
    pub keep_alive: SimDuration,
    /// Maximum number of simultaneously *warm idle* workers, or `None` for
    /// unlimited. Busy and provisioning workers do not count.
    pub max_warm: Option<usize>,
}

impl Default for PoolConfig {
    /// Ten minutes keep-alive (the ASF reclamation interval measured in
    /// §2.3) and no warm cap.
    fn default() -> Self {
        PoolConfig {
            keep_alive: SimDuration::from_mins(10),
            max_warm: None,
        }
    }
}

/// Per-function buckets of live worker ids, one per lifecycle state.
///
/// `BTreeSet` keeps bucket iteration in ascending id order, so every
/// selection made over a bucket is deterministic regardless of hash-map
/// seeding.
#[derive(Debug, Clone, Default)]
struct FnIndex {
    warm: BTreeSet<WorkerId>,
    provisioning: BTreeSet<WorkerId>,
    busy: BTreeSet<WorkerId>,
}

impl FnIndex {
    fn bucket(&mut self, state: WorkerState) -> &mut BTreeSet<WorkerId> {
        match state {
            WorkerState::Provisioning => &mut self.provisioning,
            WorkerState::Warm => &mut self.warm,
            WorkerState::Busy => &mut self.busy,
            WorkerState::Dead => unreachable!("dead workers are never indexed"),
        }
    }

    fn is_empty(&self) -> bool {
        self.warm.is_empty() && self.provisioning.is_empty() && self.busy.is_empty()
    }
}

/// Tracks every worker of a platform run: live workers by state, warm
/// workers indexed by function for reuse, and the accounting records of
/// dead workers.
///
/// The pool maintains two secondary indexes so the dispatch hot path never
/// scans the full worker map: per-function, per-state id buckets
/// ([`FnIndex`]) and a global LRU order of warm workers keyed by
/// `(last_active, id)`. Both are kept consistent by routing every state
/// transition through the pool ([`mark_ready`](Self::mark_ready),
/// [`begin_exec`](Self::begin_exec), [`end_exec`](Self::end_exec),
/// [`retarget`](Self::retarget)) — which is why the pool hands out only
/// shared borrows of its workers.
#[derive(Debug, Clone, Default)]
pub struct WorkerPool {
    config: PoolConfig,
    next_id: u64,
    live: HashMap<WorkerId, Worker>,
    dead: Vec<WorkerRecord>,
    by_function: HashMap<String, FnIndex>,
    /// Warm workers ordered by `(last_active, id)`: LRU victims and
    /// keep-alive expiry scans read an ascending prefix.
    warm_by_activity: BTreeSet<(SimTime, WorkerId)>,
}

impl WorkerPool {
    /// Creates a pool with the given configuration.
    pub fn new(config: PoolConfig) -> Self {
        WorkerPool {
            config,
            next_id: 0,
            live: HashMap::new(),
            dead: Vec::new(),
            by_function: HashMap::new(),
            warm_by_activity: BTreeSet::new(),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Allocates a fresh worker id.
    pub fn next_worker_id(&mut self) -> WorkerId {
        let id = WorkerId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Registers a new worker, indexing it under its current state (tests
    /// and pre-warmed pools may insert already-warm workers).
    ///
    /// # Panics
    ///
    /// Panics if a worker with the same id is already tracked, or the
    /// worker is dead.
    pub fn insert(&mut self, worker: Worker) {
        let id = worker.id();
        let state = worker.state();
        assert_ne!(state, WorkerState::Dead, "cannot insert a dead worker");
        let function = worker.function().to_string();
        let last_active = worker.last_active();
        let prev = self.live.insert(id, worker);
        assert!(prev.is_none(), "worker id reused");
        self.by_function
            .entry(function)
            .or_default()
            .bucket(state)
            .insert(id);
        if state == WorkerState::Warm {
            self.warm_by_activity.insert((last_active, id));
        }
    }

    /// Borrow a live worker.
    pub fn get(&self, id: WorkerId) -> Option<&Worker> {
        self.live.get(&id)
    }

    /// Marks a provisioning worker ready (idempotent on already-warm
    /// workers), returning whether the id was live.
    pub fn mark_ready(&mut self, id: WorkerId) -> bool {
        let Some(w) = self.live.get_mut(&id) else {
            return false;
        };
        let was_provisioning = w.state() == WorkerState::Provisioning;
        w.mark_ready();
        if was_provisioning {
            let last_active = w.last_active();
            let fx = self
                .by_function
                .get_mut(w.function())
                .expect("live worker is indexed");
            fx.provisioning.remove(&id);
            fx.warm.insert(id);
            self.warm_by_activity.insert((last_active, id));
        }
        true
    }

    /// Transitions a warm worker to `Busy` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the id is not live or the worker is not warm.
    pub fn begin_exec(&mut self, id: WorkerId, now: SimTime) {
        let w = self.live.get_mut(&id).expect("executing worker is live");
        let before = w.last_active();
        w.begin_exec(now);
        let fx = self
            .by_function
            .get_mut(w.function())
            .expect("live worker is indexed");
        fx.warm.remove(&id);
        fx.busy.insert(id);
        self.warm_by_activity.remove(&(before, id));
    }

    /// Transitions a busy worker back to `Warm` at `now` after an
    /// execution that began at `began`.
    ///
    /// # Panics
    ///
    /// Panics if the id is not live or the worker is not busy.
    pub fn end_exec(&mut self, id: WorkerId, began: SimTime, now: SimTime) {
        let w = self.live.get_mut(&id).expect("worker live");
        w.end_exec(began, now);
        let fx = self
            .by_function
            .get_mut(w.function())
            .expect("live worker is indexed");
        fx.busy.remove(&id);
        fx.warm.insert(id);
        self.warm_by_activity.insert((now, id));
    }

    /// Re-targets an unused warm worker to `function` (see
    /// [`Worker::retarget`] for the eligibility rules), moving it between
    /// function buckets on success.
    ///
    /// # Errors
    ///
    /// Propagates [`Worker::retarget`] errors; unknown ids error too.
    pub fn retarget(&mut self, id: WorkerId, function: &str) -> Result<(), String> {
        let w = self
            .live
            .get_mut(&id)
            .ok_or_else(|| format!("worker {id} not live"))?;
        let old = w.function().to_string();
        w.retarget(function)?;
        if old != function {
            if let Some(fx) = self.by_function.get_mut(&old) {
                fx.warm.remove(&id);
                if fx.is_empty() {
                    self.by_function.remove(&old);
                }
            }
            self.by_function
                .entry(function.to_string())
                .or_default()
                .warm
                .insert(id);
            // `warm_by_activity` is keyed by (last_active, id), neither of
            // which changes on retarget.
        }
        Ok(())
    }

    /// Finds a warm idle worker for `function` whose keep-alive has not
    /// expired at `now`, preferring the most recently active (best cache
    /// locality, and matches typical platform LIFO reuse). Returns its id
    /// without changing its state.
    pub fn find_warm(&self, function: &str, now: SimTime) -> Option<WorkerId> {
        self.warm_workers(function)
            .filter(|w| {
                now >= w.ready_at()
                    && now.saturating_since(w.last_active()) <= self.config.keep_alive
            })
            .max_by_key(|w| (w.last_active(), w.id()))
            .map(Worker::id)
    }

    /// Iterates the warm workers of `function` (ascending id order).
    pub fn warm_workers(&self, function: &str) -> impl Iterator<Item = &Worker> {
        self.by_function
            .get(function)
            .into_iter()
            .flat_map(|fx| fx.warm.iter())
            .map(move |id| &self.live[id])
    }

    /// Iterates the provisioning workers of `function` (ascending id
    /// order).
    pub fn provisioning_workers(&self, function: &str) -> impl Iterator<Item = &Worker> {
        self.by_function
            .get(function)
            .into_iter()
            .flat_map(|fx| fx.provisioning.iter())
            .map(move |id| &self.live[id])
    }

    /// Number of warm workers of `function` (O(1)).
    pub fn warm_count(&self, function: &str) -> usize {
        self.by_function.get(function).map_or(0, |fx| fx.warm.len())
    }

    /// Number of provisioning workers of `function` (O(1)).
    pub fn provisioning_count(&self, function: &str) -> usize {
        self.by_function
            .get(function)
            .map_or(0, |fx| fx.provisioning.len())
    }

    /// Iterates all warm workers, least recently active first (ties by
    /// ascending id): LRU eviction and keep-alive expiry order.
    pub fn warm_lru(&self) -> impl Iterator<Item = &Worker> {
        self.warm_by_activity.iter().map(|(_, id)| &self.live[id])
    }

    /// Kills a live worker at `now`, moving its record to the dead list.
    /// Returns the record, or `None` if the id is unknown.
    pub fn kill(&mut self, id: WorkerId, now: SimTime) -> Option<WorkerRecord> {
        let worker = self.live.remove(&id)?;
        self.unindex(&worker);
        let record = worker.kill(now);
        self.dead.push(record.clone());
        Some(record)
    }

    /// Kills a live worker at `now` because its sandbox crashed, repairing
    /// both secondary indexes exactly as [`kill`](Self::kill) does; the
    /// record is flagged as crashed. A crash can hit a worker in any live
    /// state — provisioning (startup failure), warm (mid-warm loss) or busy
    /// (mid-invocation loss). Returns the record, or `None` if the id is
    /// unknown (e.g. the worker was already reclaimed).
    pub fn crash(&mut self, id: WorkerId, now: SimTime) -> Option<WorkerRecord> {
        let worker = self.live.remove(&id)?;
        self.unindex(&worker);
        let record = worker.crash(now);
        self.dead.push(record.clone());
        Some(record)
    }

    /// Aborts a busy worker's in-flight execution at `now` (timeout / fault
    /// recovery): the worker returns to `Warm` without counting the request
    /// as served. See [`Worker::abort_exec`].
    ///
    /// # Panics
    ///
    /// Panics if the id is not live or the worker is not busy.
    pub fn abort_exec(&mut self, id: WorkerId, began: SimTime, now: SimTime) {
        let w = self.live.get_mut(&id).expect("worker live");
        w.abort_exec(began, now);
        let fx = self
            .by_function
            .get_mut(w.function())
            .expect("live worker is indexed");
        fx.busy.remove(&id);
        fx.warm.insert(id);
        self.warm_by_activity.insert((now, id));
    }

    /// Verifies that the secondary indexes agree exactly with the live
    /// worker map: every live worker sits in precisely the bucket of its
    /// state, warm workers (and nothing else) appear in the LRU order under
    /// their current `last_active`, and no index entry dangles. Returns a
    /// description of the first inconsistency found.
    ///
    /// This is the oracle behind the pool's property tests; the platform's
    /// chaos suite relies on every transition — including crashes — keeping
    /// it green.
    pub fn check_index_consistency(&self) -> Result<(), String> {
        let mut indexed = 0usize;
        let mut warm_live = 0usize;
        for (id, w) in &self.live {
            let fx = self
                .by_function
                .get(w.function())
                .ok_or_else(|| format!("worker {id} has no FnIndex for `{}`", w.function()))?;
            let placement = (
                fx.provisioning.contains(id),
                fx.warm.contains(id),
                fx.busy.contains(id),
            );
            let expected = match w.state() {
                WorkerState::Provisioning => (true, false, false),
                WorkerState::Warm => (false, true, false),
                WorkerState::Busy => (false, false, true),
                WorkerState::Dead => return Err(format!("worker {id} is live but dead")),
            };
            if placement != expected {
                return Err(format!(
                    "worker {id} in state {:?} has bucket placement {placement:?}",
                    w.state()
                ));
            }
            let in_lru = self.warm_by_activity.contains(&(w.last_active(), *id));
            if (w.state() == WorkerState::Warm) != in_lru {
                return Err(format!(
                    "worker {id} state {:?} vs LRU membership {in_lru}",
                    w.state()
                ));
            }
            if w.state() == WorkerState::Warm {
                warm_live += 1;
            }
        }
        for (function, fx) in &self.by_function {
            if fx.is_empty() {
                return Err(format!("empty FnIndex retained for `{function}`"));
            }
            for id in fx
                .warm
                .iter()
                .chain(fx.provisioning.iter())
                .chain(fx.busy.iter())
            {
                indexed += 1;
                match self.live.get(id) {
                    None => return Err(format!("FnIndex `{function}` references dead {id}")),
                    Some(w) if w.function() != function => {
                        return Err(format!(
                            "FnIndex `{function}` holds {id} hosting `{}`",
                            w.function()
                        ))
                    }
                    Some(_) => {}
                }
            }
        }
        if indexed != self.live.len() {
            return Err(format!(
                "{indexed} indexed ids vs {} live workers",
                self.live.len()
            ));
        }
        if self.warm_by_activity.len() != warm_live {
            return Err(format!(
                "{} LRU entries vs {warm_live} warm workers",
                self.warm_by_activity.len()
            ));
        }
        Ok(())
    }

    /// Drops a (just removed, still non-dead) worker from both secondary
    /// indexes.
    fn unindex(&mut self, worker: &Worker) {
        let state = worker.state();
        if let Some(fx) = self.by_function.get_mut(worker.function()) {
            fx.bucket(state).remove(&worker.id());
            if fx.is_empty() {
                self.by_function.remove(worker.function());
            }
        }
        if state == WorkerState::Warm {
            self.warm_by_activity
                .remove(&(worker.last_active(), worker.id()));
        }
    }

    /// Reaps every warm worker whose idle time exceeded keep-alive at
    /// `now`, returning how many were reaped.
    pub fn reap_expired(&mut self, now: SimTime) -> usize {
        // Expiry is monotone in `last_active`, so the expired set is an
        // ascending prefix of the LRU order.
        let expired: Vec<WorkerId> = self
            .warm_by_activity
            .iter()
            .take_while(|(last_active, _)| {
                now.saturating_since(*last_active) > self.config.keep_alive
            })
            .map(|&(_, id)| id)
            .collect();
        let n = expired.len();
        for id in expired {
            self.kill(id, now);
        }
        n
    }

    /// Enforces the warm-pool cap at `now` by evicting least-recently-
    /// active warm workers until at most `max_warm` remain. Workers in
    /// `exempt` (e.g. claimed for an in-flight dispatch) are never
    /// evicted. Returns the evicted ids (empty when uncapped or under the
    /// cap).
    pub fn enforce_warm_cap(&mut self, now: SimTime, exempt: &HashSet<WorkerId>) -> Vec<WorkerId> {
        let Some(cap) = self.config.max_warm else {
            return Vec::new();
        };
        // LRU order already sorts by (last_active, id); only workers whose
        // readiness has arrived count toward the cap.
        let warm: Vec<WorkerId> = self
            .warm_by_activity
            .iter()
            .filter(|&&(_, id)| now >= self.live[&id].ready_at())
            .map(|&(_, id)| id)
            .collect();
        if warm.len() <= cap {
            return Vec::new();
        }
        let over = warm.len() - cap;
        // Exempt workers count toward the cap but cannot be evicted.
        let evict: Vec<WorkerId> = warm
            .into_iter()
            .filter(|id| !exempt.contains(id))
            .take(over)
            .collect();
        for &id in &evict {
            self.kill(id, now);
        }
        evict
    }

    /// Iterates over live workers.
    pub fn live_workers(&self) -> impl Iterator<Item = &Worker> {
        self.live.values()
    }

    /// Number of live workers (any state).
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Records of all dead workers so far.
    pub fn dead_records(&self) -> &[WorkerRecord] {
        &self.dead
    }

    /// Kills everything at `now` and returns the complete set of worker
    /// records (dead + just-killed), consuming the pool. Called at the end
    /// of an experiment to finalize accounting.
    pub fn drain(mut self, now: SimTime) -> Vec<WorkerRecord> {
        let ids: Vec<WorkerId> = self.live.keys().copied().collect();
        for id in ids {
            self.kill(id, now);
        }
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xanadu_chain::IsolationLevel;

    fn add_worker(pool: &mut WorkerPool, function: &str, ready_ms: u64) -> WorkerId {
        let id = pool.next_worker_id();
        let mut w = Worker::provisioning(
            id,
            function,
            IsolationLevel::Container,
            512,
            SimTime::ZERO,
            SimTime::from_millis(ready_ms),
        );
        w.mark_ready();
        pool.insert(w);
        id
    }

    #[test]
    fn find_warm_prefers_most_recently_active() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let a = add_worker(&mut pool, "f", 0);
        let b = add_worker(&mut pool, "f", 0);
        // Make b more recently active.
        let t0 = SimTime::from_millis(100);
        let t1 = SimTime::from_millis(200);
        pool.begin_exec(b, t0);
        pool.end_exec(b, t0, t1);
        assert_eq!(pool.find_warm("f", SimTime::from_millis(300)), Some(b));
        // Busy workers are not offered.
        pool.begin_exec(b, SimTime::from_millis(400));
        assert_eq!(pool.find_warm("f", SimTime::from_millis(500)), Some(a));
    }

    #[test]
    fn find_warm_respects_function_and_keepalive() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_secs(10),
            max_warm: None,
        });
        let _g = add_worker(&mut pool, "g", 0);
        assert_eq!(pool.find_warm("f", SimTime::from_secs(1)), None);
        let f = add_worker(&mut pool, "f", 0);
        assert_eq!(pool.find_warm("f", SimTime::from_secs(5)), Some(f));
        // Past keep-alive the worker is stale (even if not yet reaped).
        assert_eq!(pool.find_warm("f", SimTime::from_secs(11)), None);
    }

    #[test]
    fn find_warm_ignores_not_yet_ready_workers() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let id = pool.next_worker_id();
        let w = Worker::provisioning(
            id,
            "f",
            IsolationLevel::Container,
            512,
            SimTime::ZERO,
            SimTime::from_secs(3),
        );
        pool.insert(w);
        assert_eq!(pool.find_warm("f", SimTime::from_secs(1)), None);
    }

    #[test]
    fn reap_expired_kills_only_stale_warm_workers() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_secs(60),
            max_warm: None,
        });
        let _a = add_worker(&mut pool, "f", 0);
        let b = add_worker(&mut pool, "f", 0);
        // Keep b fresh.
        let t0 = SimTime::from_secs(50);
        pool.begin_exec(b, t0);
        pool.end_exec(b, t0, SimTime::from_secs(55));
        let reaped = pool.reap_expired(SimTime::from_secs(70));
        assert_eq!(reaped, 1);
        assert_eq!(pool.live_count(), 1);
        assert!(pool.get(b).is_some());
        assert_eq!(pool.dead_records().len(), 1);
    }

    #[test]
    fn warm_cap_evicts_lru() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_mins(10),
            max_warm: Some(2),
        });
        let a = add_worker(&mut pool, "f0", 0);
        let b = add_worker(&mut pool, "f1", 0);
        let c = add_worker(&mut pool, "f2", 0);
        // freshness: a oldest, then b, then c
        for (i, id) in [(1u64, b), (2, c)] {
            let t0 = SimTime::from_secs(i * 10);
            let t1 = SimTime::from_secs(i * 10 + 1);
            pool.begin_exec(id, t0);
            pool.end_exec(id, t0, t1);
        }
        let evicted = pool.enforce_warm_cap(SimTime::from_secs(100), &HashSet::new());
        assert_eq!(evicted, vec![a]);
        assert_eq!(pool.live_count(), 2);
    }

    #[test]
    fn warm_cap_ignores_busy_workers() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_mins(10),
            max_warm: Some(1),
        });
        let a = add_worker(&mut pool, "f0", 0);
        let _b = add_worker(&mut pool, "f1", 0);
        pool.begin_exec(a, SimTime::from_secs(1));
        // a is busy; only b is warm → under cap, nothing evicted.
        assert!(pool
            .enforce_warm_cap(SimTime::from_secs(2), &HashSet::new())
            .is_empty());
    }

    #[test]
    fn warm_cap_respects_exemptions() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_mins(10),
            max_warm: Some(1),
        });
        let a = add_worker(&mut pool, "f0", 0);
        let b = add_worker(&mut pool, "f1", 0);
        // a is the LRU victim, but it is exempt (claimed): b goes instead.
        let exempt: HashSet<WorkerId> = [a].into_iter().collect();
        let evicted = pool.enforce_warm_cap(SimTime::from_secs(100), &exempt);
        assert_eq!(evicted, vec![b]);
        assert!(pool.get(a).is_some());
    }

    #[test]
    fn uncapped_pool_never_evicts() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        for i in 0..10 {
            add_worker(&mut pool, &format!("f{i}"), 0);
        }
        assert!(pool
            .enforce_warm_cap(SimTime::from_secs(1), &HashSet::new())
            .is_empty());
        assert_eq!(pool.live_count(), 10);
    }

    #[test]
    fn drain_accounts_for_everything() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        add_worker(&mut pool, "f", 0);
        let b = add_worker(&mut pool, "g", 0);
        pool.kill(b, SimTime::from_secs(1));
        let records = pool.drain(SimTime::from_secs(2));
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn kill_unknown_worker_returns_none() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        assert!(pool.kill(WorkerId(99), SimTime::ZERO).is_none());
    }

    #[test]
    fn ids_are_unique() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let a = pool.next_worker_id();
        let b = pool.next_worker_id();
        assert_ne!(a, b);
    }

    /// Inserts a still-provisioning worker (no `mark_ready`).
    fn add_provisioning(pool: &mut WorkerPool, function: &str, ready_ms: u64) -> WorkerId {
        let id = pool.next_worker_id();
        pool.insert(Worker::provisioning(
            id,
            function,
            IsolationLevel::Container,
            512,
            SimTime::ZERO,
            SimTime::from_millis(ready_ms),
        ));
        id
    }

    #[test]
    fn index_tracks_state_transitions() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let a = add_provisioning(&mut pool, "f", 100);
        assert_eq!(
            pool.provisioning_workers("f")
                .map(Worker::id)
                .collect::<Vec<_>>(),
            vec![a]
        );
        assert_eq!(pool.warm_count("f"), 0);

        assert!(pool.mark_ready(a));
        assert_eq!(pool.provisioning_count("f"), 0);
        assert_eq!(
            pool.warm_workers("f").map(Worker::id).collect::<Vec<_>>(),
            vec![a]
        );
        assert_eq!(pool.warm_lru().map(Worker::id).collect::<Vec<_>>(), vec![a]);
        // Idempotent on already-warm workers; unknown ids report false.
        assert!(pool.mark_ready(a));
        assert!(!pool.mark_ready(WorkerId(99)));

        let t0 = SimTime::from_millis(200);
        pool.begin_exec(a, t0);
        assert_eq!(pool.warm_count("f"), 0);
        assert_eq!(pool.warm_lru().count(), 0);

        pool.end_exec(a, t0, SimTime::from_millis(300));
        assert_eq!(pool.warm_count("f"), 1);
        assert_eq!(
            pool.warm_lru().next().map(Worker::last_active),
            Some(SimTime::from_millis(300))
        );

        pool.kill(a, SimTime::from_millis(400));
        assert_eq!(pool.warm_count("f"), 0);
        assert_eq!(pool.warm_lru().count(), 0);
        assert_eq!(pool.live_count(), 0);
    }

    #[test]
    fn warm_lru_orders_least_recently_active_first() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let a = add_worker(&mut pool, "f", 0);
        let b = add_worker(&mut pool, "g", 0);
        let c = add_worker(&mut pool, "f", 0);
        let t0 = SimTime::from_millis(100);
        pool.begin_exec(a, t0);
        pool.end_exec(a, t0, SimTime::from_millis(200));
        // b and c idle since ready (last_active 0, tie broken by id), then a.
        assert_eq!(
            pool.warm_lru().map(Worker::id).collect::<Vec<_>>(),
            vec![b, c, a]
        );
    }

    #[test]
    fn crash_repairs_indexes_in_every_state() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        // Crash while provisioning.
        let a = add_provisioning(&mut pool, "f", 500);
        pool.crash(a, SimTime::from_millis(100));
        assert_eq!(pool.provisioning_count("f"), 0);
        assert!(pool.check_index_consistency().is_ok());
        // Crash while warm: FnIndex and warm-LRU must both forget it.
        let b = add_worker(&mut pool, "f", 0);
        pool.crash(b, SimTime::from_millis(200));
        assert_eq!(pool.warm_count("f"), 0);
        assert_eq!(pool.warm_lru().count(), 0);
        assert!(pool.check_index_consistency().is_ok());
        // Crash while busy.
        let c = add_worker(&mut pool, "f", 0);
        pool.begin_exec(c, SimTime::from_millis(300));
        pool.crash(c, SimTime::from_millis(400));
        assert_eq!(pool.live_count(), 0);
        assert!(pool.check_index_consistency().is_ok());
        // All three records are flagged.
        assert!(pool.dead_records().iter().all(|r| r.crashed));
        // Unknown ids are a no-op.
        assert!(pool.crash(WorkerId(99), SimTime::ZERO).is_none());
    }

    #[test]
    fn abort_exec_reindexes_as_warm() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let a = add_worker(&mut pool, "f", 0);
        let t0 = SimTime::from_millis(100);
        pool.begin_exec(a, t0);
        pool.abort_exec(a, t0, SimTime::from_millis(600));
        assert_eq!(pool.warm_count("f"), 1);
        assert_eq!(
            pool.warm_lru().next().map(Worker::last_active),
            Some(SimTime::from_millis(600))
        );
        assert_eq!(pool.get(a).unwrap().served(), 0);
        assert!(pool.check_index_consistency().is_ok());
        // The aborted worker is immediately reusable.
        assert_eq!(pool.find_warm("f", SimTime::from_millis(700)), Some(a));
    }

    #[test]
    fn retarget_moves_between_function_buckets() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let a = add_worker(&mut pool, "f", 0);
        assert!(pool.retarget(a, "g").is_ok());
        assert_eq!(pool.warm_count("f"), 0);
        assert_eq!(
            pool.warm_workers("g").map(Worker::id).collect::<Vec<_>>(),
            vec![a]
        );
        assert_eq!(pool.get(a).unwrap().function(), "g");
        // A served worker cannot be re-targeted, and the index is untouched.
        let t0 = SimTime::from_millis(10);
        pool.begin_exec(a, t0);
        pool.end_exec(a, t0, SimTime::from_millis(20));
        assert!(pool.retarget(a, "h").is_err());
        assert_eq!(pool.warm_count("g"), 1);
        assert!(pool.retarget(WorkerId(99), "h").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use xanadu_chain::IsolationLevel;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Drives the pool through an arbitrary sequence of lifecycle
        /// transitions — insert, mark-ready, begin/end/abort exec, retarget,
        /// kill, crash, keep-alive reaping and warm-cap eviction — and
        /// checks after every step that the FnIndex buckets and the warm-LRU
        /// agree exactly with the live worker map.
        #[test]
        fn indexes_agree_with_live_map_under_arbitrary_transitions(
            ops in proptest::collection::vec((0u8..9, 0u64..24, 1u64..2_000), 1..60),
            max_warm in 0usize..6,
        ) {
            let mut pool = WorkerPool::new(PoolConfig {
                keep_alive: SimDuration::from_secs(30),
                max_warm: if max_warm == 0 { None } else { Some(max_warm) },
            });
            let mut now = SimTime::ZERO;
            let mut ids: Vec<WorkerId> = Vec::new();
            let mut began: std::collections::HashMap<WorkerId, SimTime> =
                std::collections::HashMap::new();
            for (op, pick, advance_ms) in ops {
                now += SimDuration::from_millis(advance_ms);
                // Deterministically pick a live worker (if any) for the op.
                let target = if ids.is_empty() {
                    None
                } else {
                    Some(ids[(pick as usize) % ids.len()])
                };
                let target = target.filter(|id| pool.get(*id).is_some());
                match op {
                    0 => {
                        let id = pool.next_worker_id();
                        pool.insert(Worker::provisioning(
                            id,
                            format!("f{}", pick % 3),
                            IsolationLevel::Container,
                            512,
                            now,
                            now + SimDuration::from_millis(pick * 100),
                        ));
                        ids.push(id);
                    }
                    1 => {
                        if let Some(id) = target {
                            pool.mark_ready(id);
                        }
                    }
                    2 => {
                        if let Some(id) = target {
                            let w = pool.get(id).unwrap();
                            if w.state() == WorkerState::Warm {
                                let at = now.max(w.ready_at());
                                pool.begin_exec(id, at);
                                began.insert(id, at);
                            }
                        }
                    }
                    3 => {
                        if let Some(id) = target {
                            if pool.get(id).unwrap().state() == WorkerState::Busy {
                                let b = began.remove(&id).unwrap();
                                pool.end_exec(id, b, now.max(b));
                            }
                        }
                    }
                    4 => {
                        if let Some(id) = target {
                            if pool.get(id).unwrap().state() == WorkerState::Busy {
                                let b = began.remove(&id).unwrap();
                                pool.abort_exec(id, b, now.max(b));
                            }
                        }
                    }
                    5 => {
                        if let Some(id) = target {
                            pool.kill(id, now);
                        }
                    }
                    6 => {
                        // The new crash transition, from any live state.
                        if let Some(id) = target {
                            pool.crash(id, now);
                        }
                    }
                    7 => {
                        pool.reap_expired(now);
                    }
                    _ => {
                        pool.enforce_warm_cap(now, &HashSet::new());
                    }
                }
                if let Err(e) = pool.check_index_consistency() {
                    prop_assert!(false, "after op {op}: {e}");
                }
            }
            // Final teardown accounts for every worker ever created.
            let total = ids.len();
            let records = pool.drain(now);
            prop_assert_eq!(records.len(), total);
        }
    }
}
