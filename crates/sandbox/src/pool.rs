//! Warm-worker pools with keep-alive reclamation.
//!
//! FaaS platforms keep finished workers warm for a platform-specific
//! interval so subsequent triggers can reuse them (§1). The pool implements
//! that policy plus two refinements the paper studies:
//!
//! * **keep-alive** — workers idle past the keep-alive window are reaped
//!   (ASF ≈ 10 min, ADF ≈ 20 min in §2.3; Xanadu's future work proposes
//!   seconds, §7).
//! * **warm-pool cap** — OpenWhisk "keeps a limited number of containers
//!   warm, even for consecutive requests, which explains the sudden
//!   increase in cold start latency for chain length 5" (§2.3). The cap
//!   bounds the number of simultaneously warm (idle) workers; exceeding it
//!   evicts the least-recently-used warm worker.

use crate::worker::{Worker, WorkerId, WorkerRecord, WorkerState};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use xanadu_simcore::{SimDuration, SimTime};

/// Configuration of a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// How long an idle warm worker is retained before being reaped.
    pub keep_alive: SimDuration,
    /// Maximum number of simultaneously *warm idle* workers, or `None` for
    /// unlimited. Busy and provisioning workers do not count.
    pub max_warm: Option<usize>,
}

impl Default for PoolConfig {
    /// Ten minutes keep-alive (the ASF reclamation interval measured in
    /// §2.3) and no warm cap.
    fn default() -> Self {
        PoolConfig {
            keep_alive: SimDuration::from_mins(10),
            max_warm: None,
        }
    }
}

/// Tracks every worker of a platform run: live workers by state, warm
/// workers indexed by function for reuse, and the accounting records of
/// dead workers.
#[derive(Debug, Clone, Default)]
pub struct WorkerPool {
    config: PoolConfig,
    next_id: u64,
    live: HashMap<WorkerId, Worker>,
    dead: Vec<WorkerRecord>,
}

impl WorkerPool {
    /// Creates a pool with the given configuration.
    pub fn new(config: PoolConfig) -> Self {
        WorkerPool {
            config,
            next_id: 0,
            live: HashMap::new(),
            dead: Vec::new(),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Allocates a fresh worker id.
    pub fn next_worker_id(&mut self) -> WorkerId {
        let id = WorkerId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Registers a newly provisioning worker.
    ///
    /// # Panics
    ///
    /// Panics if a worker with the same id is already tracked.
    pub fn insert(&mut self, worker: Worker) {
        let prev = self.live.insert(worker.id(), worker);
        assert!(prev.is_none(), "worker id reused");
    }

    /// Borrow a live worker.
    pub fn get(&self, id: WorkerId) -> Option<&Worker> {
        self.live.get(&id)
    }

    /// Mutably borrow a live worker.
    pub fn get_mut(&mut self, id: WorkerId) -> Option<&mut Worker> {
        self.live.get_mut(&id)
    }

    /// Finds a warm idle worker for `function` whose keep-alive has not
    /// expired at `now`, preferring the most recently active (best cache
    /// locality, and matches typical platform LIFO reuse). Returns its id
    /// without changing its state.
    pub fn find_warm(&self, function: &str, now: SimTime) -> Option<WorkerId> {
        self.live
            .values()
            .filter(|w| {
                w.state() == WorkerState::Warm
                    && w.function() == function
                    && now >= w.ready_at()
                    && now.saturating_since(w.last_active()) <= self.config.keep_alive
            })
            .max_by_key(|w| (w.last_active(), w.id()))
            .map(|w| w.id())
    }

    /// Kills a live worker at `now`, moving its record to the dead list.
    /// Returns the record, or `None` if the id is unknown.
    pub fn kill(&mut self, id: WorkerId, now: SimTime) -> Option<WorkerRecord> {
        let worker = self.live.remove(&id)?;
        let record = worker.kill(now);
        self.dead.push(record.clone());
        Some(record)
    }

    /// Reaps every warm worker whose idle time exceeded keep-alive at
    /// `now`, returning how many were reaped.
    pub fn reap_expired(&mut self, now: SimTime) -> usize {
        let expired: Vec<WorkerId> = self
            .live
            .values()
            .filter(|w| {
                w.state() == WorkerState::Warm
                    && now.saturating_since(w.last_active()) > self.config.keep_alive
            })
            .map(Worker::id)
            .collect();
        let n = expired.len();
        for id in expired {
            self.kill(id, now);
        }
        n
    }

    /// Enforces the warm-pool cap at `now` by evicting least-recently-
    /// active warm workers until at most `max_warm` remain. Workers in
    /// `exempt` (e.g. claimed for an in-flight dispatch) are never
    /// evicted. Returns the evicted ids (empty when uncapped or under the
    /// cap).
    pub fn enforce_warm_cap(&mut self, now: SimTime, exempt: &HashSet<WorkerId>) -> Vec<WorkerId> {
        let Some(cap) = self.config.max_warm else {
            return Vec::new();
        };
        let warm: Vec<&Worker> = self
            .live
            .values()
            .filter(|w| w.state() == WorkerState::Warm && now >= w.ready_at())
            .collect();
        if warm.len() <= cap {
            return Vec::new();
        }
        let over = warm.len() - cap;
        // Exempt workers count toward the cap but cannot be evicted.
        let mut candidates: Vec<(SimTime, WorkerId)> = warm
            .iter()
            .filter(|w| !exempt.contains(&w.id()))
            .map(|w| (w.last_active(), w.id()))
            .collect();
        candidates.sort(); // oldest first
        let evict: Vec<WorkerId> = candidates
            .into_iter()
            .take(over)
            .map(|(_, id)| id)
            .collect();
        for &id in &evict {
            self.kill(id, now);
        }
        evict
    }

    /// Iterates over live workers.
    pub fn live_workers(&self) -> impl Iterator<Item = &Worker> {
        self.live.values()
    }

    /// Number of live workers (any state).
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Records of all dead workers so far.
    pub fn dead_records(&self) -> &[WorkerRecord] {
        &self.dead
    }

    /// Kills everything at `now` and returns the complete set of worker
    /// records (dead + just-killed), consuming the pool. Called at the end
    /// of an experiment to finalize accounting.
    pub fn drain(mut self, now: SimTime) -> Vec<WorkerRecord> {
        let ids: Vec<WorkerId> = self.live.keys().copied().collect();
        for id in ids {
            self.kill(id, now);
        }
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xanadu_chain::IsolationLevel;

    fn add_worker(pool: &mut WorkerPool, function: &str, ready_ms: u64) -> WorkerId {
        let id = pool.next_worker_id();
        let mut w = Worker::provisioning(
            id,
            function,
            IsolationLevel::Container,
            512,
            SimTime::ZERO,
            SimTime::from_millis(ready_ms),
        );
        w.mark_ready();
        pool.insert(w);
        id
    }

    #[test]
    fn find_warm_prefers_most_recently_active() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let a = add_worker(&mut pool, "f", 0);
        let b = add_worker(&mut pool, "f", 0);
        // Make b more recently active.
        let t0 = SimTime::from_millis(100);
        let t1 = SimTime::from_millis(200);
        pool.get_mut(b).unwrap().begin_exec(t0);
        pool.get_mut(b).unwrap().end_exec(t0, t1);
        assert_eq!(pool.find_warm("f", SimTime::from_millis(300)), Some(b));
        // Busy workers are not offered.
        pool.get_mut(b)
            .unwrap()
            .begin_exec(SimTime::from_millis(400));
        assert_eq!(pool.find_warm("f", SimTime::from_millis(500)), Some(a));
    }

    #[test]
    fn find_warm_respects_function_and_keepalive() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_secs(10),
            max_warm: None,
        });
        let _g = add_worker(&mut pool, "g", 0);
        assert_eq!(pool.find_warm("f", SimTime::from_secs(1)), None);
        let f = add_worker(&mut pool, "f", 0);
        assert_eq!(pool.find_warm("f", SimTime::from_secs(5)), Some(f));
        // Past keep-alive the worker is stale (even if not yet reaped).
        assert_eq!(pool.find_warm("f", SimTime::from_secs(11)), None);
    }

    #[test]
    fn find_warm_ignores_not_yet_ready_workers() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let id = pool.next_worker_id();
        let w = Worker::provisioning(
            id,
            "f",
            IsolationLevel::Container,
            512,
            SimTime::ZERO,
            SimTime::from_secs(3),
        );
        pool.insert(w);
        assert_eq!(pool.find_warm("f", SimTime::from_secs(1)), None);
    }

    #[test]
    fn reap_expired_kills_only_stale_warm_workers() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_secs(60),
            max_warm: None,
        });
        let _a = add_worker(&mut pool, "f", 0);
        let b = add_worker(&mut pool, "f", 0);
        // Keep b fresh.
        let t0 = SimTime::from_secs(50);
        pool.get_mut(b).unwrap().begin_exec(t0);
        pool.get_mut(b)
            .unwrap()
            .end_exec(t0, SimTime::from_secs(55));
        let reaped = pool.reap_expired(SimTime::from_secs(70));
        assert_eq!(reaped, 1);
        assert_eq!(pool.live_count(), 1);
        assert!(pool.get(b).is_some());
        assert_eq!(pool.dead_records().len(), 1);
    }

    #[test]
    fn warm_cap_evicts_lru() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_mins(10),
            max_warm: Some(2),
        });
        let a = add_worker(&mut pool, "f0", 0);
        let b = add_worker(&mut pool, "f1", 0);
        let c = add_worker(&mut pool, "f2", 0);
        // freshness: a oldest, then b, then c
        for (i, id) in [(1u64, b), (2, c)] {
            let t0 = SimTime::from_secs(i * 10);
            let t1 = SimTime::from_secs(i * 10 + 1);
            pool.get_mut(id).unwrap().begin_exec(t0);
            pool.get_mut(id).unwrap().end_exec(t0, t1);
        }
        let evicted = pool.enforce_warm_cap(SimTime::from_secs(100), &HashSet::new());
        assert_eq!(evicted, vec![a]);
        assert_eq!(pool.live_count(), 2);
    }

    #[test]
    fn warm_cap_ignores_busy_workers() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_mins(10),
            max_warm: Some(1),
        });
        let a = add_worker(&mut pool, "f0", 0);
        let _b = add_worker(&mut pool, "f1", 0);
        pool.get_mut(a).unwrap().begin_exec(SimTime::from_secs(1));
        // a is busy; only b is warm → under cap, nothing evicted.
        assert!(pool
            .enforce_warm_cap(SimTime::from_secs(2), &HashSet::new())
            .is_empty());
    }

    #[test]
    fn warm_cap_respects_exemptions() {
        let mut pool = WorkerPool::new(PoolConfig {
            keep_alive: SimDuration::from_mins(10),
            max_warm: Some(1),
        });
        let a = add_worker(&mut pool, "f0", 0);
        let b = add_worker(&mut pool, "f1", 0);
        // a is the LRU victim, but it is exempt (claimed): b goes instead.
        let exempt: HashSet<WorkerId> = [a].into_iter().collect();
        let evicted = pool.enforce_warm_cap(SimTime::from_secs(100), &exempt);
        assert_eq!(evicted, vec![b]);
        assert!(pool.get(a).is_some());
    }

    #[test]
    fn uncapped_pool_never_evicts() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        for i in 0..10 {
            add_worker(&mut pool, &format!("f{i}"), 0);
        }
        assert!(pool
            .enforce_warm_cap(SimTime::from_secs(1), &HashSet::new())
            .is_empty());
        assert_eq!(pool.live_count(), 10);
    }

    #[test]
    fn drain_accounts_for_everything() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        add_worker(&mut pool, "f", 0);
        let b = add_worker(&mut pool, "g", 0);
        pool.kill(b, SimTime::from_secs(1));
        let records = pool.drain(SimTime::from_secs(2));
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn kill_unknown_worker_returns_none() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        assert!(pool.kill(WorkerId(99), SimTime::ZERO).is_none());
    }

    #[test]
    fn ids_are_unique() {
        let mut pool = WorkerPool::new(PoolConfig::default());
        let a = pool.next_worker_id();
        let b = pool.next_worker_id();
        assert_ne!(a, b);
    }
}
