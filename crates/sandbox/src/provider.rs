//! Sandbox providers: sources of cold-start latency samples.
//!
//! The orchestration layers are written against the [`SandboxProvider`]
//! trait so the identical planner/speculator code drives both the
//! calibrated discrete-event provider used by the experiments and the real
//! OS-process provider in [`crate::os_process`].

use crate::profile::SandboxProfiles;
use serde::{Deserialize, Serialize};
use xanadu_chain::IsolationLevel;
use xanadu_simcore::{RngStream, SimDuration, SimTime};

/// One sampled cold start, decomposed per the paper's Figure 1 components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColdStart {
    /// Environment provisioning latency.
    pub env_provision: SimDuration,
    /// Library download/setup latency.
    pub library_setup: SimDuration,
    /// Process startup latency.
    pub process_startup: SimDuration,
    /// Multiplicative penalty that was applied for concurrent provisioning
    /// (1.0 = none).
    pub concurrency_factor: f64,
}

impl ColdStart {
    /// Total cold-start latency.
    pub fn total(&self) -> SimDuration {
        self.env_provision + self.library_setup + self.process_startup
    }
}

/// A source of sandbox provisioning and dispatch latencies.
///
/// Implementations must be deterministic given their construction seed so
/// simulated experiments reproduce exactly.
pub trait SandboxProvider {
    /// Samples a cold start for `level` beginning at `now`. The provider
    /// tracks in-flight provisions internally to apply concurrency
    /// penalties.
    fn cold_start(&mut self, level: IsolationLevel, now: SimTime) -> ColdStart;

    /// Samples the warm-dispatch latency (queueing/signalling into an
    /// already warm worker).
    fn warm_dispatch(&mut self, level: IsolationLevel) -> SimDuration;

    /// Fraction of a CPU core consumed while provisioning a sandbox of
    /// `level`.
    fn provision_cpu_rate(&self, level: IsolationLevel) -> f64;

    /// Fraction of a CPU core consumed by a warm idle sandbox of `level`.
    fn idle_cpu_rate(&self, level: IsolationLevel) -> f64;

    /// Mean cold-start latency for planning purposes (ms).
    fn mean_cold_start_ms(&self, level: IsolationLevel) -> f64;
}

/// The calibrated simulated provider.
///
/// Latencies are drawn from [`SandboxProfiles`]; container provisioning is
/// slowed when many provisions are in flight (the Docker concurrent-
/// scalability bottleneck of §3.2/§5.2 — this is what makes Xanadu JIT
/// slightly *faster* than Xanadu Speculative in Figure 12a).
///
/// # Example
///
/// ```
/// use xanadu_sandbox::{SandboxProvider, SimSandboxProvider};
/// use xanadu_chain::IsolationLevel;
/// use xanadu_simcore::SimTime;
///
/// let mut p = SimSandboxProvider::new(42);
/// let cs = p.cold_start(IsolationLevel::Container, SimTime::ZERO);
/// let ms = cs.total().as_millis_f64();
/// assert!(ms > 2000.0 && ms < 4500.0, "container cold start ≈3000ms, got {ms}");
/// ```
#[derive(Debug, Clone)]
pub struct SimSandboxProvider {
    profiles: SandboxProfiles,
    rng: RngStream,
    /// Ready times of provisions still in flight, used to count concurrency.
    inflight: Vec<SimTime>,
}

impl SimSandboxProvider {
    /// Creates a provider with the paper-calibrated profiles and the given
    /// RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_profiles(SandboxProfiles::paper_defaults(), seed)
    }

    /// Creates a provider with custom profiles.
    pub fn with_profiles(profiles: SandboxProfiles, seed: u64) -> Self {
        SimSandboxProvider {
            profiles,
            rng: RngStream::derive(seed, "sandbox-provider"),
            inflight: Vec::new(),
        }
    }

    /// The provider's profiles.
    pub fn profiles(&self) -> &SandboxProfiles {
        &self.profiles
    }

    /// Mutable profiles, for experiment-specific recalibration.
    pub fn profiles_mut(&mut self) -> &mut SandboxProfiles {
        &mut self.profiles
    }

    /// Number of provisions still in flight at `now` (after garbage-
    /// collecting finished ones).
    pub fn inflight_at(&mut self, now: SimTime) -> u32 {
        self.inflight.retain(|&ready| ready > now);
        self.inflight.len() as u32
    }
}

impl SandboxProvider for SimSandboxProvider {
    fn cold_start(&mut self, level: IsolationLevel, now: SimTime) -> ColdStart {
        let concurrent = self.inflight_at(now) + 1; // include this provision
        let factor = self.profiles.concurrency_penalty(level).factor(concurrent);
        let prof = self.profiles.profile(level);
        let env = prof.env_provision.sample(&mut self.rng).mul_f64(factor);
        let lib = prof.library_setup.sample(&mut self.rng).mul_f64(factor);
        let start = prof.process_startup.sample(&mut self.rng).mul_f64(factor);
        let cs = ColdStart {
            env_provision: env,
            library_setup: lib,
            process_startup: start,
            concurrency_factor: factor,
        };
        self.inflight.push(now + cs.total());
        cs
    }

    fn warm_dispatch(&mut self, level: IsolationLevel) -> SimDuration {
        self.profiles
            .profile(level)
            .warm_dispatch
            .sample(&mut self.rng)
    }

    fn provision_cpu_rate(&self, level: IsolationLevel) -> f64 {
        self.profiles.profile(level).provision_cpu_rate
    }

    fn idle_cpu_rate(&self, level: IsolationLevel) -> f64 {
        self.profiles.profile(level).idle_cpu_rate
    }

    fn mean_cold_start_ms(&self, level: IsolationLevel) -> f64 {
        self.profiles.profile(level).mean_cold_start_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimSandboxProvider::new(7);
        let mut b = SimSandboxProvider::new(7);
        for _ in 0..10 {
            assert_eq!(
                a.cold_start(IsolationLevel::Container, SimTime::ZERO),
                b.cold_start(IsolationLevel::Container, SimTime::ZERO)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimSandboxProvider::new(1);
        let mut b = SimSandboxProvider::new(2);
        assert_ne!(
            a.cold_start(IsolationLevel::Process, SimTime::ZERO),
            b.cold_start(IsolationLevel::Process, SimTime::ZERO)
        );
    }

    #[test]
    fn cold_start_magnitudes_match_calibration() {
        let mut p = SimSandboxProvider::new(3);
        let mut means = std::collections::HashMap::new();
        for level in IsolationLevel::ALL {
            let mut total = 0.0;
            for i in 0..200 {
                // Space provisions far apart so no concurrency penalty.
                let t = SimTime::from_secs(i * 100);
                total += p.cold_start(level, t).total().as_millis_f64();
            }
            means.insert(level, total / 200.0);
        }
        assert!((means[&IsolationLevel::Container] - 3000.0).abs() < 200.0);
        assert!((means[&IsolationLevel::Process] - 1100.0).abs() < 120.0);
        assert!((means[&IsolationLevel::Isolate] - 900.0).abs() < 100.0);
    }

    #[test]
    fn concurrent_container_starts_are_penalized() {
        let mut p = SimSandboxProvider::new(5);
        // Ten simultaneous provisions: factors should rise monotonically.
        let factors: Vec<f64> = (0..10)
            .map(|_| {
                p.cold_start(IsolationLevel::Container, SimTime::ZERO)
                    .concurrency_factor
            })
            .collect();
        assert_eq!(factors[0], 1.0);
        assert!(factors[9] > factors[0]);
        for w in factors.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn inflight_expires_over_time() {
        let mut p = SimSandboxProvider::new(6);
        for _ in 0..5 {
            p.cold_start(IsolationLevel::Container, SimTime::ZERO);
        }
        assert!(p.inflight_at(SimTime::ZERO) >= 5);
        // Far in the future everything finished.
        assert_eq!(p.inflight_at(SimTime::from_mins(10)), 0);
        // A fresh provision then gets no penalty.
        let cs = p.cold_start(IsolationLevel::Container, SimTime::from_mins(10));
        assert_eq!(cs.concurrency_factor, 1.0);
    }

    #[test]
    fn isolates_never_penalized() {
        let mut p = SimSandboxProvider::new(8);
        for _ in 0..50 {
            let cs = p.cold_start(IsolationLevel::Isolate, SimTime::ZERO);
            assert_eq!(cs.concurrency_factor, 1.0);
        }
    }

    #[test]
    fn warm_dispatch_is_small() {
        // The container profile draws warm dispatch from roughly
        // Normal(100ms, 20ms), so bound the draw well above the mean —
        // the point is that dispatch stays orders of magnitude below the
        // multi-second cold starts, not that it lands under the mean.
        let mut p = SimSandboxProvider::new(9);
        for level in IsolationLevel::ALL {
            let d = p.warm_dispatch(level).as_millis_f64();
            assert!(d < 250.0, "{level}: {d}ms");
            assert!(d * 4.0 < p.mean_cold_start_ms(level), "{level}: {d}ms");
        }
    }

    #[test]
    fn rates_and_planning_means_exposed() {
        let p = SimSandboxProvider::new(10);
        assert!(p.provision_cpu_rate(IsolationLevel::Container) > 0.0);
        assert!(
            p.idle_cpu_rate(IsolationLevel::Container)
                < p.provision_cpu_rate(IsolationLevel::Container)
        );
        assert!(p.mean_cold_start_ms(IsolationLevel::Container) > 2000.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut p = SimSandboxProvider::new(11);
        let cs = p.cold_start(IsolationLevel::Process, SimTime::ZERO);
        assert_eq!(
            cs.total(),
            cs.env_provision + cs.library_setup + cs.process_startup
        );
    }
}
