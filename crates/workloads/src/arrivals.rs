//! Request arrival processes used by the paper's experiments.
//!
//! * [`decreasing_ap`] — Figure 5's probe schedule: inter-arrival times in
//!   a decreasing arithmetic progression, 60 min down to 10 min in 10 min
//!   steps, then to 30 min in 5 min steps, then to 1 min in 1 min steps.
//! * [`uniform_random`] — Figure 6's lightly loaded trace: inter-arrival
//!   times drawn from U(0, 60) minutes (~2 requests/hour) over a 16 h run.
//! * [`poisson`] — Poisson arrivals for load experiments.
//! * [`closed_loop`] — back-to-back triggers (the "10 requests in cold
//!   start condition" pattern of §5.1, where each request is fired after
//!   the previous completes / pool is cleared).

use xanadu_simcore::{RngStream, SimDuration, SimTime};

/// Figure 5's decreasing arithmetic progression of inter-arrival times.
///
/// Returns the absolute trigger times starting at `start`: the first
/// request fires at `start`, the next after 60 min, then the gap decreases
/// by 10 min per request until it reaches 30 min, by 5 min until 10 min,
/// and by 1 min until 1 min (inclusive).
///
/// # Example
///
/// ```
/// use xanadu_simcore::SimTime;
/// use xanadu_workloads::arrivals::decreasing_ap;
///
/// let times = decreasing_ap(SimTime::ZERO);
/// assert_eq!(times[0], SimTime::ZERO);
/// assert_eq!(times[1], SimTime::from_mins(60));
/// assert_eq!(times[2], SimTime::from_mins(110)); // +50
/// ```
pub fn decreasing_ap(start: SimTime) -> Vec<SimTime> {
    let mut gaps_min = Vec::new();
    let mut gap = 60i64;
    while gap >= 1 {
        gaps_min.push(gap as u64);
        gap -= if gap > 30 {
            10
        } else if gap > 10 {
            5
        } else {
            1
        };
    }
    let mut times = vec![start];
    let mut t = start;
    for g in gaps_min {
        t += SimDuration::from_mins(g);
        times.push(t);
    }
    times
}

/// Figure 6's lightly loaded trace: inter-arrival times drawn from
/// U(0, 60) minutes until `duration` has elapsed (~2 requests/hour over
/// the paper's ~16 h experiment).
pub fn uniform_random(start: SimTime, duration: SimDuration, seed: u64) -> Vec<SimTime> {
    let mut rng = RngStream::derive(seed, "arrivals-uniform");
    let mut times = Vec::new();
    let mut t = start;
    let end = start + duration;
    loop {
        let gap_min = rng.next_f64() * 60.0;
        t += SimDuration::from_millis_f64(gap_min * 60_000.0);
        if t >= end {
            break;
        }
        times.push(t);
    }
    times
}

/// Poisson arrivals with the given rate (requests per hour) over
/// `duration`.
pub fn poisson(
    start: SimTime,
    duration: SimDuration,
    rate_per_hour: f64,
    seed: u64,
) -> Vec<SimTime> {
    let mut rng = RngStream::derive(seed, "arrivals-poisson");
    let mut times = Vec::new();
    if rate_per_hour <= 0.0 {
        return times;
    }
    let mean_gap_ms = 3_600_000.0 / rate_per_hour;
    let mut t = start;
    let end = start + duration;
    loop {
        t += SimDuration::from_millis_f64(rng.exponential(mean_gap_ms));
        if t >= end {
            break;
        }
        times.push(t);
    }
    times
}

/// Closed-loop triggers: `count` requests spaced `gap` apart (wide enough
/// gaps emulate the paper's independent cold-start triggers).
pub fn closed_loop(start: SimTime, count: usize, gap: SimDuration) -> Vec<SimTime> {
    (0..count).map(|i| start + gap * i as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decreasing_ap_schedule_matches_paper() {
        let times = decreasing_ap(SimTime::ZERO);
        let gaps: Vec<u64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_micros() / 60_000_000)
            .collect();
        // 60,50,40,30 then 25,20,15,10 then 9..1.
        assert_eq!(
            gaps,
            vec![60, 50, 40, 30, 25, 20, 15, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1]
        );
        // The schedule crosses both keep-alive cliffs (10 and 20 minutes).
        assert!(gaps.contains(&10) && gaps.contains(&20));
    }

    #[test]
    fn uniform_random_rate_is_about_two_per_hour() {
        let times = uniform_random(SimTime::ZERO, SimDuration::from_mins(16 * 60), 42);
        let per_hour = times.len() as f64 / 16.0;
        assert!((1.2..3.2).contains(&per_hour), "rate {per_hour}/h");
        // Sorted and within range.
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn uniform_random_deterministic_in_seed() {
        let a = uniform_random(SimTime::ZERO, SimDuration::from_mins(600), 1);
        let b = uniform_random(SimTime::ZERO, SimDuration::from_mins(600), 1);
        let c = uniform_random(SimTime::ZERO, SimDuration::from_mins(600), 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_rate_and_edge_cases() {
        let times = poisson(SimTime::ZERO, SimDuration::from_mins(60 * 100), 6.0, 9);
        let per_hour = times.len() as f64 / 100.0;
        assert!((5.0..7.0).contains(&per_hour), "rate {per_hour}/h");
        assert!(poisson(SimTime::ZERO, SimDuration::from_mins(60), 0.0, 9).is_empty());
    }

    #[test]
    fn closed_loop_spacing() {
        let times = closed_loop(SimTime::from_secs(5), 3, SimDuration::from_mins(20));
        assert_eq!(
            times,
            vec![
                SimTime::from_secs(5),
                SimTime::from_secs(5 + 1200),
                SimTime::from_secs(5 + 2400)
            ]
        );
        assert!(closed_loop(SimTime::ZERO, 0, SimDuration::ZERO).is_empty());
    }
}
