//! Azure-style mixed-popularity workload (the §2.3 characterization).
//!
//! The paper motivates its keep-alive analysis with the Azure functions
//! trace (Shahrad et al.): "~45% of all functions being invoked once or
//! less per hour — a significant proportion of the workload being invoked
//! infrequently", so "the request inter-arrival time … is expected to be
//! larger than a platform's keep-alive time". This module synthesizes a
//! fleet of workflows whose invocation rates follow that skew: a heavy
//! tail of rare workflows plus a small popular head.

use serde::{Deserialize, Serialize};
use xanadu_simcore::{RngStream, SimDuration, SimTime};

/// Configuration of the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AzureTraceConfig {
    /// Number of distinct workflows in the fleet.
    pub workflows: usize,
    /// Fraction of workflows that are *rare*: mean rate ≤ 1 invocation per
    /// hour (the paper quotes ≈45 %).
    pub rare_fraction: f64,
    /// Mean rate of rare workflows, in invocations/hour (≤ 1).
    pub rare_rate_per_hour: f64,
    /// Mean rate of popular workflows, in invocations/hour.
    pub popular_rate_per_hour: f64,
    /// Trace duration.
    pub duration: SimDuration,
}

impl Default for AzureTraceConfig {
    /// The paper's characterization: 45 % rare (≈0.7/h) against a popular
    /// head (≈30/h), over 16 hours (the Figure 6 horizon).
    fn default() -> Self {
        AzureTraceConfig {
            workflows: 20,
            rare_fraction: 0.45,
            rare_rate_per_hour: 0.7,
            popular_rate_per_hour: 30.0,
            duration: SimDuration::from_mins(16 * 60),
        }
    }
}

/// One workflow's arrival schedule within the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowTrace {
    /// Stable identifier (`wf0`, `wf1`, …).
    pub name: String,
    /// Whether this workflow is in the rare (≤ 1/h) class.
    pub rare: bool,
    /// Absolute trigger times, ascending.
    pub arrivals: Vec<SimTime>,
}

impl WorkflowTrace {
    /// The workflow's realized invocation rate, per hour.
    pub fn rate_per_hour(&self, duration: SimDuration) -> f64 {
        self.arrivals.len() as f64 / (duration.as_secs_f64() / 3600.0)
    }
}

/// Generates the synthetic trace, deterministic in `seed`.
///
/// Each workflow's arrivals are a Poisson process at its class rate;
/// classes are assigned so that `rare_fraction` of the fleet is rare.
///
/// # Example
///
/// ```
/// use xanadu_workloads::azure::{generate_trace, AzureTraceConfig};
///
/// let trace = generate_trace(&AzureTraceConfig::default(), 7);
/// assert_eq!(trace.len(), 20);
/// let rare = trace.iter().filter(|t| t.rare).count();
/// assert_eq!(rare, 9, "45% of 20 workflows");
/// ```
pub fn generate_trace(config: &AzureTraceConfig, seed: u64) -> Vec<WorkflowTrace> {
    let rng = RngStream::derive(seed, "azure-trace");
    let rare_count = (config.workflows as f64 * config.rare_fraction).round() as usize;
    (0..config.workflows)
        .map(|i| {
            let rare = i < rare_count;
            let rate = if rare {
                config.rare_rate_per_hour
            } else {
                config.popular_rate_per_hour
            };
            let mut wf_rng = rng.child(i as u64);
            let mut arrivals = Vec::new();
            if rate > 0.0 {
                let mean_gap_ms = 3_600_000.0 / rate;
                let mut t = SimTime::ZERO;
                loop {
                    t += SimDuration::from_millis_f64(wf_rng.exponential(mean_gap_ms));
                    if t >= SimTime::ZERO + config.duration {
                        break;
                    }
                    arrivals.push(t);
                }
            }
            WorkflowTrace {
                name: format!("wf{i}"),
                rare,
                arrivals,
            }
        })
        .collect()
}

/// Expected number of invocations the whole fleet produces over the
/// trace duration: `workflows × hours × blended class rate`. This is
/// the estimator fleet replays feed to queue pre-sizing
/// (`Platform::reserve_invocations`) before generating any arrivals.
pub fn expected_invocations(config: &AzureTraceConfig) -> f64 {
    let hours = config.duration.as_secs_f64() / 3600.0;
    let blended = config.rare_fraction * config.rare_rate_per_hour
        + (1.0 - config.rare_fraction) * config.popular_rate_per_hour;
    config.workflows as f64 * hours * blended
}

/// Scales `base` up to a fleet expected to produce at least `target`
/// invocations, by growing the workflow count at fixed class rates,
/// class mix and duration (the §2.3 characterization is preserved;
/// only the fleet gets wider).
///
/// The realized count of a generated trace is Poisson around the
/// expectation, so individual seeds land within a fraction of a percent
/// of `target` at fleet scale.
///
/// # Example
///
/// ```
/// use xanadu_workloads::azure::{scale_to_invocations, expected_invocations, AzureTraceConfig};
///
/// let cfg = scale_to_invocations(&AzureTraceConfig::default(), 1_000_000);
/// assert!(expected_invocations(&cfg) >= 1_000_000.0);
/// assert_eq!(cfg.rare_rate_per_hour, 0.7, "class rates unchanged");
/// ```
pub fn scale_to_invocations(base: &AzureTraceConfig, target: u64) -> AzureTraceConfig {
    let mut scaled = *base;
    if target == 0 {
        return scaled;
    }
    let per_workflow = expected_invocations(base) / base.workflows.max(1) as f64;
    if per_workflow <= 0.0 {
        return scaled;
    }
    scaled.workflows = (target as f64 / per_workflow).ceil() as usize;
    scaled
}

/// Total realized invocations of a generated trace.
pub fn total_invocations(traces: &[WorkflowTrace]) -> u64 {
    traces.iter().map(|t| t.arrivals.len() as u64).sum()
}

/// The fraction of inter-arrival gaps (across the rare class) exceeding
/// `keep_alive` — an upper-bound predictor of the cold-start rate a
/// chain-agnostic platform will suffer on this trace (§2.3's argument).
pub fn rare_gap_exceedance(traces: &[WorkflowTrace], keep_alive: SimDuration) -> f64 {
    let mut total = 0usize;
    let mut exceeding = 0usize;
    for t in traces.iter().filter(|t| t.rare) {
        for w in t.arrivals.windows(2) {
            total += 1;
            if w[1] - w[0] > keep_alive {
                exceeding += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        exceeding as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = AzureTraceConfig::default();
        assert_eq!(generate_trace(&cfg, 1), generate_trace(&cfg, 1));
        assert_ne!(generate_trace(&cfg, 1), generate_trace(&cfg, 2));
    }

    #[test]
    fn class_split_matches_fraction() {
        let cfg = AzureTraceConfig {
            workflows: 100,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 3);
        let rare = trace.iter().filter(|t| t.rare).count();
        assert_eq!(rare, 45);
    }

    #[test]
    fn realized_rates_match_classes() {
        let cfg = AzureTraceConfig {
            workflows: 40,
            duration: SimDuration::from_mins(100 * 60), // long horizon
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 5);
        let mean_rate = |rare: bool| {
            let class: Vec<&WorkflowTrace> = trace.iter().filter(|t| t.rare == rare).collect();
            class
                .iter()
                .map(|t| t.rate_per_hour(cfg.duration))
                .sum::<f64>()
                / class.len() as f64
        };
        let rare_rate = mean_rate(true);
        let popular_rate = mean_rate(false);
        assert!(
            (rare_rate - 0.7).abs() < 0.25,
            "rare ≈0.7/h, got {rare_rate}"
        );
        assert!(
            (popular_rate - 30.0).abs() < 3.0,
            "popular ≈30/h, got {popular_rate}"
        );
    }

    #[test]
    fn arrivals_sorted_and_within_duration() {
        let cfg = AzureTraceConfig::default();
        for t in generate_trace(&cfg, 9) {
            for w in t.arrivals.windows(2) {
                assert!(w[0] < w[1]);
            }
            if let Some(&last) = t.arrivals.last() {
                assert!(last < SimTime::ZERO + cfg.duration);
            }
        }
    }

    #[test]
    fn rare_gaps_mostly_exceed_ten_minute_keepalive() {
        // The paper's point: rare functions' inter-arrival times exceed
        // typical keep-alives, so they frequently suffer cold starts.
        let cfg = AzureTraceConfig {
            workflows: 60,
            duration: SimDuration::from_mins(200 * 60),
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 11);
        let exceedance = rare_gap_exceedance(&trace, SimDuration::from_mins(10));
        // P(Exp(mean 86min) > 10min) = e^(-10/86) ≈ 0.89.
        assert!(exceedance > 0.8, "got {exceedance}");
        // With a multi-hour keep-alive the picture flips.
        let generous = rare_gap_exceedance(&trace, SimDuration::from_mins(6 * 60));
        assert!(generous < exceedance);
    }

    #[test]
    fn scaling_hits_invocation_targets() {
        let base = AzureTraceConfig::default();
        // Default: 20 workflows × 16 h × (0.45·0.7 + 0.55·30) ≈ 5380.
        let expected = expected_invocations(&base);
        assert!((expected - 5380.8).abs() < 1.0, "got {expected}");

        let target = 100_000;
        let scaled = scale_to_invocations(&base, target);
        assert!(expected_invocations(&scaled) >= target as f64);
        // Fixed per-workflow characterization: only the fleet grows.
        assert_eq!(scaled.rare_rate_per_hour, base.rare_rate_per_hour);
        assert_eq!(scaled.popular_rate_per_hour, base.popular_rate_per_hour);
        assert_eq!(scaled.duration, base.duration);
        // Realized arrivals are Poisson around the expectation: within
        // a few percent of the target at this scale.
        let realized = total_invocations(&generate_trace(&scaled, 7));
        assert!(
            realized as f64 >= target as f64 * 0.97,
            "realized {realized} too far below target {target}"
        );
    }

    #[test]
    fn scaling_degenerate_inputs_are_no_ops() {
        let base = AzureTraceConfig::default();
        assert_eq!(scale_to_invocations(&base, 0), base);
        let dead = AzureTraceConfig {
            rare_rate_per_hour: 0.0,
            popular_rate_per_hour: 0.0,
            ..base
        };
        assert_eq!(scale_to_invocations(&dead, 1000), dead);
        // Already large enough: one workflow is the floor.
        let tiny = scale_to_invocations(&base, 1);
        assert_eq!(tiny.workflows, 1);
    }

    #[test]
    fn empty_rare_class_handled() {
        let cfg = AzureTraceConfig {
            workflows: 4,
            rare_fraction: 0.0,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 1);
        assert_eq!(rare_gap_exceedance(&trace, SimDuration::from_mins(10)), 0.0);
    }
}
