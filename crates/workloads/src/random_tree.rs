//! Random biased binary trees (§5.3 / §5.4).
//!
//! The paper evaluates MLP convergence and conditional-chain behaviour on
//! "100 randomly generated binary trees with 1 to 10 nodes each with
//! random biases at conditional points". This module generates those
//! trees deterministically from a seed: a random tree shape is grown node
//! by node; any internal node with two children becomes an XOR conditional
//! point with a randomly drawn bias.

use serde::{Deserialize, Serialize};
use xanadu_chain::{ChainError, FunctionSpec, NodeId, WorkflowBuilder, WorkflowDag};
use xanadu_simcore::RngStream;

/// Configuration of the random-tree generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomTreeConfig {
    /// Number of function nodes (≥ 1).
    pub nodes: usize,
    /// Service time of every function, in ms.
    pub service_ms: f64,
    /// Bias range for conditional points: the favoured branch's
    /// probability is drawn uniformly from `[bias_lo, bias_hi]`.
    pub bias_lo: f64,
    /// Upper end of the bias range.
    pub bias_hi: f64,
}

impl Default for RandomTreeConfig {
    /// The paper's setup: trees of short functions with biases anywhere in
    /// `(0.5, 1.0)` — "a sharp bias expresses itself strongly … compared
    /// to weaker biases" (§5.3).
    fn default() -> Self {
        RandomTreeConfig {
            nodes: 10,
            service_ms: 500.0,
            bias_lo: 0.5,
            bias_hi: 0.99,
        }
    }
}

/// Generates one random biased binary tree.
///
/// The shape is drawn by attaching each new node to a uniformly random
/// existing node that still has fewer than two children. Internal nodes
/// with two children become XOR conditional points whose favoured side is
/// chosen at random with a bias drawn from the configured range; single-
/// child nodes are plain 1:1 links.
///
/// Deterministic in `(config, seed)`.
///
/// # Errors
///
/// Returns [`ChainError::EmptyWorkflow`] when `config.nodes == 0`.
///
/// # Example
///
/// ```
/// use xanadu_workloads::{random_binary_tree, RandomTreeConfig};
///
/// let dag = random_binary_tree(&RandomTreeConfig::default(), 7)?;
/// assert_eq!(dag.len(), 10);
/// assert!(dag.conditional_points() <= 4, "binary tree of 10 nodes");
/// # Ok::<(), xanadu_chain::ChainError>(())
/// ```
pub fn random_binary_tree(config: &RandomTreeConfig, seed: u64) -> Result<WorkflowDag, ChainError> {
    if config.nodes == 0 {
        return Err(ChainError::EmptyWorkflow);
    }
    let mut rng = RngStream::derive(seed, "random-tree");
    let mut b = WorkflowBuilder::new(format!("tree-{seed}"));
    let root = b.add(FunctionSpec::new("n0").service_ms(config.service_ms))?;

    // children[i] lists the node's children; parents chosen among nodes
    // with < 2 children.
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new()];
    let mut ids = vec![root];
    for i in 1..config.nodes {
        let open: Vec<usize> = (0..ids.len()).filter(|&j| children[j].len() < 2).collect();
        let pick = open[rng.uniform_inclusive(0, open.len() as u64 - 1) as usize];
        let id = b.add(FunctionSpec::new(format!("n{i}")).service_ms(config.service_ms))?;
        children[pick].push(id);
        children.push(Vec::new());
        ids.push(id);
    }

    // Wire edges: two-child nodes become biased XOR points.
    for (j, kids) in children.iter().enumerate() {
        match kids.as_slice() {
            [] => {}
            [only] => b.link(ids[j], *only)?,
            [first, second] => {
                let bias = config.bias_lo + rng.next_f64() * (config.bias_hi - config.bias_lo);
                let (hot, cold) = if rng.bernoulli(0.5) {
                    (*first, *second)
                } else {
                    (*second, *first)
                };
                b.link_xor(ids[j], &[(hot, bias), (cold, 1.0 - bias)])?;
            }
            _ => unreachable!("binary tree"),
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomTreeConfig::default();
        assert_eq!(
            random_binary_tree(&cfg, 3).unwrap(),
            random_binary_tree(&cfg, 3).unwrap()
        );
        assert_ne!(
            random_binary_tree(&cfg, 3).unwrap(),
            random_binary_tree(&cfg, 4).unwrap()
        );
    }

    #[test]
    fn respects_node_count_and_tree_shape() {
        for seed in 0..50 {
            for n in 1..=10 {
                let cfg = RandomTreeConfig {
                    nodes: n,
                    ..Default::default()
                };
                let dag = random_binary_tree(&cfg, seed).unwrap();
                assert_eq!(dag.len(), n);
                assert_eq!(dag.roots().len(), 1, "trees have one root");
                // Every non-root has exactly one parent.
                for id in dag.node_ids() {
                    assert!(dag.parents(id).len() <= 1);
                    assert!(dag.children(id).len() <= 2, "binary");
                }
            }
        }
    }

    #[test]
    fn conditional_points_are_biased_xors() {
        let cfg = RandomTreeConfig {
            nodes: 10,
            service_ms: 100.0,
            bias_lo: 0.6,
            bias_hi: 0.9,
        };
        let mut saw_conditional = false;
        for seed in 0..20 {
            let dag = random_binary_tree(&cfg, seed).unwrap();
            for id in dag.node_ids() {
                if dag.children(id).len() == 2 {
                    saw_conditional = true;
                    let probs: Vec<f64> = dag
                        .children(id)
                        .iter()
                        .map(|e| dag.edge_probability(id, e.to).unwrap())
                        .collect();
                    let hot = probs.iter().cloned().fold(0.0, f64::max);
                    assert!((0.6..=0.9).contains(&hot), "bias {hot}");
                    assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                }
            }
        }
        assert!(saw_conditional);
    }

    #[test]
    fn zero_nodes_rejected() {
        let cfg = RandomTreeConfig {
            nodes: 0,
            ..Default::default()
        };
        assert!(random_binary_tree(&cfg, 1).is_err());
    }

    #[test]
    fn variety_of_conditional_counts_across_seeds() {
        // The §5.3 evaluation bins trees by conditional-branch count 0–3+;
        // the generator must produce that spread.
        let cfg = RandomTreeConfig::default();
        let mut counts = std::collections::HashSet::new();
        for seed in 0..100 {
            counts.insert(random_binary_tree(&cfg, seed).unwrap().conditional_points());
        }
        assert!(
            counts.len() >= 3,
            "spread of conditional counts: {counts:?}"
        );
    }
}
