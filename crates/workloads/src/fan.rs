//! Fan-out / fan-in (m:n) workflow generators.
//!
//! The paper's introduction motivates function chains with MapReduce-style
//! data processing, large-scale algebraic operations and video analytics —
//! all of which are fan-out/fan-in shapes: a splitter multicasts work to
//! `width` parallel workers (1:m), and a collector barriers on all of them
//! (m:1). This module generates those DAGs, including the layered m:n
//! variant where several multicast/barrier stages alternate.

use xanadu_chain::{ChainError, FunctionSpec, NodeId, WorkflowBuilder, WorkflowDag};

/// A single fan-out/fan-in: `split → w0..w(width-1) → join`.
///
/// `split`/`join` run `coordinator_ms` each; the parallel workers run
/// `worker_ms`.
///
/// # Errors
///
/// Returns [`ChainError::EmptyWorkflow`]-class errors only for `width == 0`.
///
/// # Example
///
/// ```
/// use xanadu_workloads::fan_out_fan_in;
///
/// let dag = fan_out_fan_in("mapreduce", 8, 100.0, 2000.0)?;
/// assert_eq!(dag.len(), 10);
/// assert_eq!(dag.depth(), 3);
/// // Critical path: split + slowest worker + join.
/// assert_eq!(dag.critical_path_ms(), 100.0 + 2000.0 + 100.0);
/// # Ok::<(), xanadu_chain::ChainError>(())
/// ```
pub fn fan_out_fan_in(
    name: &str,
    width: usize,
    coordinator_ms: f64,
    worker_ms: f64,
) -> Result<WorkflowDag, ChainError> {
    if width == 0 {
        return Err(ChainError::EmptyWorkflow);
    }
    let mut b = WorkflowBuilder::new(name);
    let split = b.add(FunctionSpec::new("split").service_ms(coordinator_ms))?;
    let join = b.add(FunctionSpec::new("join").service_ms(coordinator_ms))?;
    for i in 0..width {
        let w = b.add(FunctionSpec::new(format!("w{i}")).service_ms(worker_ms))?;
        b.link(split, w)?;
        b.link(w, join)?;
    }
    b.build()
}

/// A layered m:n pipeline: `stages` alternating multicast/barrier layers,
/// each `width` wide, chained through coordinator functions — the general
/// m:n relationship of the paper's Figure 2.
///
/// Total functions: `stages * (width + 1) + 1`.
///
/// # Errors
///
/// Fails for `width == 0` or `stages == 0`.
pub fn layered_fan(
    name: &str,
    stages: usize,
    width: usize,
    coordinator_ms: f64,
    worker_ms: f64,
) -> Result<WorkflowDag, ChainError> {
    if width == 0 || stages == 0 {
        return Err(ChainError::EmptyWorkflow);
    }
    let mut b = WorkflowBuilder::new(name);
    let mut coordinator: NodeId = b.add(FunctionSpec::new("c0").service_ms(coordinator_ms))?;
    for stage in 0..stages {
        let next =
            b.add(FunctionSpec::new(format!("c{}", stage + 1)).service_ms(coordinator_ms))?;
        for i in 0..width {
            let w = b.add(FunctionSpec::new(format!("s{stage}w{i}")).service_ms(worker_ms))?;
            b.link(coordinator, w)?;
            b.link(w, next)?;
        }
        coordinator = next;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xanadu_chain::paths::expected_executed_functions;

    #[test]
    fn fan_shape() {
        let dag = fan_out_fan_in("f", 4, 50.0, 500.0).unwrap();
        assert_eq!(dag.len(), 6);
        assert_eq!(dag.roots().len(), 1);
        assert_eq!(dag.sinks().len(), 1);
        let join = dag.node_by_name("join").unwrap();
        assert_eq!(dag.parents(join).len(), 4, "m:1 barrier");
        let split = dag.node_by_name("split").unwrap();
        assert_eq!(dag.children(split).len(), 4, "1:m multicast");
        // Every node executes on every trigger (no conditionals).
        assert_eq!(expected_executed_functions(&dag), 6.0);
    }

    #[test]
    fn fan_width_one_is_a_chain() {
        let dag = fan_out_fan_in("f", 1, 10.0, 10.0).unwrap();
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.len(), 3);
    }

    #[test]
    fn fan_rejects_zero_width() {
        assert!(fan_out_fan_in("f", 0, 1.0, 1.0).is_err());
    }

    #[test]
    fn layered_shape_and_depth() {
        let dag = layered_fan("l", 3, 4, 50.0, 500.0).unwrap();
        assert_eq!(dag.len(), 3 * 5 + 1);
        // Depth: c0, w, c1, w, c2, w, c3 = 7 levels.
        assert_eq!(dag.depth(), 7);
        assert_eq!(dag.roots().len(), 1);
        assert_eq!(dag.sinks().len(), 1);
        // Each intermediate coordinator is both barrier and multicast (m:n).
        let c1 = dag.node_by_name("c1").unwrap();
        assert_eq!(dag.parents(c1).len(), 4);
        assert_eq!(dag.children(c1).len(), 4);
    }

    #[test]
    fn layered_critical_path() {
        let dag = layered_fan("l", 2, 8, 100.0, 1000.0).unwrap();
        // c0 + w + c1 + w + c2 = 3*100 + 2*1000.
        assert_eq!(dag.critical_path_ms(), 2300.0);
        assert_eq!(dag.total_service_ms(), 3.0 * 100.0 + 16.0 * 1000.0);
    }

    #[test]
    fn layered_rejects_degenerate() {
        assert!(layered_fan("l", 0, 4, 1.0, 1.0).is_err());
        assert!(layered_fan("l", 2, 0, 1.0, 1.0).is_err());
    }
}
