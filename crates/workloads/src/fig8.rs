//! The conditional-branching DAG of Figure 8.
//!
//! The paper evaluates MLP inference on "a function chain structured as a
//! conditional branching DAG" where solid arrows carry "a 70% probability
//! of being triggered. All other siblings at each level are equally
//! likely" (Figure 8). The figure shows four XOR levels below the root
//! (B, C, D, E rows); the solid path runs root → B2 → C2 → D2 → E1, so a
//! converged MLP has five functions (the text's Round-5 milestone reports
//! "80% of the MLP functions … correctly detected", i.e. 4 of 5).

use xanadu_chain::{ChainError, FunctionSpec, NodeId, WorkflowBuilder, WorkflowDag};

/// Builds the Figure 8 XOR-cast DAG.
///
/// Level sizes follow the figure: 1 root (A), 3 B-nodes, 3 C-nodes under
/// the solid B, 3 D-nodes under the solid C, and 2 E-nodes under the solid
/// D. At each level the solid child has probability 0.7 and its siblings
/// split the remaining 0.3 equally. Off-path nodes are leaves (the chain
/// ends when the workflow deviates).
///
/// Every function runs `service_ms` (the paper uses short no-op bodies).
///
/// # Example
///
/// ```
/// let dag = xanadu_workloads::fig8_dag(500.0)?;
/// assert_eq!(dag.conditional_points(), 4);
/// assert_eq!(dag.depth(), 5);
/// # Ok::<(), xanadu_chain::ChainError>(())
/// ```
pub fn fig8_dag(service_ms: f64) -> Result<WorkflowDag, ChainError> {
    let mut b = WorkflowBuilder::new("fig8");
    let spec = |name: &str| FunctionSpec::new(name).service_ms(service_ms);

    let a = b.add(spec("A"))?;

    // Each level: (solid child, [siblings]) hanging off the previous solid
    // node, per the figure's solid path A → B2 → C2 → D2 → E1.
    let mut parent = a;
    let levels: [(&str, &[&str]); 4] = [
        ("B2", &["B1", "B3"]),
        ("C2", &["C1", "C3"]),
        ("D2", &["D1", "D3"]),
        ("E1", &["E2"]),
    ];
    for (solid, siblings) in levels {
        let solid_id = b.add(spec(solid))?;
        let mut branches: Vec<(NodeId, f64)> = vec![(solid_id, 0.7)];
        let share = 0.3 / siblings.len() as f64;
        for sib in siblings {
            let sid = b.add(spec(sib))?;
            branches.push((sid, share));
        }
        b.link_xor(parent, &branches)?;
        parent = solid_id;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_figure() {
        let dag = fig8_dag(500.0).unwrap();
        assert_eq!(dag.len(), 1 + 3 + 3 + 3 + 2);
        assert_eq!(dag.depth(), 5);
        assert_eq!(dag.conditional_points(), 4);
        assert_eq!(dag.roots().len(), 1);
    }

    #[test]
    fn solid_path_probabilities() {
        let dag = fig8_dag(500.0).unwrap();
        let a = dag.node_by_name("A").unwrap();
        let b2 = dag.node_by_name("B2").unwrap();
        let b1 = dag.node_by_name("B1").unwrap();
        assert!((dag.edge_probability(a, b2).unwrap() - 0.7).abs() < 1e-9);
        assert!((dag.edge_probability(a, b1).unwrap() - 0.15).abs() < 1e-9);
        let d2 = dag.node_by_name("D2").unwrap();
        let e1 = dag.node_by_name("E1").unwrap();
        let e2 = dag.node_by_name("E2").unwrap();
        assert!((dag.edge_probability(d2, e1).unwrap() - 0.7).abs() < 1e-9);
        assert!((dag.edge_probability(d2, e2).unwrap() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn mlp_is_the_solid_path() {
        let dag = fig8_dag(500.0).unwrap();
        let mlp = xanadu_core::mlp::infer_mlp(&dag, |_, _| None);
        let names: Vec<&str> = mlp
            .path
            .iter()
            .map(|&n| dag.node(n).spec().name())
            .collect();
        assert_eq!(names, vec!["A", "B2", "C2", "D2", "E1"]);
    }

    #[test]
    fn off_path_nodes_are_leaves() {
        let dag = fig8_dag(500.0).unwrap();
        let b1 = dag.node_by_name("B1").unwrap();
        assert!(dag.children(b1).is_empty());
    }
}
