//! # xanadu-workloads
//!
//! Workload generators for the Xanadu evaluation: the exact workflow
//! shapes and request arrival processes used by the paper's experiments.
//!
//! * [`fig8_dag`] — the XOR-cast DAG of Figure 8 (70 % solid edges,
//!   equiprobable siblings) used to demonstrate MLP convergence (§3.1,
//!   Figure 9).
//! * [`random_binary_tree`] — the "100 randomly generated binary trees with 1 to
//!   10 nodes each with random biases at conditional points" of §5.3/§5.4.
//! * [`case_studies`] — the e-commerce checkout (implicit) and JIMP image
//!   processing (explicit) pipelines of §5.6.
//! * [`arrivals`] — arrival processes: the decreasing arithmetic
//!   progression of Figure 5, the U(0, 60) min lightly-loaded trace of
//!   Figure 6, Poisson and closed-loop generators.
//! * [`azure`] — the §2.3 Azure-trace characterization as a synthetic
//!   mixed-popularity fleet (≈45 % of workflows invoked ≤ once/hour).
//! * [`stream`] — unbounded request streams for the service tier: a
//!   seeded generator and deterministic record/replay of stream files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod azure;
pub mod case_studies;
mod fan;
mod fig8;
mod random_tree;
pub mod stream;

pub use fan::{fan_out_fan_in, layered_fan};
pub use fig8::fig8_dag;
pub use random_tree::{random_binary_tree, RandomTreeConfig};
