//! The real-world case-study pipelines of §5.6.
//!
//! Two end-to-end applications, with the per-stage runtimes the paper
//! reports:
//!
//! * **E-commerce checkout** (§5.6.1) — an *implicit* chain with widely
//!   varying stage runtimes: Order (~2000 ms) → Discount (~100 ms) →
//!   Payment (~2500 ms) → Invoice (~300 ms) → Shipping (~500 ms).
//! * **Image processing pipeline** (§5.6.2) — an *explicit* chain of
//!   short, homogeneous stages (JIMP in the paper): Scale (~400 ms) →
//!   Contrast (~350 ms) → Rotate (~600 ms) → Blur (~500 ms) → Grayscale
//!   (~300 ms).

use xanadu_chain::{ChainError, FunctionSpec, WorkflowBuilder, WorkflowDag};
use xanadu_simcore::Distribution;

/// Stage runtimes (ms) of the e-commerce checkout chain, in order.
pub const ECOMMERCE_STAGES: [(&str, f64); 5] = [
    ("order", 2000.0),
    ("discount", 100.0),
    ("payment", 2500.0),
    ("invoice", 300.0),
    ("shipping", 500.0),
];

/// Stage runtimes (ms) of the image processing pipeline, in order.
pub const IMAGE_PIPELINE_STAGES: [(&str, f64); 5] = [
    ("scale", 400.0),
    ("contrast", 350.0),
    ("rotate", 600.0),
    ("blur", 500.0),
    ("grayscale", 300.0),
];

fn stage_chain(
    name: &str,
    stages: &[(&str, f64)],
    jitter_fraction: f64,
) -> Result<WorkflowDag, ChainError> {
    let mut b = WorkflowBuilder::new(name);
    let mut prev = None;
    for (stage, ms) in stages {
        let service = if jitter_fraction > 0.0 {
            Distribution::log_normal(*ms, ms * jitter_fraction)
                .map_err(|e| ChainError::InvalidSpec(e.to_string()))?
        } else {
            Distribution::Constant { value_ms: *ms }
        };
        let id = b.add(FunctionSpec::new(*stage).service(service))?;
        if let Some(p) = prev {
            b.link(p, id)?;
        }
        prev = Some(id);
    }
    b.build()
}

/// Builds the e-commerce checkout chain (§5.6.1).
///
/// `jitter_fraction` adds log-normal noise to each stage (0.0 for the
/// paper's nominal runtimes; ~0.1 for realistic variance).
///
/// # Errors
///
/// Never fails for valid `jitter_fraction` (≥ 0); propagates construction
/// errors otherwise.
///
/// # Example
///
/// ```
/// let dag = xanadu_workloads::case_studies::ecommerce(0.0)?;
/// assert_eq!(dag.depth(), 5);
/// assert_eq!(dag.total_service_ms(), 5400.0);
/// # Ok::<(), xanadu_chain::ChainError>(())
/// ```
pub fn ecommerce(jitter_fraction: f64) -> Result<WorkflowDag, ChainError> {
    stage_chain("ecommerce", &ECOMMERCE_STAGES, jitter_fraction)
}

/// Builds the image processing pipeline (§5.6.2).
///
/// # Errors
///
/// Never fails for valid `jitter_fraction` (≥ 0); propagates construction
/// errors otherwise.
///
/// # Example
///
/// ```
/// let dag = xanadu_workloads::case_studies::image_pipeline(0.0)?;
/// assert_eq!(dag.depth(), 5);
/// assert_eq!(dag.total_service_ms(), 2150.0);
/// # Ok::<(), xanadu_chain::ChainError>(())
/// ```
pub fn image_pipeline(jitter_fraction: f64) -> Result<WorkflowDag, ChainError> {
    stage_chain("image-pipeline", &IMAGE_PIPELINE_STAGES, jitter_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecommerce_matches_paper_runtimes() {
        let dag = ecommerce(0.0).unwrap();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.depth(), 5);
        let payment = dag.node_by_name("payment").unwrap();
        assert_eq!(dag.node(payment).spec().mean_service_ms(), 2500.0);
        assert_eq!(dag.total_service_ms(), 5400.0);
        // Heterogeneous runtimes: max/min ratio is large (the paper uses
        // this chain to demonstrate runtime variability handling).
        let times: Vec<f64> = ECOMMERCE_STAGES.iter().map(|s| s.1).collect();
        let ratio = times.iter().cloned().fold(0.0, f64::max)
            / times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(ratio >= 25.0);
    }

    #[test]
    fn image_pipeline_matches_paper_runtimes() {
        let dag = image_pipeline(0.0).unwrap();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.total_service_ms(), 2150.0);
        // Homogeneous, short stages.
        for (_, ms) in IMAGE_PIPELINE_STAGES {
            assert!((300.0..=600.0).contains(&ms));
        }
    }

    #[test]
    fn jitter_produces_distributional_service() {
        let dag = ecommerce(0.1).unwrap();
        let order = dag.node_by_name("order").unwrap();
        assert!(matches!(
            dag.node(order).spec().service_dist(),
            Distribution::LogNormal { .. }
        ));
        // Mean preserved.
        assert_eq!(dag.node(order).spec().mean_service_ms(), 2000.0);
    }

    #[test]
    fn chains_are_linear() {
        for dag in [ecommerce(0.0).unwrap(), image_pipeline(0.0).unwrap()] {
            assert_eq!(dag.roots().len(), 1);
            assert_eq!(dag.sinks().len(), 1);
            assert_eq!(dag.conditional_points(), 0);
        }
    }
}
