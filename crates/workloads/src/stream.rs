//! Unbounded request streams for the service tier (`xanadu serve`).
//!
//! A stream is an ordered sequence of [`StreamEvent`]s — absolute trigger
//! times against a fixed workflow population described by a
//! [`StreamHeader`]. Two deterministic sources implement [`StreamSource`]:
//!
//! * [`GeneratedStream`] — a seeded merge of per-workflow Poisson
//!   processes, usable as an endless load generator.
//! * [`RecordedStream`] — replay of a stream file produced by
//!   `xanadu record`.
//!
//! # Stream file format (JSONL)
//!
//! Line 1 is the header; every following line is one event:
//!
//! ```text
//! {"version":1,"workflows":8,"depth":3,"rate_per_hour":360.0,"seed":42,"events":10000}
//! {"at_us":11520,"wf":5}
//! {"at_us":23991,"wf":0}
//! ...
//! ```
//!
//! The header carries the *population parameters*, not just the event
//! count, so `record` and `serve` rebuild identical workflow DAGs and a
//! recorded stream replays byte-identically on any machine.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use xanadu_simcore::{RngStream, SimDuration, SimTime};

/// Population and provenance metadata at the head of every stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamHeader {
    /// Stream format version (currently 1).
    pub version: u32,
    /// Number of workflows in the population (`wf0` … `wf{n-1}`).
    pub workflows: u32,
    /// Linear-chain depth of every workflow.
    pub depth: u32,
    /// Per-workflow Poisson arrival rate.
    pub rate_per_hour: f64,
    /// Master seed the generator derived the arrival processes from.
    pub seed: u64,
    /// Total events in the stream (a recorded stream is finite).
    pub events: u64,
}

impl StreamHeader {
    /// Canonical name of workflow `index` (`"wf{index}"`).
    pub fn workflow_name(&self, index: u32) -> String {
        format!("wf{index}")
    }
}

/// One stream event: trigger `workflow` at absolute time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamEvent {
    /// Absolute trigger time, integer microseconds.
    pub at_us: u64,
    /// Workflow index into the header's population.
    pub wf: u32,
}

impl StreamEvent {
    /// The trigger time as a [`SimTime`].
    pub fn at(&self) -> SimTime {
        SimTime::from_micros(self.at_us)
    }
}

/// A deterministic, time-ordered source of stream events.
pub trait StreamSource {
    /// The fixed workflow population this stream triggers.
    fn header(&self) -> &StreamHeader;
    /// The next event, in nondecreasing `at_us` order; `None` once the
    /// stream is exhausted.
    fn next_event(&mut self) -> Option<StreamEvent>;
}

/// Errors parsing a recorded stream file.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamParseError {
    /// 1-based line the parse failed on (0 for an empty file).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for StreamParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for StreamParseError {}

/// Replay of a recorded stream file.
#[derive(Debug, Clone)]
pub struct RecordedStream {
    header: StreamHeader,
    events: Vec<StreamEvent>,
    cursor: usize,
}

impl RecordedStream {
    /// Parses the JSONL text of a stream file.
    pub fn parse(text: &str) -> Result<RecordedStream, StreamParseError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, first) = lines.next().ok_or(StreamParseError {
            line: 0,
            message: "empty stream file (missing header line)".to_string(),
        })?;
        let header: StreamHeader = serde_json::from_str(first).map_err(|e| StreamParseError {
            line: 1,
            message: format!("bad header: {e:?}"),
        })?;
        if header.version != 1 {
            return Err(StreamParseError {
                line: 1,
                message: format!("unsupported stream version {}", header.version),
            });
        }
        let mut events = Vec::new();
        let mut last_at = 0u64;
        for (i, line) in lines {
            let ev: StreamEvent = serde_json::from_str(line).map_err(|e| StreamParseError {
                line: i + 1,
                message: format!("bad event: {e:?}"),
            })?;
            if ev.at_us < last_at {
                return Err(StreamParseError {
                    line: i + 1,
                    message: format!("events out of order ({} after {})", ev.at_us, last_at),
                });
            }
            if ev.wf >= header.workflows {
                return Err(StreamParseError {
                    line: i + 1,
                    message: format!(
                        "workflow index {} out of range (population {})",
                        ev.wf, header.workflows
                    ),
                });
            }
            last_at = ev.at_us;
            events.push(ev);
        }
        if header.events != events.len() as u64 {
            return Err(StreamParseError {
                line: 1,
                message: format!(
                    "header declares {} events, file holds {}",
                    header.events,
                    events.len()
                ),
            });
        }
        Ok(RecordedStream {
            header,
            events,
            cursor: 0,
        })
    }

    /// Renders a header + events back into the JSONL file format.
    pub fn render(header: &StreamHeader, events: &[StreamEvent]) -> String {
        let mut out = String::new();
        let mut header = header.clone();
        header.events = events.len() as u64;
        out.push_str(&serde_json::to_string(&header).expect("header serializes"));
        out.push('\n');
        for ev in events {
            out.push_str(&serde_json::to_string(ev).expect("event serializes"));
            out.push('\n');
        }
        out
    }
}

impl StreamSource for RecordedStream {
    fn header(&self) -> &StreamHeader {
        &self.header
    }

    fn next_event(&mut self) -> Option<StreamEvent> {
        let ev = self.events.get(self.cursor).copied();
        if ev.is_some() {
            self.cursor += 1;
        }
        ev
    }
}

/// Seeded merge of per-workflow Poisson processes: an endless,
/// deterministic load generator. Bounded by `header.events`.
#[derive(Debug, Clone)]
pub struct GeneratedStream {
    header: StreamHeader,
    /// Min-heap of (next arrival µs, workflow index) — ties break on the
    /// lower workflow index, so the merge order is total and stable.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    rngs: Vec<RngStream>,
    mean_gap_ms: f64,
    emitted: u64,
}

impl GeneratedStream {
    /// A generator for `workflows` linear chains of `depth` functions,
    /// each arriving as an independent Poisson process of
    /// `rate_per_hour`, emitting `events` events in total.
    ///
    /// # Panics
    /// If `workflows` is zero or `rate_per_hour` is not positive.
    pub fn new(workflows: u32, depth: u32, rate_per_hour: f64, seed: u64, events: u64) -> Self {
        assert!(workflows > 0, "stream population must be non-empty");
        assert!(rate_per_hour > 0.0, "arrival rate must be positive");
        let header = StreamHeader {
            version: 1,
            workflows,
            depth,
            rate_per_hour,
            seed,
            events,
        };
        GeneratedStream::from_header(header)
    }

    /// Rebuilds the generator a [`StreamHeader`] describes (used by
    /// `record` → `serve` round trips).
    pub fn from_header(header: StreamHeader) -> Self {
        let mean_gap_ms = 3_600_000.0 / header.rate_per_hour;
        let base = RngStream::derive(header.seed, "stream-arrivals");
        let mut heap = BinaryHeap::new();
        let mut rngs = Vec::with_capacity(header.workflows as usize);
        for wf in 0..header.workflows {
            let mut rng = base.child(u64::from(wf));
            let first = SimDuration::from_millis_f64(rng.exponential(mean_gap_ms));
            heap.push(Reverse((first.as_micros(), wf)));
            rngs.push(rng);
        }
        GeneratedStream {
            header,
            heap,
            rngs,
            mean_gap_ms,
            emitted: 0,
        }
    }

    /// Materializes the whole stream (for `xanadu record`).
    pub fn collect_events(mut self) -> (StreamHeader, Vec<StreamEvent>) {
        let mut events = Vec::with_capacity(self.header.events as usize);
        while let Some(ev) = self.next_event() {
            events.push(ev);
        }
        (self.header, events)
    }
}

impl StreamSource for GeneratedStream {
    fn header(&self) -> &StreamHeader {
        &self.header
    }

    fn next_event(&mut self) -> Option<StreamEvent> {
        if self.emitted >= self.header.events {
            return None;
        }
        let Reverse((at_us, wf)) = self.heap.pop()?;
        let rng = &mut self.rngs[wf as usize];
        let gap = SimDuration::from_millis_f64(rng.exponential(self.mean_gap_ms));
        let next = at_us + gap.as_micros().max(1);
        self.heap.push(Reverse((next, wf)));
        self.emitted += 1;
        Some(StreamEvent { at_us, wf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_ordered() {
        let a: Vec<_> = {
            let mut s = GeneratedStream::new(4, 2, 360.0, 7, 200);
            std::iter::from_fn(|| s.next_event()).collect()
        };
        let b: Vec<_> = {
            let mut s = GeneratedStream::new(4, 2, 360.0, 7, 200);
            std::iter::from_fn(|| s.next_event()).collect()
        };
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for w in a.windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
        }
        assert!(a.iter().any(|e| e.wf != a[0].wf), "all workflows fire");
    }

    #[test]
    fn record_replay_roundtrip_is_exact() {
        let (header, events) = GeneratedStream::new(3, 2, 600.0, 11, 150).collect_events();
        let text = RecordedStream::render(&header, &events);
        let mut replay = RecordedStream::parse(&text).expect("parses");
        assert_eq!(replay.header(), &header);
        let replayed: Vec<_> = std::iter::from_fn(|| replay.next_event()).collect();
        assert_eq!(replayed, events);
        // And the rebuilt generator from the same header matches too.
        let (_, regen) = GeneratedStream::from_header(header).collect_events();
        assert_eq!(regen, events);
    }

    #[test]
    fn parse_rejects_malformed_streams() {
        assert!(RecordedStream::parse("").is_err());
        let (header, events) = GeneratedStream::new(2, 1, 120.0, 1, 10).collect_events();
        let good = RecordedStream::render(&header, &events);
        // Truncating events breaks the header count check.
        let truncated: String = good.lines().take(5).map(|l| format!("{l}\n")).collect();
        assert!(RecordedStream::parse(&truncated).is_err());
        // Out-of-order events are rejected.
        let mut lines: Vec<&str> = good.lines().collect();
        let last = lines.len() - 1;
        lines.swap(1, last);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(RecordedStream::parse(&swapped).is_err());
        // Out-of-range workflow index is rejected.
        let bad_wf = format!(
            "{}\n{}\n",
            serde_json::to_string(&StreamHeader {
                version: 1,
                workflows: 1,
                depth: 1,
                rate_per_hour: 1.0,
                seed: 0,
                events: 1
            })
            .unwrap(),
            serde_json::to_string(&StreamEvent { at_us: 5, wf: 9 }).unwrap()
        );
        assert!(RecordedStream::parse(&bad_wf).is_err());
    }

    #[test]
    fn mean_inter_arrival_tracks_the_configured_rate() {
        let (_, events) = GeneratedStream::new(1, 1, 3600.0, 3, 2000).collect_events();
        let span_us = events.last().unwrap().at_us - events[0].at_us;
        let mean_gap_ms = span_us as f64 / 1000.0 / (events.len() - 1) as f64;
        // 3600/hour → 1s mean gap; allow generous stochastic tolerance.
        assert!((500.0..2000.0).contains(&mean_gap_ms), "mean {mean_gap_ms}");
    }
}
