//! Parent↔child request correlation for implicit chains.
//!
//! For implicit chains the platform cannot hook into function runtimes, so
//! it cannot observe *when* a parent invokes its child directly. Instead
//! (§3.2.2) Xanadu keeps the arrival timestamps of requests and assumes
//! parent-to-child requests preserve chronological order — parent requests
//! arriving earlier invoke their child functions earlier — giving a
//! one-to-one FIFO mapping between parent and child requests from which the
//! invocation delay is inferred.

use std::collections::{HashMap, VecDeque};
use xanadu_simcore::{SimDuration, SimTime};

#[derive(Debug, Clone, Default)]
struct ArrivalLog {
    /// Timestamps of remembered arrivals, oldest first.
    times: VecDeque<SimTime>,
    /// How many older arrivals have been dropped for capacity; the absolute
    /// index of `times[0]` is `dropped`.
    dropped: u64,
}

/// FIFO matcher of parent arrivals to child arrivals, yielding invocation-
/// delay samples.
///
/// Each `(parent, child)` edge consumes the parent's arrival stream
/// independently: the k-th child request on an edge is matched to the k-th
/// parent arrival, which is the paper's chronological one-to-one mapping.
///
/// # Example
///
/// ```
/// use xanadu_profiler::RequestCorrelator;
/// use xanadu_simcore::{SimTime, SimDuration};
///
/// let mut c = RequestCorrelator::new();
/// c.observe_arrival("order", SimTime::from_millis(0));
/// let delay = c.observe_child_arrival("order", "pay", SimTime::from_millis(2100));
/// assert_eq!(delay, Some(SimDuration::from_millis(2100)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RequestCorrelator {
    arrivals: HashMap<String, ArrivalLog>,
    /// Matches consumed so far per (parent, child) edge — the absolute
    /// index of the next parent arrival this edge will claim.
    matched: HashMap<(String, String), u64>,
    capacity: usize,
}

impl RequestCorrelator {
    /// Default bound on remembered arrivals per function.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a correlator with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a correlator remembering at most `capacity` arrivals per
    /// function (oldest are dropped first), bounding memory on long-running
    /// platforms.
    pub fn with_capacity(capacity: usize) -> Self {
        RequestCorrelator {
            arrivals: HashMap::new(),
            matched: HashMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records the arrival of a request to `function` at `now`.
    pub fn observe_arrival(&mut self, function: &str, now: SimTime) {
        let log = self.arrivals.entry(function.to_string()).or_default();
        log.times.push_back(now);
        while log.times.len() > self.capacity {
            log.times.pop_front();
            log.dropped += 1;
        }
    }

    /// Records the arrival of a request to `child` carrying a parent header
    /// naming `parent`, at `now`. Returns the inferred invocation delay —
    /// the time since the matching parent arrival — or `None` when no
    /// unconsumed parent arrival exists (out-of-order traffic or capacity
    /// eviction).
    pub fn observe_child_arrival(
        &mut self,
        parent: &str,
        child: &str,
        now: SimTime,
    ) -> Option<SimDuration> {
        let key = (parent.to_string(), child.to_string());
        let next = self.matched.get(&key).copied().unwrap_or(0);
        let log = self.arrivals.get(parent)?;
        // If the arrival this edge should match was evicted, skip forward to
        // the oldest remembered arrival rather than mismatching.
        let next = next.max(log.dropped);
        let idx = (next - log.dropped) as usize;
        let parent_arrival = *log.times.get(idx)?;
        self.matched.insert(key, next + 1);
        Some(now.saturating_since(parent_arrival))
    }

    /// Number of remembered (not yet evicted) arrivals for `function`.
    pub fn remembered_arrivals(&self, function: &str) -> usize {
        self.arrivals.get(function).map_or(0, |l| l.times.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_matching_infers_delays() {
        let mut c = RequestCorrelator::new();
        c.observe_arrival("p", SimTime::from_millis(0));
        c.observe_arrival("p", SimTime::from_millis(1000));
        assert_eq!(
            c.observe_child_arrival("p", "c", SimTime::from_millis(500)),
            Some(SimDuration::from_millis(500))
        );
        // Second child request matches the second parent arrival.
        assert_eq!(
            c.observe_child_arrival("p", "c", SimTime::from_millis(1700)),
            Some(SimDuration::from_millis(700))
        );
        // No third parent arrival yet.
        assert_eq!(
            c.observe_child_arrival("p", "c", SimTime::from_millis(2000)),
            None
        );
    }

    #[test]
    fn edges_consume_parent_stream_independently() {
        let mut c = RequestCorrelator::new();
        c.observe_arrival("p", SimTime::from_millis(100));
        let a = c.observe_child_arrival("p", "a", SimTime::from_millis(300));
        let b = c.observe_child_arrival("p", "b", SimTime::from_millis(450));
        // Both children of the same parent trigger match the same arrival.
        assert_eq!(a, Some(SimDuration::from_millis(200)));
        assert_eq!(b, Some(SimDuration::from_millis(350)));
    }

    #[test]
    fn unknown_parent_returns_none() {
        let mut c = RequestCorrelator::new();
        assert_eq!(c.observe_child_arrival("ghost", "c", SimTime::ZERO), None);
    }

    #[test]
    fn capacity_evicts_oldest_and_matching_recovers() {
        let mut c = RequestCorrelator::with_capacity(2);
        c.observe_arrival("p", SimTime::from_millis(0));
        c.observe_arrival("p", SimTime::from_millis(10));
        c.observe_arrival("p", SimTime::from_millis(20)); // evicts t=0
        assert_eq!(c.remembered_arrivals("p"), 2);
        // The edge's first match should skip the evicted arrival and pair
        // with t=10, not silently misalign.
        assert_eq!(
            c.observe_child_arrival("p", "c", SimTime::from_millis(15)),
            Some(SimDuration::from_millis(5))
        );
        assert_eq!(
            c.observe_child_arrival("p", "c", SimTime::from_millis(29)),
            Some(SimDuration::from_millis(9))
        );
    }

    #[test]
    fn out_of_order_child_clamps_to_zero() {
        let mut c = RequestCorrelator::new();
        c.observe_arrival("p", SimTime::from_millis(1000));
        // Child observed "before" its matched parent (clock skew): delay 0.
        assert_eq!(
            c.observe_child_arrival("p", "c", SimTime::from_millis(900)),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn statistically_sound_over_many_requests() {
        // Paper: "Even though this assumption might not hold for every
        // request, it is statistically sound for a large number of
        // requests." Feed 100 parent arrivals with a constant 250 ms true
        // invoke delay and verify the mean inferred delay matches.
        let mut c = RequestCorrelator::new();
        let mut total = SimDuration::ZERO;
        for i in 0..100u64 {
            let t = SimTime::from_millis(i * 1000);
            c.observe_arrival("p", t);
            let d = c
                .observe_child_arrival("p", "c", t + SimDuration::from_millis(250))
                .unwrap();
            total += d;
        }
        assert_eq!(total / 100, SimDuration::from_millis(250));
    }
}
