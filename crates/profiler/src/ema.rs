//! Exponential moving average.

use serde::{Deserialize, Serialize};

/// An exponential moving average over scalar observations.
///
/// The paper smooths all function-related metrics — "start times, runtimes,
/// and branch probabilities" — with exponential averaging so the model
/// "adapts to changes in a workflow's path likelihood while being
/// tolerant of outlier behaviour" (§3.1).
///
/// The first observation seeds the average directly; later observations
/// blend with weight `alpha`:
/// `value ← alpha · observation + (1 − alpha) · value`.
///
/// # Example
///
/// ```
/// use xanadu_profiler::Ema;
///
/// let mut ema = Ema::new(0.5);
/// ema.record(100.0);
/// ema.record(200.0);
/// assert_eq!(ema.value(), Some(150.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
    count: u64,
}

impl Ema {
    /// The smoothing factor used across Xanadu's profiles unless an
    /// experiment overrides it: responsive but outlier-tolerant.
    pub const DEFAULT_ALPHA: f64 = 0.3;

    /// Creates an EMA with smoothing factor `alpha`, clamped to `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            Self::DEFAULT_ALPHA
        };
        Ema {
            alpha,
            value: None,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, observation: f64) {
        self.count += 1;
        self.value = Some(match self.value {
            None => observation,
            Some(v) => self.alpha * observation + (1.0 - self.alpha) * v,
        });
    }

    /// The current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current average, or `fallback` before any observation.
    pub fn value_or(&self, fallback: f64) -> f64 {
        self.value.unwrap_or(fallback)
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for Ema {
    fn default() -> Self {
        Ema::new(Self::DEFAULT_ALPHA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds() {
        let mut e = Ema::new(0.1);
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(42.0), 42.0);
        e.record(500.0);
        assert_eq!(e.value(), Some(500.0));
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn blending_formula() {
        let mut e = Ema::new(0.25);
        e.record(100.0);
        e.record(200.0);
        // 0.25*200 + 0.75*100 = 125
        assert_eq!(e.value(), Some(125.0));
    }

    #[test]
    fn alpha_one_tracks_latest() {
        let mut e = Ema::new(1.0);
        e.record(1.0);
        e.record(9.0);
        assert_eq!(e.value(), Some(9.0));
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut e = Ema::new(0.3);
        for _ in 0..100 {
            e.record(77.0);
        }
        assert!((e.value().unwrap() - 77.0).abs() < 1e-9);
    }

    #[test]
    fn adapts_to_level_shift() {
        let mut e = Ema::new(0.3);
        for _ in 0..50 {
            e.record(100.0);
        }
        for _ in 0..50 {
            e.record(300.0);
        }
        let v = e.value().unwrap();
        assert!(v > 295.0, "should have adapted, got {v}");
    }

    #[test]
    fn tolerant_of_single_outlier() {
        let mut e = Ema::new(0.3);
        for _ in 0..20 {
            e.record(100.0);
        }
        e.record(10_000.0);
        let v = e.value().unwrap();
        assert!(v < 3100.0, "one outlier must not dominate, got {v}");
        for _ in 0..10 {
            e.record(100.0);
        }
        assert!((e.value().unwrap() - 100.0).abs() < 100.0);
    }

    #[test]
    fn invalid_alpha_clamped() {
        assert_eq!(Ema::new(5.0).alpha(), 1.0);
        assert!(Ema::new(0.0).alpha() > 0.0);
        assert_eq!(Ema::new(f64::NAN).alpha(), Ema::DEFAULT_ALPHA);
    }

    #[test]
    fn default_uses_default_alpha() {
        assert_eq!(Ema::default().alpha(), Ema::DEFAULT_ALPHA);
    }
}
