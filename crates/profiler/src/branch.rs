//! Implicit-chain branch detection (Algorithm 3 of the paper).
//!
//! Requests between functions of an implicit chain carry a *parent-function
//! header* injected by Xanadu's patched HTTP layer (§3.3). The detector
//! consumes dispatched requests and incrementally learns the workflow's
//! branch tree: for every observed parent it tracks each child's
//! conditional probability `ρ(child | parent)` as "a ratio between the
//! total requests to the child to that of the parent", updating the
//! probability of the invoked child *and of all its siblings* on every
//! request, exactly as Algorithm 3 prescribes.
//!
//! Probabilities are additionally smoothed with the paper's fixed-interval
//! exponential averaging (§3.1) when [`roll_window`](BranchDetector::roll_window)
//! is called periodically; consumers may read either the raw ratios or the
//! smoothed values.

use crate::ema::Ema;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A learned edge of the branch tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnedEdge {
    /// The child function.
    pub child: String,
    /// Raw ratio estimate of `ρ(child | parent)` over all observations.
    pub probability: f64,
    /// Number of requests observed flowing into this child from the parent.
    pub hits: u64,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ParentEntry {
    /// Total requests observed *to the parent itself* (Algorithm 3 line 13).
    request_count: u64,
    /// Requests flowing to each child while attributed to this parent.
    child_hits: HashMap<String, u64>,
    /// Window counters for exponential averaging.
    window_parent: u64,
    window_child_hits: HashMap<String, u64>,
    /// Smoothed probability per child, updated at window boundaries.
    smoothed: HashMap<String, Ema>,
}

/// Learns the branch tree of implicit chains from dispatched requests.
///
/// # Example
///
/// ```
/// use xanadu_profiler::BranchDetector;
///
/// let mut d = BranchDetector::new();
/// // Root requests (no parent header):
/// for _ in 0..10 { d.observe_request("order", None); }
/// // 7 of them invoked `pay`, 3 invoked `cancel`:
/// for _ in 0..7 { d.observe_request("pay", Some("order")); }
/// for _ in 0..3 { d.observe_request("cancel", Some("order")); }
/// assert!((d.probability("order", "pay").unwrap() - 0.7).abs() < 1e-9);
/// assert!((d.probability("order", "cancel").unwrap() - 0.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BranchDetector {
    alpha: f64,
    parents: HashMap<String, ParentEntry>,
    /// Bumped on every observation / window roll; consumers (the plan
    /// cache) use it to detect that probabilities may have changed.
    #[serde(default)]
    epoch: u64,
}

impl BranchDetector {
    /// Creates a detector with the default smoothing factor.
    pub fn new() -> Self {
        Self::with_alpha(Ema::DEFAULT_ALPHA)
    }

    /// Creates a detector with a custom smoothing factor for the windowed
    /// exponential averaging.
    pub fn with_alpha(alpha: f64) -> Self {
        BranchDetector {
            alpha,
            parents: HashMap::new(),
            epoch: 0,
        }
    }

    /// Monotonic change counter: bumped by every
    /// [`observe_request`](Self::observe_request) and
    /// [`roll_window`](Self::roll_window), so a cached product of this
    /// detector's probabilities is valid exactly while the epoch it was
    /// computed at still matches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Observes one dispatched request to `function`, with the parent
    /// function name from the request header if present (Algorithm 3).
    ///
    /// A request *with* a parent header counts as a hit for
    /// `ρ(function | parent)` and implicitly as a trigger of the edge
    /// group; a request *without* a header only bumps the function's own
    /// request count.
    pub fn observe_request(&mut self, function: &str, parent: Option<&str>) {
        self.epoch += 1;
        // Every request to `function` counts toward its own invocation
        // total (it may itself be a parent later).
        let entry = self.parents.entry(function.to_string()).or_default();
        entry.request_count += 1;
        entry.window_parent += 1;

        if let Some(parent) = parent {
            let p = self.parents.entry(parent.to_string()).or_default();
            *p.child_hits.entry(function.to_string()).or_insert(0) += 1;
            *p.window_child_hits.entry(function.to_string()).or_insert(0) += 1;
        }
    }

    /// The raw learned probability `ρ(child | parent)`: child hits divided
    /// by requests to the parent. `None` if the edge was never observed.
    pub fn probability(&self, parent: &str, child: &str) -> Option<f64> {
        let p = self.parents.get(parent)?;
        let hits = *p.child_hits.get(child)?;
        if p.request_count == 0 {
            return None;
        }
        Some(hits as f64 / p.request_count as f64)
    }

    /// The smoothed probability, if windows have been rolled; falls back to
    /// the raw ratio otherwise.
    pub fn smoothed_probability(&self, parent: &str, child: &str) -> Option<f64> {
        let p = self.parents.get(parent)?;
        if let Some(v) = p.smoothed.get(child).and_then(Ema::value) {
            return Some(v);
        }
        self.probability(parent, child)
    }

    /// All learned children of `parent`, with raw probabilities, sorted by
    /// descending probability then name (deterministic).
    pub fn children(&self, parent: &str) -> Vec<LearnedEdge> {
        let Some(p) = self.parents.get(parent) else {
            return Vec::new();
        };
        let mut edges: Vec<LearnedEdge> = p
            .child_hits
            .iter()
            .map(|(child, &hits)| LearnedEdge {
                child: child.clone(),
                probability: if p.request_count == 0 {
                    0.0
                } else {
                    hits as f64 / p.request_count as f64
                },
                hits,
            })
            .collect();
        edges.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.child.cmp(&b.child))
        });
        edges
    }

    /// Functions that have been observed as requests but never carried a
    /// parent header pointing at them from any observed parent — the
    /// candidate workflow roots.
    pub fn roots(&self) -> Vec<String> {
        let mut is_child: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for p in self.parents.values() {
            for child in p.child_hits.keys() {
                is_child.insert(child);
            }
        }
        let mut roots: Vec<String> = self
            .parents
            .iter()
            .filter(|(name, e)| e.request_count > 0 && !is_child.contains(name.as_str()))
            .map(|(name, _)| name.clone())
            .collect();
        roots.sort();
        roots
    }

    /// Number of distinct functions observed.
    pub fn observed_functions(&self) -> usize {
        self.parents.len()
    }

    /// Closes the current observation window and folds each window's
    /// child/parent ratio into the smoothed probabilities (the paper's
    /// "metrics being updated after every fixed interval of time", §3.1).
    /// Windows with no parent requests are skipped.
    pub fn roll_window(&mut self) {
        self.epoch += 1;
        let alpha = self.alpha;
        for p in self.parents.values_mut() {
            if p.window_parent == 0 {
                continue;
            }
            // Every known child participates: unobserved-in-window children
            // record a 0 ratio (their share shrank), matching Algorithm 3's
            // sibling updates.
            let known: Vec<String> = p.child_hits.keys().cloned().collect();
            for child in known {
                let hits = p.window_child_hits.get(&child).copied().unwrap_or(0);
                let ratio = hits as f64 / p.window_parent as f64;
                p.smoothed
                    .entry(child)
                    .or_insert_with(|| Ema::new(alpha))
                    .record(ratio);
            }
            p.window_parent = 0;
            p.window_child_hits.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_semantics_match_algorithm3() {
        let mut d = BranchDetector::new();
        for _ in 0..4 {
            d.observe_request("p", None);
        }
        d.observe_request("a", Some("p"));
        d.observe_request("a", Some("p"));
        d.observe_request("b", Some("p"));
        assert_eq!(d.probability("p", "a"), Some(0.5));
        assert_eq!(d.probability("p", "b"), Some(0.25));
        assert_eq!(d.probability("p", "zzz"), None);
    }

    #[test]
    fn sibling_probabilities_shift_as_observations_accumulate() {
        let mut d = BranchDetector::new();
        d.observe_request("p", None);
        d.observe_request("a", Some("p"));
        assert_eq!(d.probability("p", "a"), Some(1.0));
        // Another parent trigger goes to b: a's share halves.
        d.observe_request("p", None);
        d.observe_request("b", Some("p"));
        assert_eq!(d.probability("p", "a"), Some(0.5));
        assert_eq!(d.probability("p", "b"), Some(0.5));
    }

    #[test]
    fn children_sorted_deterministically() {
        let mut d = BranchDetector::new();
        for _ in 0..10 {
            d.observe_request("p", None);
        }
        for _ in 0..6 {
            d.observe_request("big", Some("p"));
        }
        for _ in 0..2 {
            d.observe_request("small_a", Some("p"));
        }
        for _ in 0..2 {
            d.observe_request("small_b", Some("p"));
        }
        let kids = d.children("p");
        assert_eq!(kids[0].child, "big");
        assert_eq!(kids[1].child, "small_a", "ties break by name");
        assert_eq!(kids[2].child, "small_b");
        assert_eq!(kids[0].hits, 6);
    }

    #[test]
    fn roots_are_functions_never_seen_as_children() {
        let mut d = BranchDetector::new();
        d.observe_request("root", None);
        d.observe_request("mid", Some("root"));
        d.observe_request("leaf", Some("mid"));
        assert_eq!(d.roots(), vec!["root".to_string()]);
        assert_eq!(d.observed_functions(), 3);
    }

    #[test]
    fn unknown_parent_yields_empty() {
        let d = BranchDetector::new();
        assert!(d.children("ghost").is_empty());
        assert_eq!(d.probability("ghost", "x"), None);
        assert!(d.roots().is_empty());
    }

    #[test]
    fn windowed_smoothing_tracks_drift() {
        let mut d = BranchDetector::with_alpha(0.5);
        // Window 1: p -> a 100%.
        for _ in 0..10 {
            d.observe_request("p", None);
            d.observe_request("a", Some("p"));
        }
        d.roll_window();
        assert_eq!(d.smoothed_probability("p", "a"), Some(1.0));
        // Window 2: p -> b 100%; a's smoothed value decays toward 0.
        for _ in 0..10 {
            d.observe_request("p", None);
            d.observe_request("b", Some("p"));
        }
        d.roll_window();
        let a = d.smoothed_probability("p", "a").unwrap();
        let b = d.smoothed_probability("p", "b").unwrap();
        assert!((a - 0.5).abs() < 1e-9, "a decayed: {a}");
        assert!(b > 0.4, "b rising: {b}");
        // Raw ratio averages the two behaviours.
        assert_eq!(d.probability("p", "a"), Some(0.5));
    }

    #[test]
    fn smoothed_falls_back_to_raw_before_first_window() {
        let mut d = BranchDetector::new();
        d.observe_request("p", None);
        d.observe_request("a", Some("p"));
        assert_eq!(d.smoothed_probability("p", "a"), Some(1.0));
    }

    #[test]
    fn empty_window_rolls_are_noops() {
        let mut d = BranchDetector::new();
        d.roll_window();
        d.observe_request("p", None);
        d.observe_request("a", Some("p"));
        d.roll_window();
        d.roll_window(); // no new observations: must not dilute
        assert_eq!(d.smoothed_probability("p", "a"), Some(1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn probabilities_of_children_sum_to_at_most_one_for_xor_traffic(
            outcomes in proptest::collection::vec(0usize..4, 1..200)
        ) {
            // XOR traffic: each parent trigger invokes exactly one child.
            let mut d = BranchDetector::new();
            for &o in &outcomes {
                d.observe_request("p", None);
                d.observe_request(&format!("c{o}"), Some("p"));
            }
            let total: f64 = d.children("p").iter().map(|e| e.probability).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        }

        #[test]
        fn hits_never_exceed_parent_requests_for_xor_traffic(
            outcomes in proptest::collection::vec(0usize..3, 1..100)
        ) {
            let mut d = BranchDetector::new();
            for &o in &outcomes {
                d.observe_request("p", None);
                d.observe_request(&format!("c{o}"), Some("p"));
            }
            for edge in d.children("p") {
                prop_assert!(edge.hits <= outcomes.len() as u64);
                prop_assert!(edge.probability >= 0.0 && edge.probability <= 1.0);
            }
        }
    }
}
