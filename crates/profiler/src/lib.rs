//! # xanadu-profiler
//!
//! The function-profiling layer of Xanadu (§3.2.2 and §3.3 of the paper).
//!
//! Xanadu profiles the runtime characteristics of workflow functions —
//! cold-start time, worker startup time, warm-start runtime — with
//! exponential moving averages, and for implicit chains also measures the
//! parent→child *invocation delay*. Those profiles feed the JIT deployment
//! planner in `xanadu-core`.
//!
//! This crate provides:
//!
//! * [`Ema`] — the exponential moving average primitive, with the paper's
//!   fixed-interval update semantics (§3.1).
//! * [`MetricsEngine`] — per-function profiles (cold start, warm runtime,
//!   startup) and per-edge invoke-delay estimates.
//! * [`BranchDetector`] — Algorithm 3: learns the workflow branch tree and
//!   its conditional probabilities from dispatched requests carrying a
//!   parent-function header.
//! * [`RequestCorrelator`] — the chronological parent↔child request
//!   matching (§3.2.2) used to infer invocation delays for implicit
//!   chains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod correlate;
mod ema;
mod metrics;

pub use branch::{BranchDetector, LearnedEdge};
pub use correlate::RequestCorrelator;
pub use ema::Ema;
pub use metrics::{FunctionProfile, MetricsEngine};
