//! The metrics engine: per-function and per-edge runtime profiles.

use crate::ema::Ema;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xanadu_simcore::SimDuration;

/// EMA-smoothed runtime profile of one function (§3.2.2): cold-start time,
/// worker startup time, and warm-start runtime.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionProfile {
    cold_start_ms: Ema,
    startup_ms: Ema,
    warm_runtime_ms: Ema,
}

impl FunctionProfile {
    /// Creates an empty profile with the given smoothing factor.
    pub fn with_alpha(alpha: f64) -> Self {
        FunctionProfile {
            cold_start_ms: Ema::new(alpha),
            startup_ms: Ema::new(alpha),
            warm_runtime_ms: Ema::new(alpha),
        }
    }

    /// Estimated cold-start latency (ms), or `fallback` if unobserved.
    pub fn cold_start_ms(&self, fallback: f64) -> f64 {
        self.cold_start_ms.value_or(fallback)
    }

    /// Estimated worker startup (sandbox readiness) latency (ms).
    pub fn startup_ms(&self, fallback: f64) -> f64 {
        self.startup_ms.value_or(fallback)
    }

    /// Estimated warm-start runtime (ms). The JIT planner uses this "as a
    /// reasonable estimate of a function's lifetime" (§3.2.2).
    pub fn warm_runtime_ms(&self, fallback: f64) -> f64 {
        self.warm_runtime_ms.value_or(fallback)
    }

    /// Whether any warm runtime has been observed yet.
    pub fn has_runtime_observation(&self) -> bool {
        self.warm_runtime_ms.count() > 0
    }
}

/// Collects runtime observations for every function of every workflow and
/// per-edge invocation delays for implicit chains.
///
/// # Example
///
/// ```
/// use xanadu_profiler::MetricsEngine;
/// use xanadu_simcore::SimDuration;
///
/// let mut m = MetricsEngine::new();
/// m.record_cold_start("pay", SimDuration::from_millis(3000));
/// m.record_warm_runtime("pay", SimDuration::from_millis(2500));
/// assert_eq!(m.profile("pay").unwrap().warm_runtime_ms(0.0), 2500.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsEngine {
    alpha: f64,
    profiles: HashMap<String, FunctionProfile>,
    /// Keyed by `(parent, child)`; serialized as a list of entries because
    /// JSON maps need string keys.
    #[serde(with = "invoke_delay_serde")]
    invoke_delays: HashMap<(String, String), Ema>,
    /// Bumped on every recorded observation; consumers (the plan cache)
    /// use it to detect that estimates may have changed.
    #[serde(default)]
    epoch: u64,
}

mod invoke_delay_serde {
    use super::Ema;
    use serde::{Deserialize, Error, Serialize, Value};
    use std::collections::HashMap;

    pub fn to_json(map: &HashMap<(String, String), Ema>) -> Value {
        // Sort entries so the persisted document is deterministic
        // regardless of hash-map iteration order.
        let mut entries: Vec<(&String, &String, &Ema)> =
            map.iter().map(|((p, c), e)| (p, c, e)).collect();
        entries.sort_by_key(|(p, c, _)| (p.as_str(), c.as_str()));
        entries.to_json()
    }

    pub fn from_json(value: &Value) -> Result<HashMap<(String, String), Ema>, Error> {
        let entries = Vec::<(String, String, Ema)>::from_json(value)?;
        Ok(entries.into_iter().map(|(p, c, e)| ((p, c), e)).collect())
    }
}

impl MetricsEngine {
    /// Creates an engine with the default smoothing factor.
    pub fn new() -> Self {
        Self::with_alpha(Ema::DEFAULT_ALPHA)
    }

    /// Creates an engine with a custom smoothing factor.
    pub fn with_alpha(alpha: f64) -> Self {
        MetricsEngine {
            alpha,
            profiles: HashMap::new(),
            invoke_delays: HashMap::new(),
            epoch: 0,
        }
    }

    /// Monotonic change counter: bumped by every `record_*` call, so a
    /// cached product of this engine's estimates is valid exactly while
    /// the epoch it was computed at still matches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn profile_entry(&mut self, function: &str) -> &mut FunctionProfile {
        let alpha = self.alpha;
        self.profiles
            .entry(function.to_string())
            .or_insert_with(|| FunctionProfile::with_alpha(alpha))
    }

    /// Records an observed cold-start latency for `function`.
    pub fn record_cold_start(&mut self, function: &str, latency: SimDuration) {
        self.epoch += 1;
        self.profile_entry(function)
            .cold_start_ms
            .record(latency.as_millis_f64());
    }

    /// Records an observed worker startup latency for `function`.
    pub fn record_startup(&mut self, function: &str, latency: SimDuration) {
        self.epoch += 1;
        self.profile_entry(function)
            .startup_ms
            .record(latency.as_millis_f64());
    }

    /// Records an observed warm-start runtime for `function`.
    pub fn record_warm_runtime(&mut self, function: &str, runtime: SimDuration) {
        self.epoch += 1;
        self.profile_entry(function)
            .warm_runtime_ms
            .record(runtime.as_millis_f64());
    }

    /// Records an observed parent→child invocation delay (implicit chains,
    /// §3.2.2).
    pub fn record_invoke_delay(&mut self, parent: &str, child: &str, delay: SimDuration) {
        self.epoch += 1;
        let alpha = self.alpha;
        self.invoke_delays
            .entry((parent.to_string(), child.to_string()))
            .or_insert_with(|| Ema::new(alpha))
            .record(delay.as_millis_f64());
    }

    /// The profile of `function`, if any observation exists.
    pub fn profile(&self, function: &str) -> Option<&FunctionProfile> {
        self.profiles.get(function)
    }

    /// The estimated parent→child invocation delay (ms), or `None` if
    /// unobserved.
    pub fn invoke_delay_ms(&self, parent: &str, child: &str) -> Option<f64> {
        self.invoke_delays
            .get(&(parent.to_string(), child.to_string()))
            .and_then(Ema::value)
    }

    /// Number of functions with at least one observation.
    pub fn profiled_functions(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_created_on_demand() {
        let mut m = MetricsEngine::new();
        assert!(m.profile("f").is_none());
        m.record_startup("f", SimDuration::from_millis(400));
        assert_eq!(m.profile("f").unwrap().startup_ms(0.0), 400.0);
        assert_eq!(m.profiled_functions(), 1);
    }

    #[test]
    fn fallbacks_used_when_unobserved() {
        let mut m = MetricsEngine::new();
        m.record_cold_start("f", SimDuration::from_millis(3000));
        let p = m.profile("f").unwrap();
        assert_eq!(p.cold_start_ms(1.0), 3000.0);
        assert_eq!(p.warm_runtime_ms(777.0), 777.0);
        assert!(!p.has_runtime_observation());
    }

    #[test]
    fn ema_smoothing_applied() {
        let mut m = MetricsEngine::with_alpha(0.5);
        m.record_warm_runtime("f", SimDuration::from_millis(100));
        m.record_warm_runtime("f", SimDuration::from_millis(300));
        assert_eq!(m.profile("f").unwrap().warm_runtime_ms(0.0), 200.0);
    }

    #[test]
    fn invoke_delays_are_per_edge() {
        let mut m = MetricsEngine::new();
        m.record_invoke_delay("a", "b", SimDuration::from_millis(50));
        m.record_invoke_delay("a", "c", SimDuration::from_millis(90));
        assert_eq!(m.invoke_delay_ms("a", "b"), Some(50.0));
        assert_eq!(m.invoke_delay_ms("a", "c"), Some(90.0));
        assert_eq!(m.invoke_delay_ms("b", "a"), None);
    }

    #[test]
    fn separate_functions_do_not_interfere() {
        let mut m = MetricsEngine::new();
        m.record_cold_start("f", SimDuration::from_millis(1000));
        m.record_cold_start("g", SimDuration::from_millis(3000));
        assert_eq!(m.profile("f").unwrap().cold_start_ms(0.0), 1000.0);
        assert_eq!(m.profile("g").unwrap().cold_start_ms(0.0), 3000.0);
    }
}
