//! # Xanadu
//!
//! A from-scratch Rust reproduction of **Xanadu: Mitigating cascading cold
//! starts in serverless function chain deployments** (Daw, Bellur,
//! Kulkarni — Middleware '20).
//!
//! Serverless *function chains* amplify the cold-start problem: each hop of
//! a workflow can trigger a fresh sandbox provisioning, so the overhead
//! grows linearly with chain depth. Xanadu eliminates the cascade with
//! three ideas:
//!
//! 1. **Most-Likely-Path inference** — a probabilistic model over the
//!    workflow DAG predicts which functions a trigger will reach
//!    ([`xanadu_core::mlp`]).
//! 2. **Speculative provisioning** — sandboxes for the MLP are deployed
//!    before their functions are invoked, converting cascading cold starts
//!    into warm starts ([`xanadu_core::speculation`]).
//! 3. **Just-in-time deployment** — each sandbox is provisioned on a
//!    profiled timeline so it becomes warm *just* before its invocation,
//!    keeping pre-provisioning cost near zero ([`xanadu_core::jit`]).
//!
//! This facade crate re-exports the full workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`xanadu_chain`] | workflow DAG model, SDL parser |
//! | [`xanadu_sandbox`] | isolation sandboxes, warm pools, providers |
//! | [`xanadu_profiler`] | EMA metrics, branch detection, correlation |
//! | [`xanadu_core`] | MLP, JIT planner, speculation engine, cost model |
//! | [`xanadu_platform`] | the Dispatch Manager / event-driven executor |
//! | [`xanadu_baselines`] | calibrated Knative/OpenWhisk/ASF/ADF models |
//! | [`xanadu_workloads`] | paper workloads and arrival processes |
//! | [`xanadu_simcore`] | deterministic DES kernel and statistics |
//!
//! # Quickstart
//!
//! ```
//! use xanadu::prelude::*;
//!
//! // A three-function chain of 500 ms container functions.
//! let dag = linear_chain("demo", 3, &FunctionSpec::new("f").service_ms(500.0))?;
//!
//! // Run it on Xanadu with just-in-time speculative provisioning.
//! let mut platform = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 42));
//! platform.deploy(dag)?;
//! platform.trigger_at("demo", SimTime::ZERO)?;
//! platform.run_until_idle();
//!
//! let report = platform.finish();
//! let result = &report.results[0];
//! // Only the first function pays a cold start; the rest are pre-warmed.
//! assert_eq!(result.cold_starts, 1);
//! assert_eq!(result.warm_starts, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod serve;

pub use xanadu_baselines;
pub use xanadu_chain;
pub use xanadu_core;
pub use xanadu_platform;
pub use xanadu_profiler;
pub use xanadu_sandbox;
pub use xanadu_simcore;
pub use xanadu_workloads;

/// The most common imports for building and running workflows.
pub mod prelude {
    pub use xanadu_chain::{
        linear_chain, BranchMode, ChainError, FunctionSpec, IsolationLevel, NodeId,
        WorkflowBuilder, WorkflowDag,
    };
    pub use xanadu_core::policy::{
        ConfiguredPolicy, MpcConfig, PolicyRegistry, PolicySpec, RlConfig, SpeculationPolicy,
    };
    pub use xanadu_core::speculation::{ExecutionMode, MissPolicy, SpeculationConfig};
    pub use xanadu_platform::{
        diff_audits, diff_metrics, Audit, AuditSummary, AutoscaleConfig, BusEvent, ClusterConfig,
        ClusterReport, DiffThresholds, FaultConfig, Histogram, HostSpec, JitStats, LatencyStats,
        LearnedState, MetricsRegistry, MlpStats, Observer, ObserverHandle, PlacementPolicy,
        Platform, PlatformConfig, PlatformError, PlatformReport, Regression, RequestAudit,
        RunResult, TenantConfig, Topic, WasteStats,
    };
    pub use xanadu_simcore::{Distribution, SimDuration, SimTime};
}
