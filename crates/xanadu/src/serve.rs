//! The `xanadu serve` daemon tier: unbounded stream ingest with
//! incremental checkpointing and a live observability plane.
//!
//! `serve` turns the batch simulator into a long-running service. A
//! trigger stream (replayed from a `xanadu record` file or regenerated
//! from a seed) is consumed in fixed-size *epochs*; after each epoch the
//! full service state — streaming audit, SLO windows, learning sketches,
//! learned chain profiles and the stream cursor — is appended to a
//! [`SegmentLog`] under `--checkpoint-dir`. Killing the process between
//! checkpoints loses nothing that was durable: rerunning the same
//! command replays the manifest, resumes at the recorded cursor and
//! produces **byte-identical** final audit and alert exports, because
//! every epoch's platform is seeded from `derive(seed, "serve-epoch")
//! .child(epoch)` and never from wall-clock state.
//!
//! Observability while running:
//!
//! * `--alerts-out` — every SLO breach appended as one schema-validated
//!   JSON line the moment its window becomes final (see
//!   [`SloMonitor::evaluate_below`] for why a window is only final once
//!   the next trigger time has passed it).
//! * `--metrics-text` — a Prometheus-style text exposition rewritten
//!   atomically (`.tmp` + rename) after every checkpoint.
//! * `--status-every K` — a human status line on stderr every K
//!   checkpoints (stream uptime, ingest rate, window quantiles, open
//!   alerts, sketch occupancy, checkpoint lag).
//!
//! Unlike the other subcommands, `serve` touches the filesystem
//! directly while running (the checkpoint log, the alerts stream and
//! the metrics text are *live* artifacts, not end-of-run exports); only
//! the final `--audit-out`/`--slo-out`/`--bench-out` documents go
//! through the staged-[`ExportFile`] path.

use std::io::Write as _;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::cli::{render_slo_alert, CliError, ExportFile};
use xanadu_chain::{linear_chain, FunctionSpec};
use xanadu_core::speculation::ExecutionMode;
use xanadu_core::{CountMinSketch, SpaceSaving};
use xanadu_platform::export::{
    alert_json_line, service_metrics_text, slo_json_string, streaming_json_string, ServiceStatus,
};
use xanadu_platform::{
    AuditCheckpoint, BusEvent, DiffThresholds, Platform, PlatformConfig, SegmentLog, SloCheckpoint,
    SloConfig, SloMonitor, StreamingAudit, StreamingConfig,
};
use xanadu_simcore::{RngStream, SimDuration};
use xanadu_workloads::stream::{
    GeneratedStream, RecordedStream, StreamEvent, StreamHeader, StreamSource,
};

/// Arguments of `xanadu serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Path of a recorded stream file (`xanadu record`); when absent the
    /// stream is regenerated from the population flags below.
    pub stream: Option<String>,
    /// Generated-stream length (ignored with `--stream`).
    pub events: u64,
    /// Generated-stream workflow population (ignored with `--stream`).
    pub workflows: u32,
    /// Linear-chain depth of every workflow (ignored with `--stream`).
    pub depth: u32,
    /// Per-workflow Poisson arrival rate (ignored with `--stream`).
    pub rate_per_hour: f64,
    /// Master seed: arrival processes and per-epoch platform seeds.
    pub seed: u64,
    /// Xanadu execution mode for every epoch platform.
    pub mode: ExecutionMode,
    /// Directory of the append-only checkpoint segment log.
    pub checkpoint_dir: String,
    /// Stream events per checkpoint epoch.
    pub checkpoint_every: u64,
    /// Append one JSON alert line here per SLO breach
    /// (`docs/schemas/alerts.schema.json`).
    pub alerts_out: Option<String>,
    /// Rewrite this Prometheus-style text file atomically each flush.
    pub metrics_text: Option<String>,
    /// Write the final streaming-audit JSON here.
    pub audit_out: Option<String>,
    /// Write the final windowed SLO evaluation JSON here.
    pub slo_out: Option<String>,
    /// Path of a `DiffThresholds` JSON document gating the SLO windows.
    pub slo: Option<String>,
    /// Tumbling SLO window width in simulated seconds.
    pub slo_window_secs: u64,
    /// Stop after this many checkpoints (0 = run to stream end). The
    /// kill-and-restart suites use this to pause at an exact boundary.
    pub stop_after_checkpoints: u64,
    /// Print a stderr status line every K checkpoints (0 = off).
    pub status_every: u64,
    /// Capacity of the space-saving edge sketch.
    pub sketch_edges: usize,
    /// Merge a `service` throughput row into this `BENCH_harness.json`.
    pub bench_out: Option<String>,
    /// Exit non-zero when the run ends with any SLO alert raised.
    pub fail_on_alert: bool,
}

/// Arguments of `xanadu record`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordArgs {
    /// Destination stream file.
    pub out: String,
    /// Events to record.
    pub events: u64,
    /// Workflow population.
    pub workflows: u32,
    /// Linear-chain depth of every workflow.
    pub depth: u32,
    /// Per-workflow Poisson arrival rate.
    pub rate_per_hour: f64,
    /// Master seed.
    pub seed: u64,
}

/// Checkpoint-document ids inside the segment log.
const DOC_CURSOR: &str = "serve/cursor";
const DOC_AUDIT: &str = "serve/audit";
const DOC_SLO: &str = "serve/slo";
const DOC_SKETCH: &str = "serve/sketch";
const LEARNED_DOCS: [&str; 2] = ["learned/metrics", "learned/branches"];

/// The resume cursor: where in the stream the durable state ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServeCursor {
    /// Cursor format version.
    version: u32,
    /// Digest of the stream header — resuming against a different
    /// stream (or epoch cadence) is a mechanical error, not a guess.
    header_digest: String,
    /// Epoch width the checkpoints were cut at.
    checkpoint_every: u64,
    /// Stream events durably consumed.
    events_consumed: u64,
    /// Requests completed across all epochs (the request-id base).
    requests: u64,
    /// Epochs completed.
    epochs: u64,
    /// Alerts emitted so far (sanity cross-check on resume).
    alerts_emitted: u64,
}

/// The bounded-memory learning plane: hot invocation edges (candidates
/// for speculative pre-warm across implicit chains) plus per-workflow
/// arrival-rate estimates. Serialized whole into each checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SketchState {
    /// Space-saving top-K over `caller>callee` edge keys.
    edges: SpaceSaving,
    /// Count-min per-workflow arrival counts.
    rates: CountMinSketch,
}

/// Rows of the count-min arrival sketch (error bound `e/width · N` per
/// estimate with probability `1 − e^−depth`).
const RATE_SKETCH_DEPTH: usize = 4;
const RATE_SKETCH_WIDTH: usize = 512;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn workflow_err(e: impl std::fmt::Display) -> CliError {
    CliError::Workflow(e.to_string())
}

/// Drains a stream source into its header and full event list.
fn drain_stream(mut src: impl StreamSource) -> (StreamHeader, Vec<StreamEvent>) {
    let header = src.header().clone();
    let mut events = Vec::with_capacity(header.events as usize);
    while let Some(ev) = src.next_event() {
        events.push(ev);
    }
    (header, events)
}

/// Runs `xanadu record`: generate the seeded stream and stage it as a
/// JSONL export.
pub fn run_record(record: &RecordArgs, exports: &mut Vec<ExportFile>) -> Result<String, CliError> {
    if record.workflows == 0 {
        return Err(CliError::BadValue {
            flag: "--workflows".into(),
            value: "0".into(),
            expected: "a non-empty workflow population".into(),
        });
    }
    let (header, events) = drain_stream(GeneratedStream::new(
        record.workflows,
        record.depth,
        record.rate_per_hour,
        record.seed,
        record.events,
    ));
    let contents = RecordedStream::render(&header, &events);
    let span_s = events.last().map_or(0.0, |e| e.at_us as f64 / 1e6);
    exports.push(ExportFile {
        path: record.out.clone(),
        contents,
    });
    Ok(format!(
        "recorded {} events — {} workflows × depth {} at {}/h each (seed {}), \
         spanning {span_s:.1}s of stream time\n",
        events.len(),
        header.workflows,
        header.depth,
        header.rate_per_hour,
        header.seed,
    ))
}

/// Everything `serve` accumulates across epochs.
struct ServiceState {
    audit: StreamingAudit,
    slo: SloMonitor,
    sketch: SketchState,
    events_consumed: u64,
    request_base: u64,
    epoch: u64,
}

/// Loads the durable service state from a replayed checkpoint store, or
/// builds the fresh epoch-zero state.
fn load_state(
    durable: &xanadu_platform::MetaStore,
    serve: &ServeArgs,
    slo_config: &SloConfig,
    header_digest: &str,
) -> Result<(ServiceState, bool), CliError> {
    let Some((cursor_doc, _)) = durable.get(DOC_CURSOR) else {
        return Ok((
            ServiceState {
                audit: StreamingAudit::new(StreamingConfig::default()),
                slo: SloMonitor::collector(slo_config.clone()),
                sketch: SketchState {
                    edges: SpaceSaving::new(serve.sketch_edges),
                    rates: CountMinSketch::new(RATE_SKETCH_DEPTH, RATE_SKETCH_WIDTH),
                },
                events_consumed: 0,
                request_base: 0,
                epoch: 0,
            },
            false,
        ));
    };
    let bad_doc = |id: &str, e: &dyn std::fmt::Display| {
        CliError::Workflow(format!("checkpoint document {id} is corrupt: {e}"))
    };
    let cursor: ServeCursor =
        serde_json::from_value(cursor_doc.clone()).map_err(|e| bad_doc(DOC_CURSOR, &e))?;
    if cursor.header_digest != header_digest {
        return Err(CliError::Workflow(format!(
            "checkpoint in {} was recorded from a different stream \
             (header digest {} != {header_digest}); point --checkpoint-dir \
             at a fresh directory or replay the original stream",
            serve.checkpoint_dir, cursor.header_digest
        )));
    }
    if cursor.checkpoint_every != serve.checkpoint_every {
        return Err(CliError::Workflow(format!(
            "checkpoint in {} was cut every {} events but --checkpoint-every \
             is {}; epoch boundaries must match for a byte-identical resume",
            serve.checkpoint_dir, cursor.checkpoint_every, serve.checkpoint_every
        )));
    }
    let typed = |id: &str| -> Result<Value, CliError> {
        durable
            .get(id)
            .map(|(doc, _)| doc.clone())
            .ok_or_else(|| CliError::Workflow(format!("checkpoint document {id} is missing")))
    };
    let audit_cp: AuditCheckpoint =
        serde_json::from_value(typed(DOC_AUDIT)?).map_err(|e| bad_doc(DOC_AUDIT, &e))?;
    let slo_cp: SloCheckpoint =
        serde_json::from_value(typed(DOC_SLO)?).map_err(|e| bad_doc(DOC_SLO, &e))?;
    if slo_cp.window_us != slo_config.window.as_micros() {
        return Err(CliError::Workflow(format!(
            "checkpointed SLO window is {}µs but --slo-window-secs asks for \
             {}µs; window widths must match to resume",
            slo_cp.window_us,
            slo_config.window.as_micros()
        )));
    }
    let sketch: SketchState =
        serde_json::from_value(typed(DOC_SKETCH)?).map_err(|e| bad_doc(DOC_SKETCH, &e))?;
    let slo = SloMonitor::from_checkpoint(&slo_cp);
    debug_assert_eq!(slo.alerts().len() as u64, cursor.alerts_emitted);
    Ok((
        ServiceState {
            audit: StreamingAudit::from_checkpoint(&audit_cp),
            slo,
            sketch,
            events_consumed: cursor.events_consumed,
            request_base: cursor.requests,
            epoch: cursor.epochs,
        },
        true,
    ))
}

/// Builds one epoch's platform: reseeded config, the full implicit
/// workflow population, and the learned chain profiles restored from the
/// durable store (when any epoch has persisted them yet).
fn epoch_platform(
    config: &PlatformConfig,
    header: &StreamHeader,
    durable: &xanadu_platform::MetaStore,
    epoch: u64,
    base_seed: u64,
) -> Result<Platform, CliError> {
    let epoch_seed = RngStream::derive(base_seed, "serve-epoch")
        .child(epoch)
        .next_u64();
    let mut platform = Platform::new(config.reseeded(epoch_seed));
    for wf in 0..header.workflows {
        let name = header.workflow_name(wf);
        let template = FunctionSpec::new(format!("{name}-f")).service_ms(400.0);
        let dag = linear_chain(&name, header.depth as usize, &template).map_err(workflow_err)?;
        platform.deploy_implicit(dag).map_err(workflow_err)?;
    }
    if LEARNED_DOCS.iter().all(|id| durable.get(id).is_some()) {
        platform
            .restore_learned_state(durable)
            .map_err(workflow_err)?;
    }
    Ok(platform)
}

/// Atomically replaces `path` with `contents` (`.tmp` + rename, same
/// discipline as the checkpoint log) so scrapers never see a torn file.
fn rewrite_atomic(path: &str, contents: &str) -> Result<(), CliError> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| workflow_err(format!("{tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| workflow_err(format!("{path}: {e}")))
}

/// Runs `xanadu serve` end to end. See the module docs for the epoch
/// protocol and which artifacts are live versus staged.
///
/// # Errors
///
/// [`CliError::Workflow`] on stream/checkpoint problems and
/// [`CliError::SloBreach`] when `--fail-on-alert` is set and the run
/// ends with alerts raised.
pub fn run_serve(
    serve: &ServeArgs,
    source: &impl Fn(&str) -> Result<String, String>,
    exports: &mut Vec<ExportFile>,
) -> Result<String, CliError> {
    let (header, events) = match &serve.stream {
        Some(path) => {
            let text = source(path).map_err(CliError::Workflow)?;
            let recorded = RecordedStream::parse(&text)
                .map_err(|e| CliError::Workflow(format!("{path}: {e}")))?;
            drain_stream(recorded)
        }
        None => drain_stream(GeneratedStream::new(
            serve.workflows,
            serve.depth,
            serve.rate_per_hour,
            serve.seed,
            serve.events,
        )),
    };
    let header_json = serde_json::to_value(&header)
        .expect("header serializes")
        .to_json_string();
    let header_digest = format!("fnv1a64:{:016x}", fnv1a64(header_json.as_bytes()));

    let thresholds: DiffThresholds = match &serve.slo {
        None => DiffThresholds::default(),
        Some(path) => {
            let text = source(path).map_err(CliError::Workflow)?;
            serde_json::from_str(&text).map_err(|e| {
                CliError::Workflow(format!("{path}: not a thresholds document: {e}"))
            })?
        }
    };
    let slo_config = SloConfig {
        window: SimDuration::from_secs(serve.slo_window_secs),
        thresholds,
    };
    let window_us = slo_config.window.as_micros();

    let log = SegmentLog::open(&serve.checkpoint_dir)
        .map_err(|e| workflow_err(format!("checkpoint log: {e}")))?;
    let mut durable = log
        .replay()
        .map_err(|e| workflow_err(format!("checkpoint log: {e}")))?;
    let mut segments = log
        .manifest()
        .map_err(|e| workflow_err(format!("checkpoint log: {e}")))?
        .segments
        .len() as u64;

    let (mut state, resumed) = load_state(&durable, serve, &slo_config, &header_digest)?;
    let mut restored_event = resumed.then_some(BusEvent::CheckpointRestored {
        epoch: state.epoch,
        segments,
        events: state.events_consumed,
    });

    // The alerts stream is rewritten to exactly the durable alert list on
    // startup: a crash after an append but before the matching checkpoint
    // must not leave phantom lines behind.
    if let Some(path) = &serve.alerts_out {
        let mut text = String::new();
        for alert in state.slo.alerts() {
            text.push_str(&alert_json_line(alert));
            text.push('\n');
        }
        std::fs::write(path, text).map_err(|e| workflow_err(format!("{path}: {e}")))?;
    }

    let config = PlatformConfig::builder()
        .for_mode(serve.mode, serve.seed)
        .record_traces(false)
        .build()
        .map_err(workflow_err)?;

    let total = events.len() as u64;
    let started = Instant::now();
    let start_events = state.events_consumed;
    let mut checkpoints_this_run = 0u64;

    while state.events_consumed < total {
        if serve.stop_after_checkpoints > 0 && checkpoints_this_run >= serve.stop_after_checkpoints
        {
            break;
        }
        let slice_end = (state.events_consumed + serve.checkpoint_every).min(total);
        let slice = &events[state.events_consumed as usize..slice_end as usize];

        let mut platform = epoch_platform(&config, &header, &durable, state.epoch, serve.seed)?;
        if let Some(event) = restored_event.take() {
            platform.announce(event);
        }
        let audit_handle =
            platform.attach_observer(StreamingAudit::new(StreamingConfig::default()));
        let slo_handle = platform.attach_observer(SloMonitor::collector(slo_config.clone()));

        let evictions_before = state.sketch.edges.evictions();
        for ev in slice {
            let name = header.workflow_name(ev.wf);
            state.sketch.rates.observe(&name, 1);
            for hop in 1..header.depth {
                let edge = format!("{name}-f{}>{name}-f{hop}", hop - 1);
                state.sketch.edges.observe(&edge);
            }
            platform.trigger_at(&name, ev.at()).map_err(workflow_err)?;
        }
        platform.run_until_idle();
        platform.roll_profile_window();

        let mut epoch_audit = audit_handle.snapshot();
        epoch_audit.offset_requests(state.request_base);
        state.request_base += epoch_audit.summary().requests;
        state.audit.merge_from(&epoch_audit);
        state.slo.merge_from(&slo_handle.snapshot());
        state.events_consumed = slice_end;
        state.epoch += 1;

        // A tumbling window is only final once every future completion
        // must land past it: the next epoch's first trigger bounds all of
        // its completions from below.
        let horizon = if state.events_consumed < total {
            events[state.events_consumed as usize].at_us / window_us
        } else {
            u64::MAX
        };
        let fresh_alerts = state.slo.evaluate_below(horizon);
        if !fresh_alerts.is_empty() {
            if let Some(path) = &serve.alerts_out {
                let mut file = std::fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(path)
                    .map_err(|e| workflow_err(format!("{path}: {e}")))?;
                for alert in &fresh_alerts {
                    writeln!(file, "{}", alert_json_line(alert))
                        .map_err(|e| workflow_err(format!("{path}: {e}")))?;
                }
            }
            for alert in fresh_alerts {
                platform.announce(alert.into_event());
            }
        }
        let evicted = state.sketch.edges.evictions() - evictions_before;
        if evicted > 0 {
            platform.announce(BusEvent::SketchEviction {
                evicted,
                occupancy: state.sketch.edges.occupancy() as u64,
                capacity: state.sketch.edges.capacity() as u64,
            });
        }

        platform.persist_learned_state();
        for id in LEARNED_DOCS {
            if let Some((doc, _)) = platform.metastore().get(id) {
                durable.put(id, doc.clone());
            }
        }
        let cursor = ServeCursor {
            version: 1,
            header_digest: header_digest.clone(),
            checkpoint_every: serve.checkpoint_every,
            events_consumed: state.events_consumed,
            requests: state.request_base,
            epochs: state.epoch,
            alerts_emitted: state.slo.alerts().len() as u64,
        };
        let mut docs: Vec<(String, Value)> = Vec::with_capacity(6);
        for id in LEARNED_DOCS {
            if let Some((doc, _)) = durable.get(id) {
                docs.push((id.to_string(), doc.clone()));
            }
        }
        docs.push((
            DOC_AUDIT.to_string(),
            serde_json::to_value(state.audit.checkpoint()).expect("audit checkpoint serializes"),
        ));
        docs.push((
            DOC_SLO.to_string(),
            serde_json::to_value(state.slo.checkpoint()).expect("slo checkpoint serializes"),
        ));
        docs.push((
            DOC_SKETCH.to_string(),
            serde_json::to_value(&state.sketch).expect("sketch state serializes"),
        ));
        docs.push((
            DOC_CURSOR.to_string(),
            serde_json::to_value(&cursor).expect("cursor serializes"),
        ));
        let doc_count = docs.len() as u64;
        log.append(&docs)
            .map_err(|e| workflow_err(format!("checkpoint log: {e}")))?;
        checkpoints_this_run += 1;
        platform.announce(BusEvent::CheckpointWritten {
            epoch: state.epoch - 1,
            segment: segments,
            docs: doc_count,
            events: state.events_consumed,
        });
        segments += 1;

        let summary = state.audit.summary();
        let wall = started.elapsed().as_secs_f64();
        let ingested = state.events_consumed - start_events;
        let status = ServiceStatus {
            uptime_ms: events[state.events_consumed as usize - 1].at_us as f64 / 1000.0,
            events: state.events_consumed,
            requests: state.request_base,
            checkpoints: state.epoch,
            alerts: state.slo.alerts().len() as u64,
            sketch_occupancy: state.sketch.edges.occupancy() as u64,
            sketch_capacity: state.sketch.edges.capacity() as u64,
            sketch_evictions: state.sketch.edges.evictions(),
            checkpoint_lag_events: total - state.events_consumed,
            events_per_sec: if wall > 0.0 {
                ingested as f64 / wall
            } else {
                0.0
            },
        };
        if serve.status_every > 0 && checkpoints_this_run.is_multiple_of(serve.status_every) {
            eprintln!(
                "serve: epoch {} | stream {:.1}s | {}/{} events | {:.0} ev/s | \
                 p50 {:.0}ms p95 {:.0}ms | alerts {} | sketch {}/{} | lag {}",
                state.epoch - 1,
                status.uptime_ms / 1000.0,
                status.events,
                total,
                status.events_per_sec,
                summary.end_to_end.quantile_ms(0.5),
                summary.end_to_end.quantile_ms(0.95),
                status.alerts,
                status.sketch_occupancy,
                status.sketch_capacity,
                status.checkpoint_lag_events,
            );
        }
        if let Some(path) = &serve.metrics_text {
            rewrite_atomic(path, &service_metrics_text(&status, &summary))?;
        }
    }

    let summary = state.audit.summary();
    let slo_report = state.slo.report();
    let audit_json = streaming_json_string(&state.audit);
    let audit_digest = format!("fnv1a64:{:016x}", fnv1a64(audit_json.as_bytes()));
    let wall = started.elapsed().as_secs_f64();
    let ingested = state.events_consumed - start_events;
    let events_per_sec = if wall > 0.0 {
        ingested as f64 / wall
    } else {
        0.0
    };

    let mut out = format!(
        "service — {} workflows × depth {}, {} stream events ({}, seed {}, \
         checkpoint every {})\n",
        header.workflows,
        header.depth,
        total,
        serve.mode.label(),
        serve.seed,
        serve.checkpoint_every,
    );
    out.push_str(&format!(
        "stream: {}\n",
        match &serve.stream {
            Some(path) => format!("recorded from {path}"),
            None => format!("generated at {}/h per workflow", header.rate_per_hour),
        }
    ));
    out.push_str(&format!(
        "ingested: {}/{} events in {} epoch(s) ({} checkpoint(s) this run), \
         wall {wall:.2}s, {events_per_sec:.0} events/sec\n",
        state.events_consumed, total, state.epoch, checkpoints_this_run,
    ));
    out.push_str(&format!(
        "requests: {}   p50 {:.0}ms   p95 {:.0}ms   p99.9 {:.0}ms\n",
        summary.requests,
        summary.end_to_end.quantile_ms(0.5),
        summary.end_to_end.quantile_ms(0.95),
        summary.end_to_end.quantile_ms(0.999),
    ));
    out.push_str(&format!(
        "sketches: {}/{} edges tracked ({} evictions), {} arrivals counted \
         (±{:.1} per estimate)\n",
        state.sketch.edges.occupancy(),
        state.sketch.edges.capacity(),
        state.sketch.edges.evictions(),
        state.sketch.rates.total(),
        state.sketch.rates.error_bound(),
    ));
    out.push_str(&format!(
        "slo: {} window(s) of {}s, {} alert(s)\n",
        slo_report.windows.len(),
        serve.slo_window_secs,
        state.slo.alerts().len(),
    ));
    out.push_str(&format!(
        "checkpoints: {} segment(s) in {}\n",
        segments, serve.checkpoint_dir,
    ));
    if state.events_consumed < total {
        out.push_str(&format!(
            "paused after {checkpoints_this_run} checkpoint(s): {}/{} events \
             durable — rerun the same command to resume\n",
            state.events_consumed, total,
        ));
    }
    out.push_str(&format!("audit digest: {audit_digest}\n"));

    if let Some(path) = &serve.audit_out {
        exports.push(ExportFile {
            path: path.clone(),
            contents: audit_json,
        });
    }
    if let Some(path) = &serve.slo_out {
        exports.push(ExportFile {
            path: path.clone(),
            contents: slo_json_string(&slo_report),
        });
    }
    if let Some(path) = &serve.bench_out {
        let delta = (state.events_consumed == total)
            .then(|| {
                batch_p95_delta_ms(
                    &config,
                    &header,
                    &events,
                    summary.end_to_end.quantile_ms(0.95),
                )
            })
            .transpose()?;
        let mut root: Value = source(path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_else(|| serde_json::json!({}));
        if let Some(obj) = root.as_object_mut() {
            let amortized_ms = if state.epoch > 0 {
                wall * 1000.0 / checkpoints_this_run.max(1) as f64
            } else {
                0.0
            };
            obj.insert(
                "service".to_string(),
                serde_json::json!({
                    "events_per_sec": events_per_sec,
                    "events": state.events_consumed,
                    "requests": state.request_base,
                    "checkpoints": state.epoch,
                    "checkpoint_amortized_ms": amortized_ms,
                    "streaming_vs_batch_p95_delta_ms": delta,
                    "audit_digest": audit_digest,
                    "source": "xanadu serve",
                }),
            );
        }
        exports.push(ExportFile {
            path: path.clone(),
            contents: root.to_json_string_pretty() + "\n",
        });
    }

    if serve.fail_on_alert && !state.slo.alerts().is_empty() {
        return Err(CliError::SloBreach {
            windows: slo_report.windows.len(),
            details: state.slo.alerts().iter().map(render_slo_alert).collect(),
            exports: std::mem::take(exports),
        });
    }
    Ok(out)
}

/// The `streaming_vs_batch_p95_delta_ms` bench figure: replays the whole
/// stream through ONE platform (no epoch resets, warm state persists
/// across what would have been checkpoint boundaries) and reports how
/// far the epoch-generational service's p95 sits from that batch
/// reference. This prices the service tier's restart-anywhere guarantee.
fn batch_p95_delta_ms(
    config: &PlatformConfig,
    header: &StreamHeader,
    events: &[StreamEvent],
    streaming_p95_ms: f64,
) -> Result<f64, CliError> {
    let durable = xanadu_platform::MetaStore::new();
    let mut platform = epoch_platform(config, header, &durable, 0, header.seed)?;
    let audit_handle = platform.attach_observer(StreamingAudit::new(StreamingConfig::default()));
    for ev in events {
        platform
            .trigger_at(&header.workflow_name(ev.wf), ev.at())
            .map_err(workflow_err)?;
    }
    platform.run_until_idle();
    let batch_p95 = audit_handle
        .snapshot()
        .summary()
        .end_to_end
        .quantile_ms(0.95);
    Ok(streaming_p95_ms - batch_p95)
}
