//! Thin shell around [`xanadu::cli`]: reads SDL files from disk and prints
//! the rendered report. See `xanadu help` for usage.

use std::process::ExitCode;
use xanadu::cli::{execute_with_exports, parse_args, CliError, USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let read_file = |path: &str| std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"));
    match execute_with_exports(&command, read_file) {
        Ok((report, exports)) => {
            for file in &exports {
                if let Err(e) = std::fs::write(&file.path, &file.contents) {
                    eprintln!("error: writing {}: {e}", file.path);
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", file.path);
            }
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            // An SLO breach still writes the staged exports (the windowed
            // evaluation is the evidence for the non-zero exit).
            if let CliError::SloBreach { exports, .. } = &e {
                for file in exports {
                    if let Err(write_err) = std::fs::write(&file.path, &file.contents) {
                        eprintln!("error: writing {}: {write_err}", file.path);
                    } else {
                        eprintln!("wrote {}", file.path);
                    }
                }
            }
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
