//! The `xanadu` command-line front end.
//!
//! Lets a user run a workflow — written in the JSON state-definition
//! language (paper Listing 1) — against any platform model without
//! writing Rust:
//!
//! ```text
//! xanadu run --sdl pipeline.json --mode jit --triggers 5 --gap-min 20
//! xanadu inspect --sdl pipeline.json
//! ```
//!
//! Argument parsing is hand-rolled (no extra dependencies); the logic
//! lives here so it is unit-testable, with `src/bin/xanadu_cli.rs` as a
//! thin shell.

use std::fmt;
use xanadu_baselines::BaselineKind;
use xanadu_chain::sdl;
use xanadu_core::mlp::infer_mlp;
use xanadu_core::speculation::ExecutionMode;
use xanadu_platform::{FaultConfig, Platform, PlatformConfig};
use xanadu_simcore::{SimDuration, SimTime};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a workflow and report per-request outcomes.
    Run(RunArgs),
    /// Print a workflow's structure and predicted most-likely path.
    Inspect {
        /// Path to the SDL document.
        sdl_path: String,
        /// Emit Graphviz DOT instead of the text summary.
        dot: bool,
    },
    /// Validate a JSON document against a JSON-schema file (used by CI to
    /// check `--trace-out`/`--metrics-out` exports).
    Validate {
        /// Path to the JSON document to check.
        json_path: String,
        /// Path to the schema.
        schema_path: String,
    },
    /// Print usage help.
    Help,
}

/// Arguments of `xanadu run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Path to the SDL document.
    pub sdl_path: String,
    /// Platform to run on.
    pub platform: PlatformChoice,
    /// Number of triggers.
    pub triggers: u64,
    /// Gap between triggers, minutes.
    pub gap_min: u64,
    /// RNG seed.
    pub seed: u64,
    /// Deploy as an implicit chain (the platform must learn the workflow).
    pub implicit: bool,
    /// Print the per-request execution timeline (Gantt) after the table.
    pub trace: bool,
    /// Fault-injection rate in `[0, 1]`; 0 disables injection.
    pub fault_rate: f64,
    /// Fault RNG seed, independent of the platform seed.
    pub fault_seed: u64,
    /// Write a Chrome `trace_event` JSON span export here.
    pub trace_out: Option<String>,
    /// Write the flat metrics-registry JSON export here.
    pub metrics_out: Option<String>,
}

/// A file the CLI wants written: path plus full contents. Returned by
/// [`execute_with_exports`] so the pure command logic stays testable
/// without touching the filesystem; only the binary performs the writes.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportFile {
    /// Destination path, verbatim from the flag.
    pub path: String,
    /// Complete file contents (pretty JSON, trailing newline).
    pub contents: String,
}

/// Which platform model to run on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatformChoice {
    /// A Xanadu mode.
    Xanadu(ExecutionMode),
    /// An emulated baseline.
    Baseline(BaselineKind),
}

impl PlatformChoice {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "cold" => Ok(PlatformChoice::Xanadu(ExecutionMode::Cold)),
            "spec" | "speculative" => Ok(PlatformChoice::Xanadu(ExecutionMode::Speculative)),
            "jit" => Ok(PlatformChoice::Xanadu(ExecutionMode::Jit)),
            other => other
                .parse::<BaselineKind>()
                .map(PlatformChoice::Baseline)
                .map_err(|_| CliError::BadValue {
                    flag: "--mode".into(),
                    value: other.into(),
                    expected: "cold|spec|jit|knative|openwhisk|asf|adf".into(),
                }),
        }
    }

    fn build(self, seed: u64) -> Platform {
        match self {
            PlatformChoice::Xanadu(mode) => Platform::new(PlatformConfig::for_mode(mode, seed)),
            PlatformChoice::Baseline(kind) => xanadu_baselines::baseline_platform(kind, seed),
        }
    }

    fn label(self) -> String {
        match self {
            PlatformChoice::Xanadu(mode) => mode.label().to_string(),
            PlatformChoice::Baseline(kind) => kind.label().to_string(),
        }
    }
}

/// CLI errors, rendered to stderr by the binary.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A flag was given without a value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// The offending flag.
        flag: String,
        /// The value supplied.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
    /// A required flag is absent.
    MissingFlag(String),
    /// Reading or parsing the SDL document failed.
    Workflow(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}` (try `xanadu help`)")
            }
            CliError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            CliError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for {flag}, expected {expected}"),
            CliError::MissingFlag(flag) => write!(f, "required flag {flag} is missing"),
            CliError::Workflow(msg) => write!(f, "workflow error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Usage text printed by `xanadu help`.
pub const USAGE: &str = "\
xanadu — serverless function-chain platform (paper reproduction)

USAGE:
  xanadu run --sdl <file> [--mode cold|spec|jit|knative|openwhisk|asf|adf]
             [--triggers N] [--gap-min M] [--seed S] [--implicit] [--trace]
             [--fault-rate R] [--fault-seed F]
             [--trace-out <file>] [--metrics-out <file>]
  xanadu inspect --sdl <file> [--dot]
  xanadu validate --json <file> --schema <file>
  xanadu help

`run` deploys the workflow described by the JSON state-definition
document and fires N triggers M minutes apart, printing per-request
latency, overhead and cold/warm starts.
`--fault-rate R` (0..1) injects deterministic worker crashes and latency
spikes at rate R, seeded by `--fault-seed` (default 0xFA17); recovery
(timeouts, bounded retry, re-planning) is reported per request.
`--trace-out` writes a Chrome trace_event JSON span export (load it in
chrome://tracing or Perfetto); `--metrics-out` writes the aggregated
counters and latency histograms as flat JSON.
`inspect` prints the parsed structure and the predicted most-likely path.
`validate` checks a JSON document against a schema file and exits
non-zero on mismatch (CI uses it on the exports).";

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first problem found.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "inspect" => {
            let sdl_path =
                flag_value(args, "--sdl")?.ok_or_else(|| CliError::MissingFlag("--sdl".into()))?;
            let dot = args.iter().any(|a| a == "--dot");
            Ok(Command::Inspect { sdl_path, dot })
        }
        "run" => {
            let sdl_path =
                flag_value(args, "--sdl")?.ok_or_else(|| CliError::MissingFlag("--sdl".into()))?;
            let platform = match flag_value(args, "--mode")? {
                Some(v) => PlatformChoice::parse(&v)?,
                None => PlatformChoice::Xanadu(ExecutionMode::Jit),
            };
            let triggers = parse_num(args, "--triggers", 1)?;
            let gap_min = parse_num(args, "--gap-min", 20)?;
            let seed = parse_num(args, "--seed", 42)?;
            let implicit = args.iter().any(|a| a == "--implicit");
            let trace = args.iter().any(|a| a == "--trace");
            let fault_rate = parse_fraction(args, "--fault-rate", 0.0)?;
            let fault_seed = parse_num(args, "--fault-seed", 0xFA17)?;
            let trace_out = flag_value(args, "--trace-out")?;
            let metrics_out = flag_value(args, "--metrics-out")?;
            Ok(Command::Run(RunArgs {
                sdl_path,
                platform,
                triggers,
                gap_min,
                seed,
                implicit,
                trace,
                fault_rate,
                fault_seed,
                trace_out,
                metrics_out,
            }))
        }
        "validate" => {
            let json_path = flag_value(args, "--json")?
                .ok_or_else(|| CliError::MissingFlag("--json".into()))?;
            let schema_path = flag_value(args, "--schema")?
                .ok_or_else(|| CliError::MissingFlag("--schema".into()))?;
            Ok(Command::Validate {
                json_path,
                schema_path,
            })
        }
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(CliError::MissingValue(flag.to_string())),
        },
    }
}

fn parse_num(args: &[String], flag: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            flag: flag.into(),
            value: v,
            expected: "a non-negative integer".into(),
        }),
    }
}

fn parse_fraction(args: &[String], flag: &str, default: f64) -> Result<f64, CliError> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => match v.parse::<f64>() {
            Ok(x) if (0.0..=1.0).contains(&x) => Ok(x),
            _ => Err(CliError::BadValue {
                flag: flag.into(),
                value: v,
                expected: "a number in [0, 1]".into(),
            }),
        },
    }
}

/// Executes a parsed command against an SDL document's *content* (the
/// binary reads the file; tests pass strings). Returns the rendered
/// report, discarding any export files — use [`execute_with_exports`]
/// when `--trace-out`/`--metrics-out` must take effect.
///
/// # Errors
///
/// Returns [`CliError::Workflow`] for SDL or platform failures.
pub fn execute(
    command: &Command,
    sdl_source: impl Fn(&str) -> Result<String, String>,
) -> Result<String, CliError> {
    execute_with_exports(command, sdl_source).map(|(report, _)| report)
}

/// Like [`execute`], but also returns the files `--trace-out` /
/// `--metrics-out` asked for. The command logic never touches the
/// filesystem itself; the binary writes what this returns.
///
/// # Errors
///
/// Returns [`CliError::Workflow`] for SDL or platform failures.
pub fn execute_with_exports(
    command: &Command,
    sdl_source: impl Fn(&str) -> Result<String, String>,
) -> Result<(String, Vec<ExportFile>), CliError> {
    let mut exports = Vec::new();
    let report = execute_inner(command, sdl_source, &mut exports)?;
    Ok((report, exports))
}

fn execute_inner(
    command: &Command,
    sdl_source: impl Fn(&str) -> Result<String, String>,
    exports: &mut Vec<ExportFile>,
) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Validate {
            json_path,
            schema_path,
        } => {
            let doc = sdl_source(json_path).map_err(CliError::Workflow)?;
            let schema = sdl_source(schema_path).map_err(CliError::Workflow)?;
            let doc: serde_json::Value = serde_json::from_str(&doc)
                .map_err(|e| CliError::Workflow(format!("{json_path}: {e}")))?;
            let schema: serde_json::Value = serde_json::from_str(&schema)
                .map_err(|e| CliError::Workflow(format!("{schema_path}: {e}")))?;
            xanadu_platform::export::validate_schema(&doc, &schema)
                .map_err(|e| CliError::Workflow(format!("{json_path}: {e}")))?;
            Ok(format!("{json_path}: valid against {schema_path}\n"))
        }
        Command::Inspect { sdl_path, dot } => {
            let doc = sdl_source(sdl_path).map_err(CliError::Workflow)?;
            let dag = sdl::parse(workflow_name(sdl_path), &doc)
                .map_err(|e| CliError::Workflow(e.to_string()))?;
            if *dot {
                return Ok(xanadu_chain::to_dot(&dag));
            }
            let mut out = format!(
                "workflow `{}`: {} functions, depth {}, {} conditional points\n",
                dag.name(),
                dag.len(),
                dag.depth(),
                dag.conditional_points()
            );
            out.push_str(&format!(
                "expected execution (critical path): {:.2}s\n",
                dag.critical_path_ms() / 1000.0
            ));
            let mlp = infer_mlp(&dag, |_, _| None);
            let path: Vec<&str> = mlp
                .path
                .iter()
                .map(|&n| dag.node(n).spec().name())
                .collect();
            out.push_str(&format!("most likely path: {}\n", path.join(" -> ")));
            for id in dag.node_ids() {
                let node = dag.node(id);
                out.push_str(&format!(
                    "  {} [{} MB, {}, {:.0}ms]\n",
                    node.spec().name(),
                    node.spec().memory(),
                    node.spec().isolation_level(),
                    node.spec().mean_service_ms()
                ));
            }
            Ok(out)
        }
        Command::Run(run) => {
            let doc = sdl_source(&run.sdl_path).map_err(CliError::Workflow)?;
            let name = workflow_name(&run.sdl_path).to_string();
            let dag = sdl::parse(&name, &doc).map_err(|e| CliError::Workflow(e.to_string()))?;
            let mut platform = run.platform.build(run.seed);
            if run.fault_rate > 0.0 {
                platform.set_faults(FaultConfig::with_rate(run.fault_rate, run.fault_seed));
            }
            let registry = run.metrics_out.as_ref().map(|_| platform.attach_metrics());
            let result = if run.implicit {
                platform.deploy_implicit(dag)
            } else {
                platform.deploy(dag)
            };
            result.map_err(|e| CliError::Workflow(e.to_string()))?;
            let mut t = SimTime::ZERO;
            let mut request_ids = Vec::new();
            for _ in 0..run.triggers {
                let id = platform
                    .trigger_at(&name, t)
                    .map_err(|e| CliError::Workflow(e.to_string()))?;
                request_ids.push(id);
                platform.run_until_idle();
                platform.roll_profile_window();
                t += SimDuration::from_mins(run.gap_min);
            }
            let traces: Vec<(u64, String)> = if run.trace {
                request_ids
                    .iter()
                    .filter_map(|&id| platform.trace(id).map(|tr| (id, tr.render_gantt(72))))
                    .collect()
            } else {
                Vec::new()
            };
            if let Some(path) = &run.trace_out {
                let spans: Vec<(u64, xanadu_platform::timeline::Trace)> = request_ids
                    .iter()
                    .filter_map(|&id| platform.trace(id).map(|tr| (id, tr.clone())))
                    .collect();
                exports.push(ExportFile {
                    path: path.clone(),
                    contents: xanadu_platform::export::chrome_trace_string(&spans),
                });
            }
            if let (Some(path), Some(registry)) = (&run.metrics_out, &registry) {
                exports.push(ExportFile {
                    path: path.clone(),
                    contents: xanadu_platform::export::metrics_json_string(&registry.snapshot()),
                });
            }
            let report = platform.finish();
            let mut out = format!(
                "platform {} — {} triggers of `{}` every {} min (seed {})\n",
                run.platform.label(),
                run.triggers,
                name,
                run.gap_min,
                run.seed
            );
            let faulty = run.fault_rate > 0.0;
            if faulty {
                out.push_str("req  end-to-end   overhead  cold  warm  misses  faults  retries\n");
            } else {
                out.push_str("req  end-to-end   overhead  cold  warm  misses\n");
            }
            for r in &report.results {
                out.push_str(&format!(
                    "{:>3}  {:>9.2}s  {:>8.2}s  {:>4}  {:>4}  {:>6}",
                    r.request,
                    r.end_to_end.as_secs_f64(),
                    r.overhead.as_secs_f64(),
                    r.cold_starts,
                    r.warm_starts,
                    r.misses
                ));
                if faulty {
                    out.push_str(&format!("  {:>6}  {:>7}", r.faults, r.retries));
                }
                out.push('\n');
            }
            out.push_str(&format!(
                "mean overhead: {:.2}s   total resources: {:.1} core·s CPU, {:.1} MB·s memory\n",
                report.mean_overhead_ms() / 1000.0,
                report.total_resources().cpu_s,
                report.total_resources().mem_mbs
            ));
            if faulty {
                let (total_faults, total_retries) = report.fault_counts();
                out.push_str(&format!(
                    "faults injected: {total_faults}   retries: {total_retries}   \
                     (rate {}, fault seed {})\n",
                    run.fault_rate, run.fault_seed
                ));
            }
            for (id, gantt) in traces {
                out.push_str(&format!(
                    "\ntimeline of request {id} (░ provisioning/idle, █ executing):\n"
                ));
                out.push_str(&gantt);
            }
            Ok(out)
        }
    }
}

fn workflow_name(path: &str) -> &str {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("workflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    const DOC: &str = r#"{
        "a": {"type": "function", "wait_for": [], "service_ms": 200},
        "b": {"type": "function", "wait_for": ["a"], "service_ms": 300}
    }"#;

    fn source(_path: &str) -> Result<String, String> {
        Ok(DOC.to_string())
    }

    #[test]
    fn parse_help_and_empty() {
        assert_eq!(parse_args(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parse_run_with_defaults() {
        let cmd = parse_args(&args(&["run", "--sdl", "wf.json"])).unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(run.sdl_path, "wf.json");
        assert_eq!(run.platform, PlatformChoice::Xanadu(ExecutionMode::Jit));
        assert_eq!(run.triggers, 1);
        assert_eq!(run.gap_min, 20);
        assert!(!run.implicit);
    }

    #[test]
    fn parse_run_full_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--mode",
            "openwhisk",
            "--triggers",
            "3",
            "--gap-min",
            "5",
            "--seed",
            "7",
            "--implicit",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(
            run.platform,
            PlatformChoice::Baseline(BaselineKind::OpenWhisk)
        );
        assert_eq!((run.triggers, run.gap_min, run.seed), (3, 5, 7));
        assert!(run.implicit);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_args(&args(&["launch"])),
            Err(CliError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse_args(&args(&["run"])),
            Err(CliError::MissingFlag(_))
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl"])),
            Err(CliError::MissingValue(_))
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--mode", "lambda"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--triggers", "many"])),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn inspect_renders_structure_and_mlp() {
        let cmd = parse_args(&args(&["inspect", "--sdl", "flow.json"])).unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("workflow `flow`: 2 functions, depth 2"));
        assert!(out.contains("most likely path: a -> b"));
        assert!(out.contains("512 MB"));
    }

    #[test]
    fn inspect_dot_emits_graphviz() {
        let cmd = parse_args(&args(&["inspect", "--sdl", "flow.json", "--dot"])).unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.starts_with("digraph \"flow\""));
        assert!(out.contains("\"a\" -> \"b\""));
    }

    #[test]
    fn run_prints_per_request_rows() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "spec",
            "--triggers",
            "2",
        ]))
        .unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("platform xanadu-spec — 2 triggers"), "{out}");
        // Two request rows plus summary.
        assert_eq!(
            out.matches("\n  0 ").count() + out.matches("\n  1 ").count(),
            2,
            "{out}"
        );
        assert!(out.contains("mean overhead"));
    }

    #[test]
    fn run_with_trace_prints_gantt() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--trace",
        ]))
        .unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("timeline of request 0"), "{out}");
        assert!(out.contains('█'), "{out}");
    }

    #[test]
    fn parse_fault_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--fault-rate",
            "0.4",
            "--fault-seed",
            "9",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(run.fault_rate, 0.4);
        assert_eq!(run.fault_seed, 9);

        let Command::Run(defaults) = parse_args(&args(&["run", "--sdl", "wf.json"])).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(defaults.fault_rate, 0.0);
        assert_eq!(defaults.fault_seed, 0xFA17);

        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--fault-rate", "1.5"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--fault-rate", "lots"])),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn run_with_faults_reports_fault_columns() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "3",
            "--fault-rate",
            "1.0",
            "--fault-seed",
            "5",
        ]))
        .unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("faults  retries"), "{out}");
        assert!(out.contains("faults injected:"), "{out}");
        // Every triggered request still terminates under certain faults.
        assert!(out.matches("s  ").count() >= 3, "{out}");
        // And the same invocation is reproducible.
        let again = execute(&cmd, source).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn run_surfaces_workflow_errors() {
        let cmd = parse_args(&args(&["run", "--sdl", "bad.json"])).unwrap();
        let err = execute(&cmd, |_| Ok("not json".into())).unwrap_err();
        assert!(matches!(err, CliError::Workflow(_)));
        let err = execute(&cmd, |_| Err("no such file".into())).unwrap_err();
        assert!(matches!(err, CliError::Workflow(_)));
    }

    #[test]
    fn help_text_via_execute() {
        let out = execute(&Command::Help, source).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn parse_export_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.json",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(run.trace_out.as_deref(), Some("trace.json"));
        assert_eq!(run.metrics_out.as_deref(), Some("metrics.json"));
        let Command::Run(defaults) = parse_args(&args(&["run", "--sdl", "wf.json"])).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(defaults.trace_out, None);
        assert_eq!(defaults.metrics_out, None);
    }

    #[test]
    fn run_returns_requested_exports() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "2",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.json",
        ]))
        .unwrap();
        let (report, exports) = execute_with_exports(&cmd, source).unwrap();
        assert!(report.contains("mean overhead"));
        assert_eq!(exports.len(), 2);
        assert_eq!(exports[0].path, "t.json");
        assert!(exports[0].contents.contains("traceEvents"), "trace export");
        assert_eq!(exports[1].path, "m.json");
        assert!(exports[1].contents.contains("counters"), "metrics export");
        assert!(exports[1].contents.contains("requests.completed"));
        // Without the flags, no exports and an identical report.
        let bare = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "2",
        ]))
        .unwrap();
        let (bare_report, bare_exports) = execute_with_exports(&bare, source).unwrap();
        assert!(bare_exports.is_empty());
        assert_eq!(report, bare_report, "exports must not perturb the report");
    }

    #[test]
    fn validate_accepts_and_rejects() {
        let files = |path: &str| -> Result<String, String> {
            match path {
                "doc.json" => Ok(r#"{"n": 3}"#.into()),
                "schema.json" => Ok(r#"{"type": "object", "required": ["n"],
                        "properties": {"n": {"type": "integer"}},
                        "additionalProperties": false}"#
                    .into()),
                "bad.json" => Ok(r#"{"n": "three"}"#.into()),
                other => Err(format!("{other}: not found")),
            }
        };
        let ok = parse_args(&args(&[
            "validate",
            "--json",
            "doc.json",
            "--schema",
            "schema.json",
        ]))
        .unwrap();
        assert!(execute(&ok, files).unwrap().contains("valid"));
        let bad = parse_args(&args(&[
            "validate",
            "--json",
            "bad.json",
            "--schema",
            "schema.json",
        ]))
        .unwrap();
        let err = execute(&bad, files).unwrap_err();
        assert!(matches!(err, CliError::Workflow(_)), "{err}");
        assert!(matches!(
            parse_args(&args(&["validate", "--json", "doc.json"])),
            Err(CliError::MissingFlag(_))
        ));
    }
}
