//! The `xanadu` command-line front end.
//!
//! Lets a user run a workflow — written in the JSON state-definition
//! language (paper Listing 1) — against any platform model without
//! writing Rust:
//!
//! ```text
//! xanadu run --sdl pipeline.json --mode jit --triggers 5 --gap-min 20
//! xanadu inspect --sdl pipeline.json
//! ```
//!
//! Argument parsing is hand-rolled (no extra dependencies); the logic
//! lives here so it is unit-testable, with `src/bin/xanadu_cli.rs` as a
//! thin shell.

use crate::serve::{RecordArgs, ServeArgs};
use std::fmt;
use xanadu_baselines::BaselineKind;
use xanadu_chain::{linear_chain, sdl, FunctionSpec};
use xanadu_core::mlp::infer_mlp;
use xanadu_core::policy::{ConfiguredPolicy, PolicySpec};
use xanadu_core::speculation::{ExecutionMode, MissPolicy, SpeculationConfig};
use xanadu_platform::shard::{replay_sharded_with, ShardOptions, ShardTelemetry, ShardWorkload};
use xanadu_platform::{
    diff_audits, diff_metrics, Audit, AutoscaleConfig, ClusterConfig, DiffThresholds, FaultConfig,
    MetricsRegistry, ObserverHandle, PlacementPolicy, Platform, PlatformConfig, SloConfig,
    StreamingConfig,
};
use xanadu_simcore::{SimDuration, SimTime};
use xanadu_workloads::azure::{
    generate_trace, scale_to_invocations, total_invocations, AzureTraceConfig,
};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a workflow and report per-request outcomes.
    Run(RunArgs),
    /// Print a workflow's structure and predicted most-likely path.
    Inspect {
        /// Path to the SDL document.
        sdl_path: String,
        /// Emit Graphviz DOT instead of the text summary.
        dot: bool,
    },
    /// Validate a JSON document against a JSON-schema file (used by CI to
    /// check `--trace-out`/`--metrics-out`/`--audit-out` exports).
    Validate {
        /// Path to the JSON document to check.
        json_path: String,
        /// Path to the schema.
        schema_path: String,
    },
    /// Run a workload and print the speculation audit (critical-path
    /// decomposition, MLP precision/recall, waste, JIT timing).
    Analyze(RunArgs),
    /// Replay an Azure-style fleet trace over sharded event loops
    /// (`--shards` OS threads) and print throughput plus a report digest.
    Replay(ReplayArgs),
    /// Compare two audit or metrics snapshots; exit non-zero when a
    /// threshold regresses.
    Diff(DiffArgs),
    /// Record a seeded trigger stream to a JSONL file for `serve`.
    Record(RecordArgs),
    /// Run the service tier: ingest a trigger stream in checkpointed
    /// epochs with live SLO alerting and Prometheus-style metrics.
    Serve(ServeArgs),
    /// Print usage help.
    Help,
}

/// Arguments of `xanadu diff`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffArgs {
    /// Path of the baseline snapshot (audit or metrics JSON).
    pub baseline_path: String,
    /// Path of the candidate snapshot (same kind as the baseline).
    pub candidate_path: String,
    /// Regression gates.
    pub thresholds: DiffThresholds,
}

/// Arguments of `xanadu run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Path to the SDL document.
    pub sdl_path: String,
    /// Platform to run on.
    pub platform: PlatformChoice,
    /// Number of triggers.
    pub triggers: u64,
    /// Gap between triggers, minutes.
    pub gap_min: u64,
    /// RNG seed.
    pub seed: u64,
    /// Deploy as an implicit chain (the platform must learn the workflow).
    pub implicit: bool,
    /// Print the per-request execution timeline (Gantt) after the table.
    pub trace: bool,
    /// Fault-injection rate in `[0, 1]`; 0 disables injection.
    pub fault_rate: f64,
    /// Fault RNG seed, independent of the platform seed.
    pub fault_seed: u64,
    /// Cluster width; 0 keeps the paper's single-machine testbed.
    pub hosts: u32,
    /// Memory per cluster host, MB.
    pub host_memory_mb: u64,
    /// Placement policy when `--hosts` is set.
    pub placement: PlacementPolicy,
    /// Number of equal-weight tenants sharing the cluster; 0 disables
    /// admission control.
    pub tenants: u32,
    /// Per-epoch host-failure probability in `[0, 1]`; 0 disables host
    /// faults.
    pub host_fail_rate: f64,
    /// Autoscaler fleet ceiling; 0 disables reactive autoscaling.
    pub autoscale_max: u32,
    /// Speculation look-ahead horizon in `[0, 1]` (§3.2.1); 1.0
    /// pre-provisions the whole MLP, 0.0 degenerates to Cold. Ignored by
    /// the baselines.
    pub aggressiveness: f64,
    /// Prediction-miss policy: stop all planned provisioning (the paper's
    /// §3.2.2 behaviour) or replan and retarget compatible co-located
    /// spares (§7 future work). Ignored by the baselines.
    pub miss_policy: MissPolicy,
    /// Speculation policy selected by `--policy name[:param=val,...]`.
    /// The default keeps the paper's engine; `--mode`/`--aggressiveness`/
    /// `--miss-policy` are back-compat aliases for its parameters and
    /// conflict with an explicit `--policy`.
    pub policy: PolicySpec,
    /// Write a Chrome `trace_event` JSON span export here.
    pub trace_out: Option<String>,
    /// Write the flat metrics-registry JSON export here.
    pub metrics_out: Option<String>,
    /// Write the speculation-audit JSON export here.
    pub audit_out: Option<String>,
}

impl RunArgs {
    /// Label for report headers: the policy name when a learned policy
    /// is selected, otherwise the platform's own label.
    fn label(&self) -> String {
        if self.policy.is_default() {
            self.platform.label()
        } else {
            self.policy.name().to_string()
        }
    }
}

/// Arguments of `xanadu replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayArgs {
    /// Target fleet size: the Azure trace is scaled (at fixed class
    /// rates and duration) until its expected invocation count reaches
    /// this.
    pub invocations: u64,
    /// OS threads the logical shards are spread over. Never affects
    /// report bytes, only wall-clock time.
    pub shards: usize,
    /// Conservative barrier-window width in simulated seconds.
    pub window_secs: u64,
    /// Master seed for the trace and every per-shard platform.
    pub seed: u64,
    /// Xanadu execution mode (baselines are not sharded).
    pub mode: ExecutionMode,
    /// Whether the speculation engine's plan cache is enabled.
    pub plan_cache: bool,
    /// Fault-injection rate in `[0, 1]`; 0 disables injection.
    pub fault_rate: f64,
    /// Fault RNG seed.
    pub fault_seed: u64,
    /// Cluster width per logical shard; 0 keeps the single testbed.
    pub hosts: u32,
    /// Memory per cluster host, MB.
    pub host_memory_mb: u64,
    /// Placement policy when `--hosts` is set.
    pub placement: PlacementPolicy,
    /// Number of equal-weight tenants sharing each shard's cluster.
    pub tenants: u32,
    /// Per-epoch host-failure probability in `[0, 1]`.
    pub host_fail_rate: f64,
    /// Prediction-miss policy (see [`RunArgs::miss_policy`]).
    pub miss_policy: MissPolicy,
    /// Speculation policy (see [`RunArgs::policy`]).
    pub policy: PolicySpec,
    /// Speculation look-ahead horizon in `[0, 1]`; settable only through
    /// a `--policy xanadu:aggressiveness=A` spec on replay.
    pub aggressiveness: f64,
    /// Depth of each workflow's linear chain.
    pub depth: u64,
    /// Write the full merged `PlatformReport` JSON here.
    pub report_out: Option<String>,
    /// Write the streaming speculation-audit JSON here. Backed by the
    /// bounded-memory [`StreamingAudit`] — no per-request trace recording,
    /// so fleet-scale replays stay flat in memory.
    pub audit_out: Option<String>,
    /// Write the merged per-shard metrics registry (plus the
    /// deterministic `kernel.*` counters) as flat JSON here.
    pub metrics_out: Option<String>,
    /// Path of a `DiffThresholds` JSON document enabling SLO gating of
    /// tumbling completion-time windows; any breach exits non-zero, like
    /// `xanadu diff`.
    pub slo: Option<String>,
    /// Write the windowed SLO evaluation JSON here
    /// (`docs/schemas/slo.schema.json`). Implies SLO monitoring with
    /// default thresholds when `--slo` is absent.
    pub slo_out: Option<String>,
    /// Tumbling SLO window width in simulated seconds.
    pub slo_window_secs: u64,
    /// Print a wall-clock heartbeat (progress, events/sec, backlog, ETA)
    /// to stderr while replaying. Never affects stdout or exports.
    pub progress: bool,
    /// Merge an `events_per_sec` kernel-throughput row into this
    /// `BENCH_harness.json`-style file (other sections are preserved).
    pub bench_out: Option<String>,
}

/// A file the CLI wants written: path plus full contents. Returned by
/// [`execute_with_exports`] so the pure command logic stays testable
/// without touching the filesystem; only the binary performs the writes.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportFile {
    /// Destination path, verbatim from the flag.
    pub path: String,
    /// Complete file contents (pretty JSON, trailing newline).
    pub contents: String,
}

/// Which platform model to run on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatformChoice {
    /// A Xanadu mode.
    Xanadu(ExecutionMode),
    /// An emulated baseline.
    Baseline(BaselineKind),
}

impl PlatformChoice {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "cold" => Ok(PlatformChoice::Xanadu(ExecutionMode::Cold)),
            "spec" | "speculative" => Ok(PlatformChoice::Xanadu(ExecutionMode::Speculative)),
            "jit" => Ok(PlatformChoice::Xanadu(ExecutionMode::Jit)),
            other => other
                .parse::<BaselineKind>()
                .map(PlatformChoice::Baseline)
                .map_err(|_| CliError::BadValue {
                    flag: "--mode".into(),
                    value: other.into(),
                    expected: "cold|spec|jit|knative|openwhisk|asf|adf".into(),
                }),
        }
    }

    fn build(
        self,
        seed: u64,
        aggressiveness: f64,
        miss_policy: MissPolicy,
        cluster: ClusterConfig,
        policy: &PolicySpec,
    ) -> Platform {
        match self {
            PlatformChoice::Xanadu(mode) => {
                let mut builder = PlatformConfig::builder().for_mode(mode, seed);
                if policy.is_default() {
                    let mut spec = SpeculationConfig::for_mode(mode);
                    spec.aggressiveness = aggressiveness;
                    spec.miss_policy = miss_policy;
                    builder = builder.speculation(spec);
                } else {
                    // Learned planners ignore the xanadu speculation knobs;
                    // their parameters arrive inside the spec itself.
                    builder = builder.policy(policy.clone()).label(policy.name());
                }
                let cfg = builder
                    .cluster(cluster)
                    .build()
                    .expect("mode defaults with a [0,1] aggressiveness are valid");
                Platform::new(cfg)
            }
            // Baselines model the paper's single-machine deployments; the
            // cluster flags are a Xanadu-mode concept and are ignored here.
            PlatformChoice::Baseline(kind) => xanadu_baselines::baseline_platform(kind, seed),
        }
    }

    fn label(self) -> String {
        match self {
            PlatformChoice::Xanadu(mode) => mode.label().to_string(),
            PlatformChoice::Baseline(kind) => kind.label().to_string(),
        }
    }
}

/// CLI errors, rendered to stderr by the binary.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A flag was given without a value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// The offending flag.
        flag: String,
        /// The value supplied.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
    /// A required flag is absent.
    MissingFlag(String),
    /// `--policy` was combined with one of its back-compat alias flags
    /// (`--mode`, `--aggressiveness`, `--miss-policy`); the aliases only
    /// exist to desugar into a policy spec, so mixing the two spellings
    /// would silently drop one side.
    PolicyConflict {
        /// The `--policy` value given.
        policy: String,
        /// The alias flags also present.
        conflicting: Vec<String>,
    },
    /// Reading or parsing the SDL document failed.
    Workflow(String),
    /// `xanadu diff` found metrics past their thresholds; each detail line
    /// names the regressed field by its JSON-pointer-style path.
    Regressions {
        /// Path of the baseline snapshot.
        baseline: String,
        /// Path of the candidate snapshot.
        candidate: String,
        /// Rendered [`Regression`](xanadu_platform::Regression) rows.
        details: Vec<String>,
    },
    /// `xanadu replay --slo` caught windows past their thresholds. The
    /// staged exports ride along so the binary still writes
    /// `--slo-out`/`--report-out` before exiting non-zero — the breach
    /// evidence must not be lost to the failure it reports.
    SloBreach {
        /// Non-empty windows the monitor evaluated.
        windows: usize,
        /// Rendered [`SloAlert`](xanadu_platform::SloAlert) rows.
        details: Vec<String>,
        /// Exports staged before the gate fired.
        exports: Vec<ExportFile>,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}` (try `xanadu help`)")
            }
            CliError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            CliError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for {flag}, expected {expected}"),
            CliError::MissingFlag(flag) => write!(f, "required flag {flag} is missing"),
            CliError::PolicyConflict {
                policy,
                conflicting,
            } => write!(
                f,
                "--policy {policy} conflicts with {}; encode them as policy parameters \
                 instead (e.g. --policy xanadu:mode=jit,aggressiveness=0.5,miss=replan-and-reuse)",
                conflicting.join(", ")
            ),
            CliError::Workflow(msg) => write!(f, "workflow error: {msg}"),
            CliError::Regressions {
                baseline,
                candidate,
                details,
            } => {
                write!(
                    f,
                    "{} regression(s) in {candidate} versus {baseline}:",
                    details.len()
                )?;
                for d in details {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            CliError::SloBreach {
                windows, details, ..
            } => {
                write!(
                    f,
                    "slo: {} alert(s) across {windows} evaluated window(s):",
                    details.len()
                )?;
                // Long-horizon replays can breach in hundreds of windows;
                // cap the stderr rendering — the full list is in --slo-out.
                const MAX_DETAIL_LINES: usize = 10;
                for d in details.iter().take(MAX_DETAIL_LINES) {
                    write!(f, "\n  {d}")?;
                }
                if details.len() > MAX_DETAIL_LINES {
                    write!(
                        f,
                        "\n  ... and {} more (full evaluation in --slo-out)",
                        details.len() - MAX_DETAIL_LINES
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Usage text printed by `xanadu help`.
pub const USAGE: &str = "\
xanadu — serverless function-chain platform (paper reproduction)

USAGE:
  xanadu run --sdl <file> [--mode cold|spec|jit|knative|openwhisk|asf|adf]
             [--policy name[:param=val,...]]
             [--triggers N] [--gap-min M] [--seed S] [--implicit] [--trace]
             [--fault-rate R] [--fault-seed F] [--aggressiveness A]
             [--miss-policy stop|replan-and-reuse]
             [--hosts N] [--host-memory-mb M] [--placement P] [--tenants K]
             [--host-fail-rate R] [--autoscale-max N]
             [--trace-out <file>] [--metrics-out <file>] [--audit-out <file>]
  xanadu analyze --sdl <file> [same flags as run]
  xanadu replay [--invocations N] [--shards S] [--window-secs W] [--seed S]
                [--mode cold|spec|jit] [--policy name[:param=val,...]]
                [--no-plan-cache] [--depth D]
                [--fault-rate R] [--fault-seed F] [--report-out <file>]
                [--miss-policy stop|replan-and-reuse]
                [--hosts N] [--host-memory-mb M] [--placement P] [--tenants K]
                [--host-fail-rate R]
                [--audit-out <file>] [--metrics-out <file>]
                [--slo <thresholds.json>] [--slo-out <file>]
                [--slo-window-secs W] [--progress] [--bench-out <file>]
  xanadu record --out <file> [--events N] [--workflows W] [--depth D]
                [--rate-per-hour R] [--seed S]
  xanadu serve --checkpoint-dir <dir> [--stream <file>]
               [--events N] [--workflows W] [--depth D]
               [--rate-per-hour R] [--seed S] [--mode cold|spec|jit]
               [--checkpoint-every N] [--alerts-out <file.jsonl>]
               [--metrics-text <file>] [--audit-out <file>]
               [--slo <thresholds.json>] [--slo-out <file>]
               [--slo-window-secs W] [--stop-after-checkpoints K]
               [--status-every K] [--sketch-edges K]
               [--bench-out <file>] [--fail-on-alert]
  xanadu diff --baseline <file> --candidate <file>
              [--max-p95-regress-pct P] [--max-wasted-cpu-regress-pct W]
              [--max-recall-drop D]
  xanadu inspect --sdl <file> [--dot]
  xanadu validate --json <file> --schema <file>
  xanadu help

`run` deploys the workflow described by the JSON state-definition
document and fires N triggers M minutes apart, printing per-request
latency, overhead and cold/warm starts.
`--policy name[:param=val,...]` selects the speculation policy: `xanadu`
(the paper's MLP/JIT engine; params mode, aggressiveness, miss, hedge),
`mpc` (receding-horizon planner; params horizon, cold-weight,
waste-weight, slack-ms) or `rl` (tabular Q-learning; params seed,
warmup, epsilon, alpha, gamma, cold-penalty-ms, waste-penalty-ms).
`--mode`/`--aggressiveness`/`--miss-policy` are back-compat aliases for
`--policy xanadu:...` parameters and conflict with an explicit
`--policy`.
`--fault-rate R` (0..1) injects deterministic worker crashes and latency
spikes at rate R, seeded by `--fault-seed` (default 0xFA17); recovery
(timeouts, bounded retry, re-planning) is reported per request.
`--trace-out` writes a Chrome trace_event JSON span export (load it in
chrome://tracing or Perfetto); `--metrics-out` writes the aggregated
counters and latency histograms as flat JSON.
`--audit-out` writes the speculation audit (critical-path decomposition,
MLP precision/recall, wasted-deploy cost, JIT slack) as JSON.
`--hosts N` schedules workers over an N-host cluster (default: the
paper's single-machine testbed) of `--host-memory-mb` MB machines,
placed by `--placement round-robin|least-loaded|first-fit|random|
affinity` (default least-loaded; affinity co-locates chain neighbours).
`--tenants K` splits the cluster between K equal-weight tenants with
weighted fair admission; `--host-fail-rate R` (0..1) injects whole-host
failures (drain, re-place, reboot) per epoch; `--autoscale-max N` lets
a reactive autoscaler grow the fleet up to N hosts. Cluster runs add a
per-host utilization and cross-host cold-cascade section to the audit.
`--miss-policy replan-and-reuse` enables the paper's §7 future-work miss
handling: on a prediction miss the plan is rebuilt for the actual path
and compatible unused spares are retargeted — on a cluster, only spares
co-located with the request's running chain qualify, which is what makes
affinity placement beat spreading policies on cold-start rate.
`analyze` runs the same workload but prints the speculation audit instead
of the per-request table.
`replay` synthesizes an Azure-style fleet (each workflow a linear chain
with its own functions), scales it to `--invocations` expected triggers
and replays it as per-workflow logical shards over `--shards` OS
threads. The merged report is byte-identical for any `--shards`; the
printed `report digest` line is the CI hook for that check.
Replay telemetry is streaming: `--audit-out` writes a bounded-memory
speculation audit (mergeable histograms, exact MLP/waste/JIT counters,
worst-request exemplars) and `--metrics-out` the merged counters, both
byte-identical at any `--shards`. `--slo <thresholds.json>` gates
tumbling `--slo-window-secs` windows (default 60) against the first
non-empty window with `diff` semantics, exits non-zero on any breach
and, with `--slo-out`, writes the windowed evaluation JSON.
`--progress` prints a stderr heartbeat (events/sec, backlog, ETA).
`--bench-out` merges an `events_per_sec` kernel-throughput row plus a
`kernel_profile` section (per-shard events and queue peaks, barrier and
merge costs) into the named BENCH_harness.json, preserving its other
sections.
`diff` compares two audit or metrics snapshots and exits non-zero when
the candidate regresses past a threshold (p95 end-to-end +10%, wasted
CPU-ms +25%, MLP recall −0.05 by default), printing the JSON path of
each offending field.
`inspect` prints the parsed structure and the predicted most-likely path.
`record` writes a seeded trigger stream (JSONL: one header line, then
one `{at_us, wf}` event per line) that `serve --stream` replays
deterministically.
`serve` is the service tier: it ingests the stream in `--checkpoint-every`
event epochs, learns implicit chains online into bounded-memory sketches
(`--sketch-edges` space-saving edge candidates plus count-min arrival
rates) and appends the full service state to an atomic segment log under
`--checkpoint-dir` after every epoch. Killing and rerunning the same
command resumes from the last checkpoint with byte-identical final
exports. `--alerts-out` appends one schema-validated JSON line per SLO
breach the moment its window becomes final; `--metrics-text` atomically
rewrites a Prometheus-style text exposition each flush; `--status-every
K` prints a stderr status line (uptime, events/sec, window quantiles,
open alerts, sketch occupancy, checkpoint lag) every K checkpoints.
`--stop-after-checkpoints K` pauses at an exact boundary (the restart
suites use this); `--fail-on-alert` exits non-zero when any alert was
raised. `--bench-out` merges a `service` row (sustained events/sec,
amortized checkpoint cost, streaming-vs-batch p95 delta) into the named
BENCH_harness.json.
`validate` checks a JSON document against a schema file and exits
non-zero on mismatch (CI uses it on the exports); a `.jsonl` document
(e.g. the serve alerts stream) is validated line by line.";

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first problem found.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "inspect" => {
            let sdl_path =
                flag_value(args, "--sdl")?.ok_or_else(|| CliError::MissingFlag("--sdl".into()))?;
            let dot = args.iter().any(|a| a == "--dot");
            Ok(Command::Inspect { sdl_path, dot })
        }
        "run" => Ok(Command::Run(parse_run_flags(args)?)),
        "analyze" => Ok(Command::Analyze(parse_run_flags(args)?)),
        "replay" => Ok(Command::Replay(parse_replay_flags(args)?)),
        "record" => Ok(Command::Record(parse_record_flags(args)?)),
        "serve" => Ok(Command::Serve(parse_serve_flags(args)?)),
        "diff" => {
            let baseline_path = flag_value(args, "--baseline")?
                .ok_or_else(|| CliError::MissingFlag("--baseline".into()))?;
            let candidate_path = flag_value(args, "--candidate")?
                .ok_or_else(|| CliError::MissingFlag("--candidate".into()))?;
            let defaults = DiffThresholds::default();
            let thresholds = DiffThresholds {
                max_p95_regress_pct: parse_float(
                    args,
                    "--max-p95-regress-pct",
                    defaults.max_p95_regress_pct,
                )?,
                max_wasted_cpu_regress_pct: parse_float(
                    args,
                    "--max-wasted-cpu-regress-pct",
                    defaults.max_wasted_cpu_regress_pct,
                )?,
                max_recall_drop: parse_float(args, "--max-recall-drop", defaults.max_recall_drop)?,
            };
            Ok(Command::Diff(DiffArgs {
                baseline_path,
                candidate_path,
                thresholds,
            }))
        }
        "validate" => {
            let json_path = flag_value(args, "--json")?
                .ok_or_else(|| CliError::MissingFlag("--json".into()))?;
            let schema_path = flag_value(args, "--schema")?
                .ok_or_else(|| CliError::MissingFlag("--schema".into()))?;
            Ok(Command::Validate {
                json_path,
                schema_path,
            })
        }
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn parse_run_flags(args: &[String]) -> Result<RunArgs, CliError> {
    let sdl_path =
        flag_value(args, "--sdl")?.ok_or_else(|| CliError::MissingFlag("--sdl".into()))?;
    let (platform, policy, aggressiveness, miss_policy) = match parse_policy(args)? {
        Some(configured) => {
            let knobs = configured.speculation.unwrap_or_default();
            (
                PlatformChoice::Xanadu(knobs.mode),
                configured.spec,
                knobs.aggressiveness,
                knobs.miss_policy,
            )
        }
        None => {
            let platform = match flag_value(args, "--mode")? {
                Some(v) => PlatformChoice::parse(&v)?,
                None => PlatformChoice::Xanadu(ExecutionMode::Jit),
            };
            (
                platform,
                PolicySpec::Xanadu,
                parse_fraction(args, "--aggressiveness", 1.0)?,
                parse_miss_policy(args)?,
            )
        }
    };
    Ok(RunArgs {
        sdl_path,
        platform,
        triggers: parse_num(args, "--triggers", 1)?,
        gap_min: parse_num(args, "--gap-min", 20)?,
        seed: parse_num(args, "--seed", 42)?,
        implicit: args.iter().any(|a| a == "--implicit"),
        trace: args.iter().any(|a| a == "--trace"),
        fault_rate: parse_fraction(args, "--fault-rate", 0.0)?,
        fault_seed: parse_num(args, "--fault-seed", 0xFA17)?,
        hosts: parse_num(args, "--hosts", 0)? as u32,
        host_memory_mb: parse_num(args, "--host-memory-mb", 4096)?,
        placement: parse_placement(args)?,
        tenants: parse_num(args, "--tenants", 0)? as u32,
        host_fail_rate: parse_fraction(args, "--host-fail-rate", 0.0)?,
        autoscale_max: parse_num(args, "--autoscale-max", 0)? as u32,
        aggressiveness,
        miss_policy,
        policy,
        trace_out: flag_value(args, "--trace-out")?,
        metrics_out: flag_value(args, "--metrics-out")?,
        audit_out: flag_value(args, "--audit-out")?,
    })
}

/// Flags that are back-compat aliases for `--policy xanadu:...`
/// parameters; present alongside `--policy` they are a conflict, not a
/// merge.
const POLICY_ALIAS_FLAGS: [&str; 3] = ["--mode", "--aggressiveness", "--miss-policy"];

/// Parses `--policy name[:param=val,...]`, rejecting alias-flag mixes.
fn parse_policy(args: &[String]) -> Result<Option<ConfiguredPolicy>, CliError> {
    let Some(value) = flag_value(args, "--policy")? else {
        return Ok(None);
    };
    let conflicting: Vec<String> = POLICY_ALIAS_FLAGS
        .iter()
        .filter(|flag| args.iter().any(|a| a == *flag))
        .map(|flag| (*flag).to_string())
        .collect();
    if !conflicting.is_empty() {
        return Err(CliError::PolicyConflict {
            policy: value,
            conflicting,
        });
    }
    value
        .parse::<ConfiguredPolicy>()
        .and_then(|configured| {
            xanadu_core::policy::PolicyRegistry::validate(&configured.spec)?;
            Ok(configured)
        })
        .map(Some)
        .map_err(|e| CliError::BadValue {
            flag: "--policy".into(),
            value,
            expected: format!("xanadu|mpc|rl with optional `:param=val,...` ({e})"),
        })
}

fn parse_replay_flags(args: &[String]) -> Result<ReplayArgs, CliError> {
    let (mode, policy, aggressiveness, miss_policy) = match parse_policy(args)? {
        Some(configured) => {
            let knobs = configured.speculation.unwrap_or_default();
            (
                knobs.mode,
                configured.spec,
                knobs.aggressiveness,
                knobs.miss_policy,
            )
        }
        None => {
            let mode = match flag_value(args, "--mode")? {
                None => ExecutionMode::Jit,
                Some(v) => match PlatformChoice::parse(&v)? {
                    PlatformChoice::Xanadu(mode) => mode,
                    PlatformChoice::Baseline(_) => {
                        return Err(CliError::BadValue {
                            flag: "--mode".into(),
                            value: v,
                            expected: "cold|spec|jit (baselines are not sharded)".into(),
                        })
                    }
                },
            };
            (mode, PolicySpec::Xanadu, 1.0, parse_miss_policy(args)?)
        }
    };
    let window_secs = parse_num(args, "--window-secs", 60)?;
    if window_secs == 0 {
        return Err(CliError::BadValue {
            flag: "--window-secs".into(),
            value: "0".into(),
            expected: "a positive number of simulated seconds".into(),
        });
    }
    let depth = parse_num(args, "--depth", 5)?;
    if depth == 0 {
        return Err(CliError::BadValue {
            flag: "--depth".into(),
            value: "0".into(),
            expected: "a positive chain depth".into(),
        });
    }
    let slo_window_secs = parse_num(args, "--slo-window-secs", 60)?;
    if slo_window_secs == 0 {
        return Err(CliError::BadValue {
            flag: "--slo-window-secs".into(),
            value: "0".into(),
            expected: "a positive number of simulated seconds".into(),
        });
    }
    Ok(ReplayArgs {
        invocations: parse_num(args, "--invocations", 10_000)?,
        shards: parse_num(args, "--shards", 1)?.max(1) as usize,
        window_secs,
        seed: parse_num(args, "--seed", 42)?,
        mode,
        plan_cache: !args.iter().any(|a| a == "--no-plan-cache"),
        fault_rate: parse_fraction(args, "--fault-rate", 0.0)?,
        fault_seed: parse_num(args, "--fault-seed", 0xFA17)?,
        hosts: parse_num(args, "--hosts", 0)? as u32,
        host_memory_mb: parse_num(args, "--host-memory-mb", 4096)?,
        placement: parse_placement(args)?,
        tenants: parse_num(args, "--tenants", 0)? as u32,
        host_fail_rate: parse_fraction(args, "--host-fail-rate", 0.0)?,
        miss_policy,
        policy,
        aggressiveness,
        depth,
        report_out: flag_value(args, "--report-out")?,
        audit_out: flag_value(args, "--audit-out")?,
        metrics_out: flag_value(args, "--metrics-out")?,
        slo: flag_value(args, "--slo")?,
        slo_out: flag_value(args, "--slo-out")?,
        slo_window_secs,
        progress: args.iter().any(|a| a == "--progress"),
        bench_out: flag_value(args, "--bench-out")?,
    })
}

/// Stream-population flags shared by `record` and `serve`:
/// `(events, workflows, depth, rate_per_hour, seed)`.
fn parse_stream_flags(args: &[String]) -> Result<(u64, u32, u32, f64, u64), CliError> {
    let workflows = parse_num(args, "--workflows", 6)? as u32;
    if workflows == 0 {
        return Err(CliError::BadValue {
            flag: "--workflows".into(),
            value: "0".into(),
            expected: "a non-empty workflow population".into(),
        });
    }
    let depth = parse_num(args, "--depth", 4)? as u32;
    if depth == 0 {
        return Err(CliError::BadValue {
            flag: "--depth".into(),
            value: "0".into(),
            expected: "a positive chain depth".into(),
        });
    }
    let rate = parse_float(args, "--rate-per-hour", 120.0)?;
    if rate <= 0.0 {
        return Err(CliError::BadValue {
            flag: "--rate-per-hour".into(),
            value: format!("{rate}"),
            expected: "a positive arrival rate".into(),
        });
    }
    Ok((
        parse_num(args, "--events", 600)?,
        workflows,
        depth,
        rate,
        parse_num(args, "--seed", 42)?,
    ))
}

fn parse_record_flags(args: &[String]) -> Result<RecordArgs, CliError> {
    let out = flag_value(args, "--out")?.ok_or_else(|| CliError::MissingFlag("--out".into()))?;
    let (events, workflows, depth, rate_per_hour, seed) = parse_stream_flags(args)?;
    Ok(RecordArgs {
        out,
        events,
        workflows,
        depth,
        rate_per_hour,
        seed,
    })
}

fn parse_serve_flags(args: &[String]) -> Result<ServeArgs, CliError> {
    let checkpoint_dir = flag_value(args, "--checkpoint-dir")?
        .ok_or_else(|| CliError::MissingFlag("--checkpoint-dir".into()))?;
    let (events, workflows, depth, rate_per_hour, seed) = parse_stream_flags(args)?;
    let mode = match flag_value(args, "--mode")? {
        None => ExecutionMode::Jit,
        Some(v) => match PlatformChoice::parse(&v)? {
            PlatformChoice::Xanadu(mode) => mode,
            PlatformChoice::Baseline(_) => {
                return Err(CliError::BadValue {
                    flag: "--mode".into(),
                    value: v,
                    expected: "cold|spec|jit (the service tier is Xanadu-only)".into(),
                })
            }
        },
    };
    let checkpoint_every = parse_num(args, "--checkpoint-every", 200)?;
    if checkpoint_every == 0 {
        return Err(CliError::BadValue {
            flag: "--checkpoint-every".into(),
            value: "0".into(),
            expected: "a positive number of events per epoch".into(),
        });
    }
    let slo_window_secs = parse_num(args, "--slo-window-secs", 60)?;
    if slo_window_secs == 0 {
        return Err(CliError::BadValue {
            flag: "--slo-window-secs".into(),
            value: "0".into(),
            expected: "a positive number of simulated seconds".into(),
        });
    }
    let sketch_edges = parse_num(args, "--sketch-edges", 64)? as usize;
    if sketch_edges == 0 {
        return Err(CliError::BadValue {
            flag: "--sketch-edges".into(),
            value: "0".into(),
            expected: "a positive sketch capacity".into(),
        });
    }
    Ok(ServeArgs {
        stream: flag_value(args, "--stream")?,
        events,
        workflows,
        depth,
        rate_per_hour,
        seed,
        mode,
        checkpoint_dir,
        checkpoint_every,
        alerts_out: flag_value(args, "--alerts-out")?,
        metrics_text: flag_value(args, "--metrics-text")?,
        audit_out: flag_value(args, "--audit-out")?,
        slo_out: flag_value(args, "--slo-out")?,
        slo: flag_value(args, "--slo")?,
        slo_window_secs,
        stop_after_checkpoints: parse_num(args, "--stop-after-checkpoints", 0)?,
        status_every: parse_num(args, "--status-every", 0)?,
        sketch_edges,
        bench_out: flag_value(args, "--bench-out")?,
        fail_on_alert: args.iter().any(|a| a == "--fail-on-alert"),
    })
}

fn parse_miss_policy(args: &[String]) -> Result<MissPolicy, CliError> {
    match flag_value(args, "--miss-policy")?.as_deref() {
        None | Some("stop") => Ok(MissPolicy::StopSpeculation),
        Some("replan-and-reuse") => Ok(MissPolicy::ReplanAndReuse),
        Some(v) => Err(CliError::BadValue {
            flag: "--miss-policy".into(),
            value: v.into(),
            expected: "stop|replan-and-reuse".into(),
        }),
    }
}

fn parse_placement(args: &[String]) -> Result<PlacementPolicy, CliError> {
    match flag_value(args, "--placement")? {
        None => Ok(PlacementPolicy::default()),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            flag: "--placement".into(),
            value: v,
            expected: "round-robin|least-loaded|first-fit|random|affinity".into(),
        }),
    }
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(CliError::MissingValue(flag.to_string())),
        },
    }
}

fn parse_num(args: &[String], flag: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            flag: flag.into(),
            value: v,
            expected: "a non-negative integer".into(),
        }),
    }
}

fn parse_float(args: &[String], flag: &str, default: f64) -> Result<f64, CliError> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => match v.parse::<f64>() {
            Ok(x) if x >= 0.0 => Ok(x),
            _ => Err(CliError::BadValue {
                flag: flag.into(),
                value: v,
                expected: "a non-negative number".into(),
            }),
        },
    }
}

fn parse_fraction(args: &[String], flag: &str, default: f64) -> Result<f64, CliError> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => match v.parse::<f64>() {
            Ok(x) if (0.0..=1.0).contains(&x) => Ok(x),
            _ => Err(CliError::BadValue {
                flag: flag.into(),
                value: v,
                expected: "a number in [0, 1]".into(),
            }),
        },
    }
}

/// Executes a parsed command against an SDL document's *content* (the
/// binary reads the file; tests pass strings). Returns the rendered
/// report, discarding any export files — use [`execute_with_exports`]
/// when `--trace-out`/`--metrics-out` must take effect.
///
/// # Errors
///
/// Returns [`CliError::Workflow`] for SDL or platform failures.
pub fn execute(
    command: &Command,
    sdl_source: impl Fn(&str) -> Result<String, String>,
) -> Result<String, CliError> {
    execute_with_exports(command, sdl_source).map(|(report, _)| report)
}

/// Like [`execute`], but also returns the files `--trace-out` /
/// `--metrics-out` asked for. The command logic never touches the
/// filesystem itself; the binary writes what this returns.
///
/// # Errors
///
/// Returns [`CliError::Workflow`] for SDL or platform failures.
pub fn execute_with_exports(
    command: &Command,
    sdl_source: impl Fn(&str) -> Result<String, String>,
) -> Result<(String, Vec<ExportFile>), CliError> {
    let mut exports = Vec::new();
    let report = execute_inner(command, sdl_source, &mut exports)?;
    Ok((report, exports))
}

fn execute_inner(
    command: &Command,
    sdl_source: impl Fn(&str) -> Result<String, String>,
    exports: &mut Vec<ExportFile>,
) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Validate {
            json_path,
            schema_path,
        } => {
            let doc = sdl_source(json_path).map_err(CliError::Workflow)?;
            let schema = sdl_source(schema_path).map_err(CliError::Workflow)?;
            let schema: serde_json::Value = serde_json::from_str(&schema)
                .map_err(|e| CliError::Workflow(format!("{schema_path}: {e}")))?;
            // A `.jsonl` document (e.g. the serve alerts stream) holds one
            // JSON value per line; every line must match the schema.
            if json_path.ends_with(".jsonl") {
                let mut checked = 0usize;
                for (i, line) in doc.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let value: serde_json::Value = serde_json::from_str(line)
                        .map_err(|e| CliError::Workflow(format!("{json_path}:{}: {e}", i + 1)))?;
                    xanadu_platform::export::validate_schema(&value, &schema)
                        .map_err(|e| CliError::Workflow(format!("{json_path}:{}: {e}", i + 1)))?;
                    checked += 1;
                }
                return Ok(format!(
                    "{json_path}: {checked} line(s) valid against {schema_path}\n"
                ));
            }
            let doc: serde_json::Value = serde_json::from_str(&doc)
                .map_err(|e| CliError::Workflow(format!("{json_path}: {e}")))?;
            xanadu_platform::export::validate_schema(&doc, &schema)
                .map_err(|e| CliError::Workflow(format!("{json_path}: {e}")))?;
            Ok(format!("{json_path}: valid against {schema_path}\n"))
        }
        Command::Inspect { sdl_path, dot } => {
            let doc = sdl_source(sdl_path).map_err(CliError::Workflow)?;
            let dag = sdl::parse(workflow_name(sdl_path), &doc)
                .map_err(|e| CliError::Workflow(e.to_string()))?;
            if *dot {
                return Ok(xanadu_chain::to_dot(&dag));
            }
            let mut out = format!(
                "workflow `{}`: {} functions, depth {}, {} conditional points\n",
                dag.name(),
                dag.len(),
                dag.depth(),
                dag.conditional_points()
            );
            out.push_str(&format!(
                "expected execution (critical path): {:.2}s\n",
                dag.critical_path_ms() / 1000.0
            ));
            let mlp = infer_mlp(&dag, |_, _| None);
            let path: Vec<&str> = mlp
                .path
                .iter()
                .map(|&n| dag.node(n).spec().name())
                .collect();
            out.push_str(&format!("most likely path: {}\n", path.join(" -> ")));
            for id in dag.node_ids() {
                let node = dag.node(id);
                out.push_str(&format!(
                    "  {} [{} MB, {}, {:.0}ms]\n",
                    node.spec().name(),
                    node.spec().memory(),
                    node.spec().isolation_level(),
                    node.spec().mean_service_ms()
                ));
            }
            Ok(out)
        }
        Command::Run(run) => {
            let doc = sdl_source(&run.sdl_path).map_err(CliError::Workflow)?;
            let w = run_workload(run, &doc)?;
            let traces: Vec<(u64, String)> = if run.trace {
                w.request_ids
                    .iter()
                    .filter_map(|&id| w.platform.trace(id).map(|tr| (id, tr.render_gantt(72))))
                    .collect()
            } else {
                Vec::new()
            };
            w.push_exports(run, exports);
            let name = w.name.clone();
            let report = w.platform.finish();
            let mut out = format!(
                "platform {} — {} triggers of `{}` every {} min (seed {})\n",
                run.label(),
                run.triggers,
                name,
                run.gap_min,
                run.seed
            );
            let faulty = run.fault_rate > 0.0;
            if faulty {
                out.push_str("req  end-to-end   overhead  cold  warm  misses  faults  retries\n");
            } else {
                out.push_str("req  end-to-end   overhead  cold  warm  misses\n");
            }
            for r in &report.results {
                out.push_str(&format!(
                    "{:>3}  {:>9.2}s  {:>8.2}s  {:>4}  {:>4}  {:>6}",
                    r.request,
                    r.end_to_end.as_secs_f64(),
                    r.overhead.as_secs_f64(),
                    r.cold_starts,
                    r.warm_starts,
                    r.misses
                ));
                if faulty {
                    out.push_str(&format!("  {:>6}  {:>7}", r.faults, r.retries));
                }
                out.push('\n');
            }
            out.push_str(&format!(
                "mean overhead: {:.2}s   total resources: {:.1} core·s CPU, {:.1} MB·s memory\n",
                report.mean_overhead_ms() / 1000.0,
                report.total_resources().cpu_s,
                report.total_resources().mem_mbs
            ));
            if faulty {
                let (total_faults, total_retries) = report.fault_counts();
                out.push_str(&format!(
                    "faults injected: {total_faults}   retries: {total_retries}   \
                     (rate {}, fault seed {})\n",
                    run.fault_rate, run.fault_seed
                ));
            }
            for (id, gantt) in traces {
                out.push_str(&format!(
                    "\ntimeline of request {id} (░ provisioning/idle, █ executing):\n"
                ));
                out.push_str(&gantt);
            }
            Ok(out)
        }
        Command::Analyze(run) => {
            let doc = sdl_source(&run.sdl_path).map_err(CliError::Workflow)?;
            let w = run_workload(run, &doc)?;
            w.push_exports(run, exports);
            let mut out = format!(
                "platform {} — {} triggers of `{}` every {} min (seed {})\n",
                run.label(),
                run.triggers,
                w.name,
                run.gap_min,
                run.seed
            );
            out.push_str(&w.audit().render());
            Ok(out)
        }
        Command::Replay(replay) => execute_replay(replay, &sdl_source, exports),
        Command::Record(record) => crate::serve::run_record(record, exports),
        Command::Serve(serve) => crate::serve::run_serve(serve, &sdl_source, exports),
        Command::Diff(diff) => {
            let baseline = load_snapshot(&diff.baseline_path, &sdl_source)?;
            let candidate = load_snapshot(&diff.candidate_path, &sdl_source)?;
            let (kind, regressions) = match (&baseline, &candidate) {
                (Snapshot::Audit(b), Snapshot::Audit(c)) => {
                    ("audit", diff_audits(b, c, &diff.thresholds))
                }
                (Snapshot::Metrics(b), Snapshot::Metrics(c)) => {
                    ("metrics", diff_metrics(b, c, &diff.thresholds))
                }
                _ => {
                    return Err(CliError::Workflow(format!(
                        "snapshot kinds differ: {} and {} must both be audit or both \
                         be metrics documents",
                        diff.baseline_path, diff.candidate_path
                    )));
                }
            };
            if regressions.is_empty() {
                Ok(format!(
                    "{}: no regressions versus {} ({kind} snapshots, \
                     thresholds: p95 +{}%, wasted CPU +{}%, recall -{})\n",
                    diff.candidate_path,
                    diff.baseline_path,
                    diff.thresholds.max_p95_regress_pct,
                    diff.thresholds.max_wasted_cpu_regress_pct,
                    diff.thresholds.max_recall_drop
                ))
            } else {
                Err(CliError::Regressions {
                    baseline: diff.baseline_path.clone(),
                    candidate: diff.candidate_path.clone(),
                    details: regressions.iter().map(|r| r.to_string()).collect(),
                })
            }
        }
    }
}

/// Runs `xanadu replay`: synthesize the scaled Azure fleet, replay it
/// over sharded event loops, render the throughput summary and stage
/// the requested exports.
fn execute_replay(
    replay: &ReplayArgs,
    sdl_source: &impl Fn(&str) -> Result<String, String>,
    exports: &mut Vec<ExportFile>,
) -> Result<String, CliError> {
    let scaled = scale_to_invocations(&AzureTraceConfig::default(), replay.invocations);
    let traces = generate_trace(&scaled, replay.seed);
    let realized = total_invocations(&traces);
    let workloads: Vec<ShardWorkload> = traces
        .iter()
        .map(|t| {
            // Per-workflow function namespaces: no cross-workflow warm
            // sharing, the property the per-workflow sharding relies on.
            let template = FunctionSpec::new(format!("{}-f", t.name)).service_ms(400.0);
            let dag = linear_chain(&t.name, replay.depth as usize, &template)
                .map_err(|e| CliError::Workflow(e.to_string()))?;
            Ok(ShardWorkload {
                dag,
                triggers: t.arrivals.clone(),
            })
        })
        .collect::<Result<_, CliError>>()?;

    let thresholds = match &replay.slo {
        None => DiffThresholds::default(),
        Some(path) => {
            let text = sdl_source(path).map_err(CliError::Workflow)?;
            serde_json::from_str(&text).map_err(|e| {
                CliError::Workflow(format!("{path}: not a thresholds document: {e}"))
            })?
        }
    };
    let slo_wanted = replay.slo.is_some() || replay.slo_out.is_some();
    let telemetry = ShardTelemetry {
        streaming: replay
            .audit_out
            .as_ref()
            .map(|_| StreamingConfig::default()),
        slo: slo_wanted.then(|| SloConfig {
            window: SimDuration::from_secs(replay.slo_window_secs),
            thresholds,
        }),
        metrics: replay.metrics_out.is_some(),
        progress: replay.progress,
    };

    // The audit export streams (bounded memory), so per-request trace
    // recording stays off even when auditing fleet-scale replays.
    let mut builder = PlatformConfig::builder().for_mode(replay.mode, replay.seed);
    if replay.policy.is_default() {
        let mut spec = SpeculationConfig::for_mode(replay.mode);
        spec.aggressiveness = replay.aggressiveness;
        spec.miss_policy = replay.miss_policy;
        builder = builder.speculation(spec);
    } else {
        builder = builder
            .policy(replay.policy.clone())
            .label(replay.policy.name());
    }
    builder = builder.plan_cache(replay.plan_cache).cluster(
        ClusterConfig::uniform(replay.placement, replay.hosts, replay.host_memory_mb)
            .with_tenants(replay.tenants),
    );
    if replay.fault_rate > 0.0 || replay.host_fail_rate > 0.0 {
        builder = builder.faults(FaultConfig {
            host_failure_rate: replay.host_fail_rate,
            ..FaultConfig::with_rate(replay.fault_rate, replay.fault_seed)
        });
    }
    let config = builder
        .build()
        .map_err(|e| CliError::Workflow(e.to_string()))?;

    let opts = ShardOptions {
        threads: replay.shards,
        window: SimDuration::from_secs(replay.window_secs),
    };
    let started = std::time::Instant::now();
    let run = replay_sharded_with(&config, workloads, &opts, &telemetry)
        .map_err(|e| CliError::Workflow(e.to_string()))?;
    let wall = started.elapsed().as_secs_f64();
    let events_per_sec = if wall > 0.0 {
        run.events_processed as f64 / wall
    } else {
        0.0
    };

    let report_json = serde_json::to_value(&run.report)
        .expect("report serializes")
        .to_json_string_pretty()
        + "\n";
    let digest = format!("fnv1a64:{:016x}", fnv1a64(report_json.as_bytes()));

    let label = if replay.policy.is_default() {
        replay.mode.label().to_string()
    } else {
        replay.policy.name().to_string()
    };
    let mut out = format!(
        "sharded replay — {} workflows, {realized} invocations ({}, seed {}, plan cache {}, \
         fault rate {})\n",
        run.logical_shards,
        label,
        replay.seed,
        if replay.plan_cache { "on" } else { "off" },
        replay.fault_rate,
    );
    out.push_str(&format!(
        "shards: {} thread(s) over {} logical shards, window {}s\n",
        replay.shards.min(run.logical_shards.max(1)),
        run.logical_shards,
        replay.window_secs
    ));
    out.push_str(&format!(
        "events: {}   wall: {wall:.2}s   events/sec: {events_per_sec:.0}\n",
        run.events_processed
    ));
    let report = &run.report;
    let (cold, warm) = report.start_counts();
    out.push_str(&format!(
        "requests: {}   mean end-to-end: {:.2}s   mean overhead: {:.2}s   cold: {cold}   \
         warm: {warm}\n",
        report.results.len(),
        report.mean_end_to_end_ms() / 1000.0,
        report.mean_overhead_ms() / 1000.0,
    ));
    if replay.fault_rate > 0.0 {
        let (faults, retries) = report.fault_counts();
        out.push_str(&format!("faults injected: {faults}   retries: {retries}\n"));
    }
    if let Some(cluster) = &report.cluster {
        out.push_str(&format!(
            "cluster: {} host(s)/shard, {} policy, cold {} cross-host / {} co-located, \
             hosts failed: {}\n",
            cluster.hosts.len(),
            cluster.policy.label(),
            cluster.cross_host_cold,
            cluster.same_host_cold,
            cluster.hosts_failed,
        ));
    }
    if let Some(audit) = &run.streaming {
        let s = audit.summary();
        out.push_str(&format!(
            "streaming audit: {} requests, p95 ~{:.0}ms (bucketed), {} exemplar(s)\n",
            s.requests,
            s.end_to_end.quantile_ms(0.95),
            audit.exemplars().len()
        ));
    }
    let slo_report = run.slo.as_ref().map(|m| m.report());
    if let Some(slo) = &slo_report {
        let baseline = match slo.baseline_window {
            Some(b) => format!("window {b}"),
            None => "none".to_string(),
        };
        out.push_str(&format!(
            "slo: {} window(s) of {}s, baseline {baseline}, {} alert(s)\n",
            slo.windows.len(),
            replay.slo_window_secs,
            slo.alerts.len()
        ));
    }
    out.push_str(&format!("report digest: {digest}\n"));

    if let Some(path) = &replay.report_out {
        exports.push(ExportFile {
            path: path.clone(),
            contents: report_json,
        });
    }
    if let Some(path) = &replay.audit_out {
        let audit = run
            .streaming
            .as_ref()
            .expect("--audit-out attaches the streaming audit");
        exports.push(ExportFile {
            path: path.clone(),
            contents: xanadu_platform::export::streaming_json_string(audit),
        });
    }
    if let Some(path) = &replay.metrics_out {
        let mut registry = run.metrics.clone().unwrap_or_default();
        registry.merge_from(&run.profile.deterministic_registry());
        exports.push(ExportFile {
            path: path.clone(),
            contents: xanadu_platform::export::metrics_json_string(&registry),
        });
    }
    if let (Some(path), Some(slo)) = (&replay.slo_out, &slo_report) {
        exports.push(ExportFile {
            path: path.clone(),
            contents: xanadu_platform::export::slo_json_string(slo),
        });
    }
    if let Some(path) = &replay.bench_out {
        // Read-modify-write: keep every other section of the bench
        // report (experiments, audits, microbench) intact.
        let mut root: serde_json::Value = sdl_source(path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_else(|| serde_json::json!({}));
        if let Some(obj) = root.as_object_mut() {
            obj.insert(
                "kernel".to_string(),
                serde_json::json!({
                    "events_per_sec": events_per_sec,
                    "events": run.events_processed,
                    "invocations": realized,
                    "logical_shards": run.logical_shards,
                    "shard_threads": replay.shards,
                    "wall_ms": wall * 1000.0,
                    "report_digest": digest,
                    "source": "xanadu replay",
                }),
            );
            obj.insert("kernel_profile".to_string(), kernel_profile_json(&run));
        }
        exports.push(ExportFile {
            path: path.clone(),
            contents: root.to_json_string_pretty() + "\n",
        });
    }
    if let Some(slo) = &slo_report {
        if !slo.alerts.is_empty() {
            return Err(CliError::SloBreach {
                windows: slo.windows.len(),
                details: slo.alerts.iter().map(render_slo_alert).collect(),
                exports: std::mem::take(exports),
            });
        }
    }
    Ok(out)
}

/// One human-readable line per SLO breach, mirroring how `xanadu diff`
/// renders a [`Regression`](xanadu_platform::Regression).
pub(crate) fn render_slo_alert(alert: &xanadu_platform::SloAlert) -> String {
    format!(
        "window {}: {} {:.3} -> {:.3} ({})",
        alert.window, alert.path, alert.baseline, alert.candidate, alert.allowed
    )
}

/// The `kernel_profile` section of `--bench-out`: driver costs plus the
/// busiest shards. Per-shard rows are capped so a fleet-scale replay
/// cannot balloon the bench report; `shards_total` records the real
/// count when rows are dropped.
fn kernel_profile_json(run: &xanadu_platform::ShardedRun) -> serde_json::Value {
    const MAX_SHARD_ROWS: usize = 16;
    let profile = &run.profile;
    let mut busiest: Vec<_> = profile.shards.iter().collect();
    busiest.sort_by(|a, b| b.events.cmp(&a.events).then(a.index.cmp(&b.index)));
    busiest.truncate(MAX_SHARD_ROWS);
    let rows: Vec<serde_json::Value> = busiest
        .iter()
        .map(|s| serde_json::to_value(s).expect("shard profile serializes"))
        .collect();
    serde_json::json!({
        "threads": profile.threads,
        "windows": profile.windows,
        "merge_us": profile.merge_us,
        "barrier_wait_us": profile.barrier_wait_us,
        "queue_peak": profile.queue_peak(),
        "shards_total": profile.shards.len(),
        "busiest_shards": rows,
    })
}

/// FNV-1a over a byte slice: the stable digest `xanadu replay` prints so
/// CI can byte-compare merged reports across shard counts without
/// shipping the (potentially huge) report files around.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A finished workload run: the platform still holds per-request traces.
struct Workload {
    name: String,
    platform: Platform,
    request_ids: Vec<u64>,
    registry: Option<ObserverHandle<MetricsRegistry>>,
}

fn run_workload(run: &RunArgs, doc: &str) -> Result<Workload, CliError> {
    let name = workflow_name(&run.sdl_path).to_string();
    let dag = sdl::parse(&name, doc).map_err(|e| CliError::Workflow(e.to_string()))?;
    let mut cluster = ClusterConfig::uniform(run.placement, run.hosts, run.host_memory_mb)
        .with_tenants(run.tenants);
    if run.autoscale_max > 0 {
        cluster.autoscale = AutoscaleConfig {
            max_hosts: run.autoscale_max,
            host_memory_mb: run.host_memory_mb,
            ..AutoscaleConfig::default()
        };
    }
    let mut platform = run.platform.build(
        run.seed,
        run.aggressiveness,
        run.miss_policy,
        cluster,
        &run.policy,
    );
    if run.fault_rate > 0.0 || run.host_fail_rate > 0.0 {
        platform.set_faults(FaultConfig {
            host_failure_rate: run.host_fail_rate,
            ..FaultConfig::with_rate(run.fault_rate, run.fault_seed)
        });
    }
    let registry = run.metrics_out.as_ref().map(|_| platform.attach_metrics());
    let result = if run.implicit {
        platform.deploy_implicit(dag)
    } else {
        platform.deploy(dag)
    };
    result.map_err(|e| CliError::Workflow(e.to_string()))?;
    let mut t = SimTime::ZERO;
    let mut request_ids = Vec::new();
    for _ in 0..run.triggers {
        let id = platform
            .trigger_at(&name, t)
            .map_err(|e| CliError::Workflow(e.to_string()))?;
        request_ids.push(id);
        platform.run_until_idle();
        platform.roll_profile_window();
        t += SimDuration::from_mins(run.gap_min);
    }
    Ok(Workload {
        name,
        platform,
        request_ids,
        registry,
    })
}

impl Workload {
    fn traces(&self) -> Vec<(u64, xanadu_platform::timeline::Trace)> {
        self.request_ids
            .iter()
            .filter_map(|&id| self.platform.trace(id).map(|tr| (id, tr.clone())))
            .collect()
    }

    fn audit(&self) -> Audit {
        Audit::from_traces(&self.traces()).with_cluster(self.platform.cluster_report())
    }

    fn push_exports(&self, run: &RunArgs, exports: &mut Vec<ExportFile>) {
        if let Some(path) = &run.trace_out {
            exports.push(ExportFile {
                path: path.clone(),
                contents: xanadu_platform::export::chrome_trace_string(&self.traces()),
            });
        }
        if let (Some(path), Some(registry)) = (&run.metrics_out, &self.registry) {
            exports.push(ExportFile {
                path: path.clone(),
                contents: xanadu_platform::export::metrics_json_string(&registry.snapshot()),
            });
        }
        if let Some(path) = &run.audit_out {
            exports.push(ExportFile {
                path: path.clone(),
                contents: xanadu_platform::export::audit_json_string(&self.audit()),
            });
        }
    }
}

/// A parsed `xanadu diff` input: either snapshot kind, sniffed from the
/// document's top-level keys.
enum Snapshot {
    Audit(Box<Audit>),
    Metrics(Box<MetricsRegistry>),
}

fn load_snapshot(
    path: &str,
    source: impl Fn(&str) -> Result<String, String>,
) -> Result<Snapshot, CliError> {
    let text = source(path).map_err(CliError::Workflow)?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| CliError::Workflow(format!("{path}: {e}")))?;
    if value.get("summary").is_some() {
        let audit: Audit = serde_json::from_value(value)
            .map_err(|e| CliError::Workflow(format!("{path}: not an audit document: {e}")))?;
        Ok(Snapshot::Audit(Box::new(audit)))
    } else if value.get("counters").is_some() {
        let metrics: MetricsRegistry = serde_json::from_value(value)
            .map_err(|e| CliError::Workflow(format!("{path}: not a metrics document: {e}")))?;
        Ok(Snapshot::Metrics(Box::new(metrics)))
    } else {
        Err(CliError::Workflow(format!(
            "{path}: neither an audit (no \"summary\") nor a metrics snapshot \
             (no \"counters\")"
        )))
    }
}

fn workflow_name(path: &str) -> &str {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("workflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    const DOC: &str = r#"{
        "a": {"type": "function", "wait_for": [], "service_ms": 200},
        "b": {"type": "function", "wait_for": ["a"], "service_ms": 300}
    }"#;

    fn source(_path: &str) -> Result<String, String> {
        Ok(DOC.to_string())
    }

    #[test]
    fn parse_help_and_empty() {
        assert_eq!(parse_args(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parse_run_with_defaults() {
        let cmd = parse_args(&args(&["run", "--sdl", "wf.json"])).unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(run.sdl_path, "wf.json");
        assert_eq!(run.platform, PlatformChoice::Xanadu(ExecutionMode::Jit));
        assert_eq!(run.triggers, 1);
        assert_eq!(run.gap_min, 20);
        assert!(!run.implicit);
    }

    #[test]
    fn parse_run_full_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--mode",
            "openwhisk",
            "--triggers",
            "3",
            "--gap-min",
            "5",
            "--seed",
            "7",
            "--implicit",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(
            run.platform,
            PlatformChoice::Baseline(BaselineKind::OpenWhisk)
        );
        assert_eq!((run.triggers, run.gap_min, run.seed), (3, 5, 7));
        assert!(run.implicit);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_args(&args(&["launch"])),
            Err(CliError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse_args(&args(&["run"])),
            Err(CliError::MissingFlag(_))
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl"])),
            Err(CliError::MissingValue(_))
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--mode", "lambda"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--triggers", "many"])),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn parse_policy_flag_and_desugared_aliases() {
        use xanadu_core::policy::{MpcConfig, RlConfig};

        let Command::Run(run) = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--policy",
            "mpc:horizon=6",
        ]))
        .unwrap() else {
            panic!("expected run")
        };
        assert_eq!(
            run.policy,
            PolicySpec::Mpc(MpcConfig {
                horizon: 6,
                ..MpcConfig::default()
            })
        );
        assert_eq!(run.platform, PlatformChoice::Xanadu(ExecutionMode::Jit));

        let Command::Run(run) =
            parse_args(&args(&["run", "--sdl", "wf.json", "--policy", "rl"])).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(run.policy, PolicySpec::Rl(RlConfig::default()));

        // A parameterized xanadu spec desugars onto the legacy fields, so
        // the platform is built exactly as the alias flags would have.
        let Command::Run(run) = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--policy",
            "xanadu:mode=spec,aggressiveness=0.5,miss=replan-and-reuse",
        ]))
        .unwrap() else {
            panic!("expected run")
        };
        assert_eq!(run.policy, PolicySpec::Xanadu);
        assert_eq!(
            run.platform,
            PlatformChoice::Xanadu(ExecutionMode::Speculative)
        );
        assert_eq!(run.aggressiveness, 0.5);
        assert_eq!(run.miss_policy, MissPolicy::ReplanAndReuse);

        let Command::Replay(replay) =
            parse_args(&args(&["replay", "--policy", "xanadu:mode=cold"])).unwrap()
        else {
            panic!("expected replay")
        };
        assert_eq!(replay.mode, ExecutionMode::Cold);
        assert_eq!(replay.policy, PolicySpec::Xanadu);

        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--policy", "dqn"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--policy", "mpc:horizon=0"])),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn policy_flag_conflicts_with_alias_flags() {
        let err = parse_args(&args(&[
            "run", "--sdl", "wf.json", "--policy", "mpc", "--mode", "jit",
        ]))
        .unwrap_err();
        let CliError::PolicyConflict {
            policy,
            conflicting,
        } = &err
        else {
            panic!("expected a policy conflict, got {err}")
        };
        assert_eq!(policy, "mpc");
        assert_eq!(conflicting, &["--mode".to_string()]);
        assert!(err.to_string().contains("--policy mpc conflicts"), "{err}");

        let err = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--policy",
            "xanadu:mode=jit",
            "--aggressiveness",
            "0.5",
            "--miss-policy",
            "stop",
        ]))
        .unwrap_err();
        let CliError::PolicyConflict { conflicting, .. } = &err else {
            panic!("expected a policy conflict, got {err}")
        };
        assert_eq!(
            conflicting,
            &["--aggressiveness".to_string(), "--miss-policy".to_string()]
        );

        assert!(matches!(
            parse_args(&args(&[
                "replay",
                "--policy",
                "rl",
                "--miss-policy",
                "stop"
            ])),
            Err(CliError::PolicyConflict { .. })
        ));
    }

    #[test]
    fn run_with_learned_policy_labels_and_terminates() {
        for policy in ["mpc", "rl"] {
            let cmd = parse_args(&args(&[
                "run",
                "--sdl",
                "flow.json",
                "--policy",
                policy,
                "--triggers",
                "3",
            ]))
            .unwrap();
            let out = execute(&cmd, source).unwrap();
            assert!(
                out.contains(&format!("platform {policy} — 3 triggers")),
                "{out}"
            );
            assert!(out.contains("mean overhead"), "{out}");
            assert_eq!(out, execute(&cmd, source).unwrap(), "deterministic");
        }
    }

    /// `--policy xanadu` (bare or with the default parameters spelled
    /// out) is byte-identical to the legacy alias flags.
    #[test]
    fn bare_xanadu_policy_matches_alias_flags() {
        let run = |list: &[&str]| {
            let cmd = parse_args(&args(list)).unwrap();
            execute(&cmd, source).unwrap()
        };
        let legacy = run(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "2",
        ]);
        assert_eq!(
            legacy,
            run(&[
                "run",
                "--sdl",
                "flow.json",
                "--policy",
                "xanadu",
                "--triggers",
                "2"
            ])
        );
        assert_eq!(
            legacy,
            run(&[
                "run",
                "--sdl",
                "flow.json",
                "--policy",
                "xanadu:mode=jit,aggressiveness=1.0",
                "--triggers",
                "2"
            ])
        );
    }

    #[test]
    fn parse_replay_defaults_and_flags() {
        let Command::Replay(replay) = parse_args(&args(&["replay"])).unwrap() else {
            panic!("expected replay")
        };
        assert_eq!(replay.invocations, 10_000);
        assert_eq!(replay.shards, 1);
        assert_eq!(replay.window_secs, 60);
        assert_eq!(replay.mode, ExecutionMode::Jit);
        assert!(replay.plan_cache);
        assert_eq!(replay.depth, 5);

        let Command::Replay(replay) = parse_args(&args(&[
            "replay",
            "--invocations",
            "500",
            "--shards",
            "4",
            "--mode",
            "spec",
            "--no-plan-cache",
            "--fault-rate",
            "0.1",
            "--bench-out",
            "BENCH_harness.json",
        ]))
        .unwrap() else {
            panic!("expected replay")
        };
        assert_eq!(replay.invocations, 500);
        assert_eq!(replay.shards, 4);
        assert_eq!(replay.mode, ExecutionMode::Speculative);
        assert!(!replay.plan_cache);
        assert_eq!(replay.fault_rate, 0.1);
        assert_eq!(replay.bench_out.as_deref(), Some("BENCH_harness.json"));

        assert!(matches!(
            parse_args(&args(&["replay", "--mode", "knative"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["replay", "--window-secs", "0"])),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn replay_digest_is_shard_count_invariant() {
        let digest_line = |shards: &str, extra: &[&str]| {
            let mut list = vec![
                "replay",
                "--invocations",
                "300",
                "--seed",
                "9",
                "--shards",
                shards,
            ];
            list.extend_from_slice(extra);
            let cmd = parse_args(&args(&list)).unwrap();
            let out = execute(&cmd, source).unwrap();
            out.lines()
                .find(|l| l.starts_with("report digest:"))
                .expect("digest line present")
                .to_string()
        };
        let serial = digest_line("1", &[]);
        assert_eq!(serial, digest_line("4", &[]), "shard count changed bytes");
        // Window width is also invisible in the digest.
        assert_eq!(serial, digest_line("2", &["--window-secs", "600"]));
        // Plan cache and faults change the workload, not the determinism.
        let faulty = digest_line("1", &["--fault-rate", "0.2"]);
        assert_eq!(faulty, digest_line("8", &["--fault-rate", "0.2"]));
        assert_ne!(serial, faulty, "faults should perturb the report");
    }

    #[test]
    fn parse_replay_telemetry_flags() {
        let Command::Replay(replay) = parse_args(&args(&["replay"])).unwrap() else {
            panic!("expected replay")
        };
        assert_eq!(replay.metrics_out, None);
        assert_eq!(replay.slo, None);
        assert_eq!(replay.slo_out, None);
        assert_eq!(replay.slo_window_secs, 60);
        assert!(!replay.progress);

        let Command::Replay(replay) = parse_args(&args(&[
            "replay",
            "--metrics-out",
            "m.json",
            "--slo",
            "thr.json",
            "--slo-out",
            "slo.json",
            "--slo-window-secs",
            "30",
            "--progress",
        ]))
        .unwrap() else {
            panic!("expected replay")
        };
        assert_eq!(replay.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(replay.slo.as_deref(), Some("thr.json"));
        assert_eq!(replay.slo_out.as_deref(), Some("slo.json"));
        assert_eq!(replay.slo_window_secs, 30);
        assert!(replay.progress);

        assert!(matches!(
            parse_args(&args(&["replay", "--slo-window-secs", "0"])),
            Err(CliError::BadValue { .. })
        ));
    }

    /// Every streaming export (audit, metrics, SLO windows) must be
    /// byte-identical at any `--shards`, and attaching them must not
    /// perturb the report digest.
    #[test]
    fn replay_streaming_exports_are_shard_invariant() {
        let loose = |_: &str| -> Result<String, String> {
            Ok(r#"{"max_p95_regress_pct": 1e9,
                    "max_wasted_cpu_regress_pct": 1e9,
                    "max_recall_drop": 1e9}"#
                .into())
        };
        let run = |shards: &str| {
            let cmd = parse_args(&args(&[
                "replay",
                "--invocations",
                "300",
                "--seed",
                "9",
                "--shards",
                shards,
                "--audit-out",
                "audit.json",
                "--metrics-out",
                "metrics.json",
                "--slo",
                "thr.json",
                "--slo-out",
                "slo.json",
            ]))
            .unwrap();
            execute_with_exports(&cmd, loose).unwrap()
        };
        let (out_one, one) = run("1");
        let (_, eight) = run("8");
        assert_eq!(one, eight, "streaming exports changed with shard count");

        let audit = &one
            .iter()
            .find(|e| e.path == "audit.json")
            .unwrap()
            .contents;
        assert!(audit.contains("\"end_to_end_ms\""), "{audit}");
        assert!(audit.contains("\"exemplars\""), "{audit}");
        let metrics = &one
            .iter()
            .find(|e| e.path == "metrics.json")
            .unwrap()
            .contents;
        assert!(metrics.contains("kernel.events"), "{metrics}");
        assert!(metrics.contains("requests.completed"), "{metrics}");
        let slo = &one.iter().find(|e| e.path == "slo.json").unwrap().contents;
        assert!(slo.contains("\"windows\""), "{slo}");

        // The telemetry run prints the same digest as a bare replay.
        let bare = parse_args(&args(&["replay", "--invocations", "300", "--seed", "9"])).unwrap();
        let bare_out = execute(&bare, source).unwrap();
        let digest = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("report digest:"))
                .map(str::to_string)
                .expect("digest line")
        };
        assert_eq!(
            digest(&bare_out),
            digest(&out_one),
            "telemetry perturbed the report"
        );
        assert!(out_one.contains("streaming audit:"), "{out_one}");
        assert!(out_one.contains("slo:"), "{out_one}");
    }

    /// A breached SLO gate exits non-zero like `diff`, and the staged
    /// exports ride along on the error so the binary still writes them.
    #[test]
    fn replay_slo_breach_fails_with_exports() {
        // A negative `max_recall_drop` makes every later window a breach
        // (a zero drop already exceeds it), independent of the workload's
        // actual latency shape.
        let files = |path: &str| -> Result<String, String> {
            match path {
                "thr.json" => Ok(r#"{"max_p95_regress_pct": 1e9,
                                     "max_wasted_cpu_regress_pct": 1e9,
                                     "max_recall_drop": -1.0}"#
                    .into()),
                other => Err(format!("{other}: not found")),
            }
        };
        let cmd = parse_args(&args(&[
            "replay",
            "--invocations",
            "300",
            "--seed",
            "9",
            "--slo",
            "thr.json",
            "--slo-out",
            "slo.json",
        ]))
        .unwrap();
        let err = execute_with_exports(&cmd, files).unwrap_err();
        let CliError::SloBreach {
            details, exports, ..
        } = &err
        else {
            panic!("expected an slo breach, got {err}")
        };
        assert!(!details.is_empty());
        let slo = exports
            .iter()
            .find(|e| e.path == "slo.json")
            .expect("slo export rides the breach error");
        assert!(slo.contents.contains("\"alerts\""), "{}", slo.contents);
        assert!(err.to_string().contains("$.windows["), "{err}");
    }

    #[test]
    fn replay_bench_out_merges_kernel_row() {
        let cmd = parse_args(&args(&[
            "replay",
            "--invocations",
            "200",
            "--bench-out",
            "bench.json",
        ]))
        .unwrap();
        // The source returns workflow SDL (not JSON matching a bench
        // report), exercising the "start fresh" path.
        let existing = |_: &str| -> Result<String, String> {
            Ok(r#"{"microbench": {"keep": 1}}"#.to_string())
        };
        let (out, exports) = execute_with_exports(&cmd, existing).unwrap();
        assert!(out.contains("events/sec"), "{out}");
        let bench = exports.iter().find(|e| e.path == "bench.json").unwrap();
        let value: serde_json::Value = serde_json::from_str(&bench.contents).unwrap();
        assert!(value.get("kernel").is_some(), "{}", bench.contents);
        assert_eq!(
            value.get("microbench").and_then(|m| m.get("keep")),
            Some(&serde_json::json!(1)),
            "existing sections must be preserved"
        );
        let kernel = value.get("kernel").unwrap();
        assert!(kernel.get("events_per_sec").is_some());
        assert!(kernel
            .get("report_digest")
            .and_then(|d| d.as_str())
            .unwrap()
            .starts_with("fnv1a64:"));
        let profile = value.get("kernel_profile").unwrap();
        assert!(profile.get("windows").and_then(|w| w.as_u64()).is_some());
        let shards = profile
            .get("busiest_shards")
            .and_then(|s| s.as_array())
            .expect("per-shard profiler rows");
        assert!(!shards.is_empty());
        assert!(shards[0].get("queue_peak").is_some(), "{}", shards[0]);
        assert_eq!(
            profile.get("shards_total"),
            kernel.get("logical_shards"),
            "profile covers the whole fleet"
        );
    }

    #[test]
    fn inspect_renders_structure_and_mlp() {
        let cmd = parse_args(&args(&["inspect", "--sdl", "flow.json"])).unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("workflow `flow`: 2 functions, depth 2"));
        assert!(out.contains("most likely path: a -> b"));
        assert!(out.contains("512 MB"));
    }

    #[test]
    fn inspect_dot_emits_graphviz() {
        let cmd = parse_args(&args(&["inspect", "--sdl", "flow.json", "--dot"])).unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.starts_with("digraph \"flow\""));
        assert!(out.contains("\"a\" -> \"b\""));
    }

    #[test]
    fn run_prints_per_request_rows() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "spec",
            "--triggers",
            "2",
        ]))
        .unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("platform xanadu-spec — 2 triggers"), "{out}");
        // Two request rows plus summary.
        assert_eq!(
            out.matches("\n  0 ").count() + out.matches("\n  1 ").count(),
            2,
            "{out}"
        );
        assert!(out.contains("mean overhead"));
    }

    #[test]
    fn run_with_trace_prints_gantt() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--trace",
        ]))
        .unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("timeline of request 0"), "{out}");
        assert!(out.contains('█'), "{out}");
    }

    #[test]
    fn parse_fault_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--fault-rate",
            "0.4",
            "--fault-seed",
            "9",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(run.fault_rate, 0.4);
        assert_eq!(run.fault_seed, 9);

        let Command::Run(defaults) = parse_args(&args(&["run", "--sdl", "wf.json"])).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(defaults.fault_rate, 0.0);
        assert_eq!(defaults.fault_seed, 0xFA17);

        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--fault-rate", "1.5"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--fault-rate", "lots"])),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn parse_cluster_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--hosts",
            "4",
            "--host-memory-mb",
            "2048",
            "--placement",
            "affinity",
            "--tenants",
            "2",
            "--host-fail-rate",
            "0.2",
            "--autoscale-max",
            "8",
            "--miss-policy",
            "replan-and-reuse",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(run.hosts, 4);
        assert_eq!(run.host_memory_mb, 2048);
        assert_eq!(run.placement, PlacementPolicy::Affinity);
        assert_eq!(run.tenants, 2);
        assert_eq!(run.host_fail_rate, 0.2);
        assert_eq!(run.autoscale_max, 8);
        assert_eq!(run.miss_policy, MissPolicy::ReplanAndReuse);

        let Command::Run(defaults) = parse_args(&args(&["run", "--sdl", "wf.json"])).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(defaults.hosts, 0, "single testbed by default");
        assert_eq!(defaults.host_memory_mb, 4096);
        assert_eq!(defaults.placement, PlacementPolicy::LeastLoaded);
        assert_eq!(defaults.tenants, 0);
        assert_eq!(defaults.host_fail_rate, 0.0);
        assert_eq!(defaults.autoscale_max, 0);
        assert_eq!(
            defaults.miss_policy,
            MissPolicy::StopSpeculation,
            "the paper's miss handling by default"
        );

        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--placement", "nearest"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--miss-policy", "retry"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["run", "--sdl", "x", "--host-fail-rate", "2.0"])),
            Err(CliError::BadValue { .. })
        ));

        let Command::Replay(replay) = parse_args(&args(&[
            "replay",
            "--hosts",
            "2",
            "--placement",
            "round-robin",
            "--host-fail-rate",
            "0.1",
        ]))
        .unwrap() else {
            panic!("expected replay")
        };
        assert_eq!(replay.hosts, 2);
        assert_eq!(replay.placement, PlacementPolicy::RoundRobin);
        assert_eq!(replay.host_fail_rate, 0.1);
    }

    #[test]
    fn run_on_a_cluster_reports_and_audits_placement() {
        let cmd = parse_args(&args(&[
            "analyze",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "3",
            "--hosts",
            "2",
            "--host-memory-mb",
            "1024",
            "--placement",
            "affinity",
        ]))
        .unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("cluster (2 hosts, affinity policy)"), "{out}");
        assert!(out.contains("host-0:"), "{out}");
        // Deterministic: the same invocation renders byte-identically.
        assert_eq!(out, execute(&cmd, source).unwrap());
    }

    #[test]
    fn run_with_faults_reports_fault_columns() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "3",
            "--fault-rate",
            "1.0",
            "--fault-seed",
            "5",
        ]))
        .unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("faults  retries"), "{out}");
        assert!(out.contains("faults injected:"), "{out}");
        // Every triggered request still terminates under certain faults.
        assert!(out.matches("s  ").count() >= 3, "{out}");
        // And the same invocation is reproducible.
        let again = execute(&cmd, source).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn run_surfaces_workflow_errors() {
        let cmd = parse_args(&args(&["run", "--sdl", "bad.json"])).unwrap();
        let err = execute(&cmd, |_| Ok("not json".into())).unwrap_err();
        assert!(matches!(err, CliError::Workflow(_)));
        let err = execute(&cmd, |_| Err("no such file".into())).unwrap_err();
        assert!(matches!(err, CliError::Workflow(_)));
    }

    #[test]
    fn help_text_via_execute() {
        let out = execute(&Command::Help, source).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn parse_export_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "wf.json",
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.json",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run")
        };
        assert_eq!(run.trace_out.as_deref(), Some("trace.json"));
        assert_eq!(run.metrics_out.as_deref(), Some("metrics.json"));
        let Command::Run(defaults) = parse_args(&args(&["run", "--sdl", "wf.json"])).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(defaults.trace_out, None);
        assert_eq!(defaults.metrics_out, None);
    }

    #[test]
    fn run_returns_requested_exports() {
        let cmd = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "2",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.json",
        ]))
        .unwrap();
        let (report, exports) = execute_with_exports(&cmd, source).unwrap();
        assert!(report.contains("mean overhead"));
        assert_eq!(exports.len(), 2);
        assert_eq!(exports[0].path, "t.json");
        assert!(exports[0].contents.contains("traceEvents"), "trace export");
        assert_eq!(exports[1].path, "m.json");
        assert!(exports[1].contents.contains("counters"), "metrics export");
        assert!(exports[1].contents.contains("requests.completed"));
        // Without the flags, no exports and an identical report.
        let bare = parse_args(&args(&[
            "run",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "2",
        ]))
        .unwrap();
        let (bare_report, bare_exports) = execute_with_exports(&bare, source).unwrap();
        assert!(bare_exports.is_empty());
        assert_eq!(report, bare_report, "exports must not perturb the report");
    }

    #[test]
    fn parse_analyze_and_diff() {
        let cmd = parse_args(&args(&[
            "analyze",
            "--sdl",
            "wf.json",
            "--mode",
            "cold",
            "--triggers",
            "4",
            "--audit-out",
            "audit.json",
        ]))
        .unwrap();
        let Command::Analyze(run) = cmd else {
            panic!("expected analyze")
        };
        assert_eq!(run.platform, PlatformChoice::Xanadu(ExecutionMode::Cold));
        assert_eq!(run.triggers, 4);
        assert_eq!(run.audit_out.as_deref(), Some("audit.json"));

        let cmd = parse_args(&args(&[
            "diff",
            "--baseline",
            "a.json",
            "--candidate",
            "b.json",
            "--max-p95-regress-pct",
            "2.5",
        ]))
        .unwrap();
        let Command::Diff(diff) = cmd else {
            panic!("expected diff")
        };
        assert_eq!(diff.baseline_path, "a.json");
        assert_eq!(diff.candidate_path, "b.json");
        assert_eq!(diff.thresholds.max_p95_regress_pct, 2.5);
        assert_eq!(
            diff.thresholds.max_recall_drop,
            DiffThresholds::default().max_recall_drop
        );

        assert!(matches!(
            parse_args(&args(&["diff", "--baseline", "a.json"])),
            Err(CliError::MissingFlag(_))
        ));
        assert!(matches!(
            parse_args(&args(&[
                "diff",
                "--baseline",
                "a",
                "--candidate",
                "b",
                "--max-recall-drop",
                "-1"
            ])),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn analyze_prints_audit_summary() {
        let cmd = parse_args(&args(&[
            "analyze",
            "--sdl",
            "flow.json",
            "--mode",
            "jit",
            "--triggers",
            "2",
        ]))
        .unwrap();
        let out = execute(&cmd, source).unwrap();
        assert!(out.contains("speculation audit — 2 requests"), "{out}");
        assert!(out.contains("critical path: exec"), "{out}");
        assert!(out.contains("MLP: precision"), "{out}");
        assert!(out.contains("JIT:"), "{out}");
        assert_eq!(out, execute(&cmd, source).unwrap(), "deterministic audit");
    }

    #[test]
    fn audit_export_matches_checked_in_schema() {
        let cmd = parse_args(&args(&[
            "analyze",
            "--sdl",
            "flow.json",
            "--mode",
            "spec",
            "--triggers",
            "2",
            "--audit-out",
            "audit.json",
        ]))
        .unwrap();
        let (_, exports) = execute_with_exports(&cmd, source).unwrap();
        assert_eq!(exports.len(), 1);
        let doc: serde_json::Value = serde_json::from_str(&exports[0].contents).unwrap();
        let schema: serde_json::Value =
            serde_json::from_str(include_str!("../../../docs/schemas/audit.schema.json")).unwrap();
        xanadu_platform::export::validate_schema(&doc, &schema).unwrap();
    }

    #[test]
    fn diff_accepts_equal_audits_and_flags_injected_regression() {
        let cmd = parse_args(&args(&[
            "analyze",
            "--sdl",
            "flow.json",
            "--mode",
            "cold",
            "--triggers",
            "2",
            "--audit-out",
            "base.json",
        ]))
        .unwrap();
        let (_, exports) = execute_with_exports(&cmd, source).unwrap();
        let base_text = exports[0].contents.clone();
        let mut worse: Audit = serde_json::from_str(&base_text).unwrap();
        worse.summary.end_to_end_ms.p95 *= 2.0;
        let worse_text = xanadu_platform::export::audit_json_string(&worse);
        let files = move |path: &str| -> Result<String, String> {
            match path {
                "base.json" => Ok(base_text.clone()),
                "cand.json" => Ok(worse_text.clone()),
                other => Err(format!("{other}: not found")),
            }
        };

        let same = parse_args(&args(&[
            "diff",
            "--baseline",
            "base.json",
            "--candidate",
            "base.json",
        ]))
        .unwrap();
        assert!(execute(&same, &files).unwrap().contains("no regressions"));

        let regressed = parse_args(&args(&[
            "diff",
            "--baseline",
            "base.json",
            "--candidate",
            "cand.json",
        ]))
        .unwrap();
        let err = execute(&regressed, &files).unwrap_err();
        let CliError::Regressions { details, .. } = &err else {
            panic!("expected regressions, got {err}")
        };
        assert!(
            details
                .iter()
                .any(|d| d.contains("$.summary.end_to_end_ms.p95")),
            "{details:?}"
        );
        // The rendered message carries the JSON path for CI logs.
        assert!(err.to_string().contains("$.summary.end_to_end_ms.p95"));

        // A generous threshold lets the same pair pass.
        let loose = parse_args(&args(&[
            "diff",
            "--baseline",
            "base.json",
            "--candidate",
            "cand.json",
            "--max-p95-regress-pct",
            "400",
        ]))
        .unwrap();
        assert!(execute(&loose, &files).unwrap().contains("no regressions"));
    }

    #[test]
    fn diff_rejects_mismatched_snapshot_kinds() {
        let audit_text = xanadu_platform::export::audit_json_string(&Audit::default());
        let files = move |path: &str| -> Result<String, String> {
            match path {
                "audit.json" => Ok(audit_text.clone()),
                "metrics.json" => Ok(r#"{"counters": {}, "histograms": {}}"#.into()),
                other => Err(format!("{other}: not found")),
            }
        };
        let cmd = parse_args(&args(&[
            "diff",
            "--baseline",
            "metrics.json",
            "--candidate",
            "metrics.json",
        ]))
        .unwrap();
        assert!(execute(&cmd, &files).unwrap().contains("no regressions"));
        let cmd = parse_args(&args(&[
            "diff",
            "--baseline",
            "audit.json",
            "--candidate",
            "metrics.json",
        ]))
        .unwrap();
        let err = execute(&cmd, &files).unwrap_err();
        assert!(err.to_string().contains("snapshot kinds differ"), "{err}");
    }

    #[test]
    fn validate_accepts_and_rejects() {
        let files = |path: &str| -> Result<String, String> {
            match path {
                "doc.json" => Ok(r#"{"n": 3}"#.into()),
                "schema.json" => Ok(r#"{"type": "object", "required": ["n"],
                        "properties": {"n": {"type": "integer"}},
                        "additionalProperties": false}"#
                    .into()),
                "bad.json" => Ok(r#"{"n": "three"}"#.into()),
                other => Err(format!("{other}: not found")),
            }
        };
        let ok = parse_args(&args(&[
            "validate",
            "--json",
            "doc.json",
            "--schema",
            "schema.json",
        ]))
        .unwrap();
        assert!(execute(&ok, files).unwrap().contains("valid"));
        let bad = parse_args(&args(&[
            "validate",
            "--json",
            "bad.json",
            "--schema",
            "schema.json",
        ]))
        .unwrap();
        let err = execute(&bad, files).unwrap_err();
        assert!(matches!(err, CliError::Workflow(_)), "{err}");
        assert!(matches!(
            parse_args(&args(&["validate", "--json", "doc.json"])),
            Err(CliError::MissingFlag(_))
        ));
    }
}
