//! Microbenchmark: dispatch hot path against a large resident worker
//! population — the scans replaced by the pool's per-function, per-state
//! index in `WorkerPool`.
//!
//! Two angles:
//!
//! * `pool_dispatch_cycle_1k_resident` — raw pool operations
//!   (`find_warm` + `begin_exec`/`end_exec`) for one function while 1 000
//!   warm workers of 100 functions are resident. Before the index this
//!   scanned every live worker per lookup.
//! * `platform_jit_depth10_1k_resident` — a full 10-deep chain request
//!   through a platform whose static pre-warm pool keeps 100 workers per
//!   chain function (1 000 total) resident, measuring the end-to-end
//!   dispatch path the index serves.

use criterion::{criterion_group, criterion_main, Criterion};
use xanadu_chain::{linear_chain, FunctionSpec, IsolationLevel};
use xanadu_core::speculation::ExecutionMode;
use xanadu_platform::{Platform, PlatformConfig};
use xanadu_sandbox::{PoolConfig, Worker, WorkerPool};
use xanadu_simcore::{SimDuration, SimTime};

/// A pool holding `per_function` warm workers for each of `functions`
/// distinct function names.
fn resident_pool(functions: usize, per_function: usize) -> WorkerPool {
    let mut pool = WorkerPool::new(PoolConfig {
        keep_alive: SimDuration::from_secs(3600),
        max_warm: None,
    });
    for f in 0..functions {
        let name = format!("f{f}");
        for _ in 0..per_function {
            let id = pool.next_worker_id();
            pool.insert(Worker::provisioning(
                id,
                &name,
                IsolationLevel::Container,
                256,
                SimTime::ZERO,
                SimTime::ZERO,
            ));
            pool.mark_ready(id);
        }
    }
    pool
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let mut pool = resident_pool(100, 10);
    let mut now = SimTime::from_secs(1);
    c.bench_function("pool_dispatch_cycle_1k_resident", |b| {
        b.iter(|| {
            // One warm dispatch per chain function: lookup, claim, release.
            let mut served = 0u64;
            for f in 0..10 {
                let name = format!("f{f}");
                let id = pool.find_warm(&name, now).expect("warm worker resident");
                let began = now;
                pool.begin_exec(id, began);
                now += SimDuration::from_millis(1);
                pool.end_exec(id, began, now);
                served += 1;
            }
            std::hint::black_box(served)
        });
    });
}

fn bench_platform_dispatch(c: &mut Criterion) {
    let dag = linear_chain("bench", 10, &FunctionSpec::new("f").service_ms(1000.0)).expect("chain");
    c.bench_function("platform_jit_depth10_1k_resident", |b| {
        b.iter(|| {
            let cfg = PlatformConfig::builder()
                .for_mode(ExecutionMode::Jit, 1)
                .static_prewarm(100) // 100 workers x 10 functions resident
                .pool(PoolConfig {
                    keep_alive: SimDuration::from_secs(3600),
                    max_warm: None,
                })
                .build()
                .expect("valid config");
            let mut p = Platform::new(cfg);
            p.deploy(dag.clone()).expect("deploy");
            p.trigger_at("bench", SimTime::from_secs(600))
                .expect("trigger");
            p.run_until_idle();
            std::hint::black_box(p.finish().results.len())
        });
    });
}

criterion_group!(benches, bench_pool_dispatch, bench_platform_dispatch);
criterion_main!(benches);
