//! Microbenchmark: discrete-event kernel throughput — raw event queue
//! operations, a full platform run of a 10-deep chain request, and the
//! sharded fleet replay that the `kernel-throughput` CI job guards.

use criterion::{criterion_group, criterion_main, Criterion};
use xanadu_chain::{linear_chain, FunctionSpec};
use xanadu_core::speculation::ExecutionMode;
use xanadu_platform::shard::{replay_sharded, ShardOptions, ShardWorkload};
use xanadu_platform::{Platform, PlatformConfig};
use xanadu_simcore::{EventQueue, SimDuration, SimTime};

fn bench_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            std::hint::black_box(sum)
        });
    });
    // Steady-state churn: interleaved push/pop with times marching
    // forward, the access pattern the calendar queue's O(1) buckets are
    // built for (a heap pays O(log n) per op here).
    c.bench_function("event_queue_churn_16k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(64);
            let mut now = 0u64;
            let mut sum = 0u64;
            for i in 0..16_384u64 {
                q.schedule(SimTime::from_micros(now + 1 + (i * 7919) % 5_000), i);
                if i % 2 == 1 {
                    if let Some((t, e)) = q.pop() {
                        now = t.as_micros();
                        sum = sum.wrapping_add(e);
                    }
                }
            }
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            std::hint::black_box(sum)
        });
    });
}

fn bench_platform_request(c: &mut Criterion) {
    let dag = linear_chain("bench", 10, &FunctionSpec::new("f").service_ms(5000.0)).expect("chain");
    c.bench_function("platform_jit_depth10_request", |b| {
        b.iter(|| {
            let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 1));
            p.deploy(dag.clone()).expect("deploy");
            p.trigger_at("bench", SimTime::ZERO).expect("trigger");
            p.run_until_idle();
            std::hint::black_box(p.finish().results.len())
        });
    });
}

fn bench_sharded_replay(c: &mut Criterion) {
    // A miniature of the CI acceptance workload: a fleet of independent
    // linear chains replayed through the sharded engine. Guards the
    // whole event-dispatch hot path (interned trigger events, calendar
    // queue, Vec-indexed run slab) rather than one structure.
    let workloads: Vec<ShardWorkload> = (0..8)
        .map(|i| {
            let name = format!("wf{i}");
            let template = FunctionSpec::new(format!("{name}-f")).service_ms(400.0);
            ShardWorkload {
                dag: linear_chain(&name, 5, &template).expect("chain"),
                triggers: (0..50u64).map(|k| SimTime::from_secs(k * 30 + i)).collect(),
            }
        })
        .collect();
    let config = PlatformConfig::builder()
        .for_mode(ExecutionMode::Jit, 7)
        .record_traces(false)
        .build()
        .expect("valid config");
    c.bench_function("sharded_replay_8wf_400req", |b| {
        b.iter(|| {
            let run = replay_sharded(
                &config,
                workloads.clone(),
                &ShardOptions {
                    threads: 1,
                    window: SimDuration::from_mins(5),
                },
            )
            .expect("replay");
            std::hint::black_box(run.events_processed)
        });
    });
}

criterion_group!(
    benches,
    bench_queue,
    bench_platform_request,
    bench_sharded_replay
);
criterion_main!(benches);
