//! Microbenchmark: discrete-event kernel throughput — raw event queue
//! operations and a full platform run of a 10-deep chain request.

use criterion::{criterion_group, criterion_main, Criterion};
use xanadu_chain::{linear_chain, FunctionSpec};
use xanadu_core::speculation::ExecutionMode;
use xanadu_platform::{Platform, PlatformConfig};
use xanadu_simcore::{EventQueue, SimTime};

fn bench_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            std::hint::black_box(sum)
        });
    });
}

fn bench_platform_request(c: &mut Criterion) {
    let dag = linear_chain("bench", 10, &FunctionSpec::new("f").service_ms(5000.0)).expect("chain");
    c.bench_function("platform_jit_depth10_request", |b| {
        b.iter(|| {
            let mut p = Platform::new(PlatformConfig::for_mode(ExecutionMode::Jit, 1));
            p.deploy(dag.clone()).expect("deploy");
            p.trigger_at("bench", SimTime::ZERO).expect("trigger");
            p.run_until_idle();
            std::hint::black_box(p.finish().results.len())
        });
    });
}

criterion_group!(benches, bench_queue, bench_platform_request);
criterion_main!(benches);
