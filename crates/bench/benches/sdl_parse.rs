//! Microbenchmark: state-definition-language parsing and serialization.

use criterion::{criterion_group, criterion_main, Criterion};
use xanadu_chain::sdl;
use xanadu_chain::{linear_chain, FunctionSpec};

fn document(n: usize) -> String {
    let dag = linear_chain("bench", n, &FunctionSpec::new("f")).expect("chain");
    sdl::to_sdl(&dag)
}

fn bench_sdl(c: &mut Criterion) {
    let small = document(5);
    let large = document(50);
    c.bench_function("sdl_parse_5_functions", |b| {
        b.iter(|| sdl::parse("bench", std::hint::black_box(&small)).expect("parse"));
    });
    c.bench_function("sdl_parse_50_functions", |b| {
        b.iter(|| sdl::parse("bench", std::hint::black_box(&large)).expect("parse"));
    });
    let dag = linear_chain("bench", 20, &FunctionSpec::new("f")).expect("chain");
    c.bench_function("sdl_serialize_20_functions", |b| {
        b.iter(|| sdl::to_sdl(std::hint::black_box(&dag)));
    });
}

criterion_group!(benches, bench_sdl);
criterion_main!(benches);
