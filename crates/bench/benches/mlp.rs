//! Microbenchmark: MLP inference (Algorithm 1) over linear chains and
//! random XOR trees of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xanadu_chain::paths::{enumerate_outcomes, execution_probabilities};
use xanadu_chain::{linear_chain, FunctionSpec};
use xanadu_core::mlp::infer_mlp;
use xanadu_workloads::{random_binary_tree, RandomTreeConfig};

fn bench_mlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_inference");
    for &n in &[5usize, 20, 100] {
        let chain = linear_chain("bench", n, &FunctionSpec::new("f")).expect("chain");
        group.bench_with_input(BenchmarkId::new("linear", n), &chain, |b, dag| {
            b.iter(|| infer_mlp(std::hint::black_box(dag), |_, _| None));
        });
    }
    for &n in &[10usize, 50] {
        let cfg = RandomTreeConfig {
            nodes: n,
            ..Default::default()
        };
        let tree = random_binary_tree(&cfg, 7).expect("tree");
        group.bench_with_input(BenchmarkId::new("xor_tree", n), &tree, |b, dag| {
            b.iter(|| infer_mlp(std::hint::black_box(dag), |_, _| None));
        });
    }
    group.finish();
}

fn bench_paths(c: &mut Criterion) {
    let cfg = RandomTreeConfig {
        nodes: 10,
        ..Default::default()
    };
    let tree = random_binary_tree(&cfg, 3).expect("tree");
    c.bench_function("enumerate_outcomes_10_node_tree", |b| {
        b.iter(|| enumerate_outcomes(std::hint::black_box(&tree), 10_000));
    });
    c.bench_function("execution_probabilities_10_node_tree", |b| {
        b.iter(|| execution_probabilities(std::hint::black_box(&tree)));
    });
}

criterion_group!(benches, bench_mlp, bench_paths);
criterion_main!(benches);
