//! Microbenchmark: branch-detector updates (Algorithm 3) and probability
//! queries under a fanout of learned children.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xanadu_profiler::BranchDetector;

fn bench_detector(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_detector");
    for &fanout in &[2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("observe", fanout),
            &fanout,
            |b, &fanout| {
                let mut d = BranchDetector::new();
                let children: Vec<String> = (0..fanout).map(|i| format!("child{i}")).collect();
                let mut i = 0usize;
                b.iter(|| {
                    d.observe_request("parent", None);
                    d.observe_request(&children[i % fanout], Some("parent"));
                    i += 1;
                });
            },
        );
    }
    // Query path: sorted children of a well-populated parent.
    let mut d = BranchDetector::new();
    for i in 0..10_000 {
        d.observe_request("p", None);
        d.observe_request(&format!("c{}", i % 16), Some("p"));
    }
    group.bench_function("children_query_fanout16", |b| {
        b.iter(|| d.children(std::hint::black_box("p")));
    });
    group.finish();
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
