//! Microbenchmark: JIT deployment-plan generation (Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xanadu_chain::{linear_chain, FunctionSpec};
use xanadu_core::estimate::{NodeEstimate, StaticEstimates};
use xanadu_core::jit::plan_jit;
use xanadu_core::mlp::infer_mlp;

fn bench_planner(c: &mut Criterion) {
    let est = StaticEstimates::uniform(NodeEstimate {
        cold_start_ms: 3000.0,
        startup_ms: 3000.0,
        warm_runtime_ms: 500.0,
    });
    let mut group = c.benchmark_group("jit_plan");
    for &n in &[5usize, 20, 100] {
        let dag = linear_chain("bench", n, &FunctionSpec::new("f")).expect("chain");
        let mlp = infer_mlp(&dag, |_, _| None);
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| {
                plan_jit(
                    std::hint::black_box(&dag),
                    std::hint::black_box(&mlp.path),
                    &est,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
