//! Shared experiment infrastructure.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use xanadu_chain::{linear_chain, FunctionSpec, WorkflowDag};
use xanadu_core::speculation::ExecutionMode;
use xanadu_platform::export::{audit_json_string, chrome_trace_string, metrics_json_string};
use xanadu_platform::timeline::Trace;
use xanadu_platform::{Audit, FaultConfig, Platform, PlatformConfig, RequestAudit, RunResult};
use xanadu_simcore::report::fmt_f64;
use xanadu_simcore::{SimDuration, SimTime};

thread_local! {
    /// Worker-thread fan-out width for this thread and its descendants.
    ///
    /// Thread-local (rather than a process global) so parallel test
    /// binaries can exercise different `--jobs` values concurrently
    /// without interfering with each other.
    static JOBS: Cell<usize> = const { Cell::new(1) };
}

/// Sets the fan-out width used by [`run_indexed`] (and therefore by
/// [`cold_runs`] and `experiments::all`) on this thread. Values below 1
/// are clamped to 1 (serial).
pub fn set_jobs(n: usize) {
    JOBS.with(|j| j.set(n.max(1)));
}

/// The fan-out width currently in effect on this thread.
pub fn jobs() -> usize {
    JOBS.with(|j| j.get())
}

/// Runs `f(0..count)` across up to [`jobs`] scoped threads and returns the
/// results **in index order**, so output is byte-identical to a serial
/// run. Each worker inherits the caller's [`jobs`] setting. Falls back to
/// a plain serial loop when `jobs() == 1` or there is only one item.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let width = jobs().min(count.max(1));
    if width <= 1 {
        return (0..count).map(f).collect();
    }
    let inherited = jobs();
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..width)
            .map(|_| {
                s.spawn(|| {
                    set_jobs(inherited);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("harness worker panicked"))
            .collect()
    });
    let mut all: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, t)| t).collect()
}

/// One paper-claim-versus-measured comparison.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What the paper reports.
    pub claim: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the reproduction preserves the claim's shape.
    pub holds: bool,
}

impl Finding {
    /// Creates a finding.
    pub fn new(claim: impl Into<String>, measured: impl Into<String>, holds: bool) -> Self {
        Finding {
            claim: claim.into(),
            measured: measured.into(),
            holds,
        }
    }
}

/// One regenerated experiment: rendered output plus claim checks.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Short id (`fig12`, `tab1`, `abl-aggr`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered tables/series.
    pub output: String,
    /// Paper-vs-measured comparisons.
    pub findings: Vec<Finding>,
    /// Speculation audit of the experiment's primary Xanadu run (`None`
    /// when the experiment has no single representative workload).
    /// `xanadu-repro` writes these behind `--audit-out` and records their
    /// summary rows in `BENCH_harness.json`.
    pub audit: Option<Audit>,
}

impl Experiment {
    /// Renders the experiment as a markdown section.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n{}\n", self.id, self.title, self.output);
        if !self.findings.is_empty() {
            out.push_str("\n### Paper vs. measured\n\n");
            out.push_str("| paper claim | measured | holds |\n|---|---|---|\n");
            for f in &self.findings {
                out.push_str(&format!(
                    "| {} | {} | {} |\n",
                    f.claim,
                    f.measured,
                    if f.holds { "yes" } else { "NO" }
                ));
            }
        }
        out
    }

    /// Whether every finding holds.
    pub fn all_hold(&self) -> bool {
        self.findings.iter().all(|f| f.holds)
    }
}

/// Builds a Xanadu platform in the given execution mode.
pub fn xanadu(mode: ExecutionMode, seed: u64) -> Platform {
    Platform::new(PlatformConfig::for_mode(mode, seed))
}

/// Runs `triggers` independent cold-condition requests of `dag`: each
/// trigger gets a *fresh* platform (no warm state carries over), matching
/// the paper's "requests in cold start condition" methodology (§5.1).
///
/// `make(seed)` constructs the platform; seeds are distinct per trigger.
///
/// Triggers are independent (each gets a fresh platform and its own seed),
/// so they fan out across [`jobs`] threads; results are collected in
/// trigger order, keeping the output byte-identical to a serial run.
pub fn cold_runs(
    make: &(dyn Fn(u64) -> Platform + Sync),
    dag: &WorkflowDag,
    triggers: u64,
    implicit: bool,
) -> Vec<RunResult> {
    cold_runs_seeded(make, dag, triggers, implicit, 1000)
}

/// [`cold_runs`] with an explicit seed base: trigger `i` uses seed
/// `seed_base + i`. Experiments whose claims depend on a specific mix of
/// branch draws (e.g. Table 1's repeated-miss worst case) pick a base
/// whose window contains that mix.
pub fn cold_runs_seeded(
    make: &(dyn Fn(u64) -> Platform + Sync),
    dag: &WorkflowDag,
    triggers: u64,
    implicit: bool,
    seed_base: u64,
) -> Vec<RunResult> {
    audited_cold_runs_seeded(make, dag, triggers, implicit, seed_base).0
}

/// [`cold_runs`] that also returns the speculation [`Audit`] of the
/// triggers. Per-request audits are re-keyed by *trigger index* (each
/// fresh platform numbers its own requests from zero), so the audit is
/// byte-identical across [`jobs`] widths.
pub fn audited_cold_runs(
    make: &(dyn Fn(u64) -> Platform + Sync),
    dag: &WorkflowDag,
    triggers: u64,
    implicit: bool,
) -> (Vec<RunResult>, Audit) {
    audited_cold_runs_seeded(make, dag, triggers, implicit, 1000)
}

/// [`audited_cold_runs`] with an explicit seed base.
pub fn audited_cold_runs_seeded(
    make: &(dyn Fn(u64) -> Platform + Sync),
    dag: &WorkflowDag,
    triggers: u64,
    implicit: bool,
    seed_base: u64,
) -> (Vec<RunResult>, Audit) {
    let per_trigger: Vec<(Vec<RunResult>, Vec<RequestAudit>)> =
        run_indexed(triggers as usize, |i| {
            let mut p = make(seed_base + i as u64);
            if implicit {
                p.deploy_implicit(dag.clone()).expect("deploy");
            } else {
                p.deploy(dag.clone()).expect("deploy");
            }
            p.trigger_at(dag.name(), SimTime::ZERO).expect("trigger");
            p.run_until_idle();
            let audits: Vec<RequestAudit> = p
                .results()
                .iter()
                .filter_map(|r| {
                    p.trace(r.request)
                        .and_then(|t| RequestAudit::from_trace(i as u64, t))
                })
                .collect();
            (p.finish().results, audits)
        });
    let mut runs = Vec::new();
    let mut audits = Vec::new();
    for (r, a) in per_trigger {
        runs.extend(r);
        audits.extend(a);
    }
    (runs, Audit::from_requests(audits))
}

/// Builds the speculation [`Audit`] of every request a platform has
/// completed so far, in request-id order.
pub fn audit_platform(platform: &Platform) -> Audit {
    let traces: Vec<(u64, Trace)> = platform
        .results()
        .iter()
        .filter_map(|r| platform.trace(r.request).map(|t| (r.request, t.clone())))
        .collect();
    Audit::from_traces(&traces)
}

/// Runs a learning sequence on a *single* platform: `warmup` unmeasured
/// triggers followed by `measure` measured ones, all spaced `gap` apart
/// (choose `gap` larger than keep-alive to keep every request cold-
/// conditioned while the learned model persists).
pub fn learned_runs(
    platform: &mut Platform,
    workflow: &str,
    warmup: u64,
    measure: u64,
    gap: SimDuration,
) -> Vec<RunResult> {
    let mut t = SimTime::ZERO;
    for _ in 0..warmup {
        platform.trigger_at(workflow, t).expect("trigger");
        platform.run_until_idle();
        platform.roll_profile_window();
        t += gap;
    }
    let before = platform.results().len();
    for _ in 0..measure {
        platform.trigger_at(workflow, t).expect("trigger");
        platform.run_until_idle();
        platform.roll_profile_window();
        t += gap;
    }
    platform.results()[before..].to_vec()
}

/// [`learned_runs`] that also returns the speculation [`Audit`] of the
/// *measured* tail (warmup triggers are excluded from the audit exactly as
/// they are excluded from the returned results).
pub fn audited_learned_runs(
    platform: &mut Platform,
    workflow: &str,
    warmup: u64,
    measure: u64,
    gap: SimDuration,
) -> (Vec<RunResult>, Audit) {
    let runs = learned_runs(platform, workflow, warmup, measure, gap);
    let traces: Vec<(u64, Trace)> = runs
        .iter()
        .filter_map(|r| platform.trace(r.request).map(|t| (r.request, t.clone())))
        .collect();
    let audit = Audit::from_traces(&traces);
    (runs, audit)
}

/// Runs the standard observability workload — a depth-4 JIT chain under
/// heavy deterministic fault injection, metrics registry attached — and
/// returns the two export documents as `(chrome_trace, metrics_json)`
/// strings.
///
/// The probe is the harness-side consumer of the platform's exporters:
/// `xanadu-repro --trace-out/--metrics-out` writes exactly these strings,
/// and the determinism suite asserts they are byte-identical across
/// `--jobs` widths and plan-cache settings for the same seed.
pub fn observability_probe(seed: u64, plan_cache: bool) -> (String, String) {
    let (platform, requests, metrics) = probe_run(seed, plan_cache);
    let traces: Vec<(u64, Trace)> = requests
        .iter()
        .filter_map(|&id| platform.trace(id).map(|t| (id, t.clone())))
        .collect();
    (chrome_trace_string(&traces), metrics)
}

/// The audit JSON of the same workload [`observability_probe`] runs: the
/// chaos chain pushed through the analysis tier. Byte-identical across
/// `--jobs` widths and plan-cache settings for the same seed, like the
/// other two exports.
pub fn observability_audit(seed: u64, plan_cache: bool) -> String {
    let (platform, requests, _) = probe_run(seed, plan_cache);
    let traces: Vec<(u64, Trace)> = requests
        .iter()
        .filter_map(|&id| platform.trace(id).map(|t| (id, t.clone())))
        .collect();
    audit_json_string(&Audit::from_traces(&traces))
}

/// Runs the standard probe workload and returns the platform (traces
/// intact), the request ids in trigger order, and the rendered metrics
/// snapshot.
fn probe_run(seed: u64, plan_cache: bool) -> (Platform, Vec<u64>, String) {
    let dag =
        linear_chain("probe", 4, &FunctionSpec::new("f").service_ms(1200.0)).expect("valid chain");
    let config = PlatformConfig::builder()
        .for_mode(ExecutionMode::Jit, seed)
        .plan_cache(plan_cache)
        .faults(FaultConfig::with_rate(0.8, 0xB0B + seed))
        .build()
        .expect("valid config");
    let mut platform = Platform::new(config);
    let registry = platform.attach_metrics();
    platform.deploy(dag).expect("deploy");
    let mut requests = Vec::new();
    for i in 0..4u64 {
        let id = platform
            .trigger_at("probe", SimTime::from_secs(i * 90))
            .expect("trigger");
        requests.push(id);
    }
    platform.run_until_idle();
    let metrics = metrics_json_string(&registry.snapshot());
    (platform, requests, metrics)
}

/// Arithmetic mean of an iterator (0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Mean latency overhead in milliseconds across runs.
pub fn mean_overhead_ms(runs: &[RunResult]) -> f64 {
    mean(runs.iter().map(|r| r.overhead.as_millis_f64()))
}

/// Mean end-to-end latency in milliseconds across runs.
pub fn mean_end_to_end_ms(runs: &[RunResult]) -> f64 {
    mean(runs.iter().map(|r| r.end_to_end.as_millis_f64()))
}

/// Formats milliseconds as seconds with two decimals (`"7.62"`).
pub fn ms_as_s(ms: f64) -> String {
    fmt_f64(ms / 1000.0, 2)
}

/// Checks that `measured` is within `[lo, hi]` and renders the comparison.
pub fn within(measured: f64, lo: f64, hi: f64) -> bool {
    measured >= lo && measured <= hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use xanadu_chain::{linear_chain, FunctionSpec};

    #[test]
    fn cold_runs_are_independent() {
        let dag = linear_chain("c", 2, &FunctionSpec::new("f").service_ms(100.0)).unwrap();
        let runs = cold_runs(&|seed| xanadu(ExecutionMode::Cold, seed), &dag, 3, false);
        assert_eq!(runs.len(), 3);
        // All cold: warm reuse impossible across fresh platforms.
        assert!(runs.iter().all(|r| r.warm_starts == 0));
        assert!(runs.iter().all(|r| r.cold_starts == 2));
    }

    #[test]
    fn learned_runs_measures_only_tail() {
        let dag = linear_chain("c", 2, &FunctionSpec::new("f").service_ms(100.0)).unwrap();
        let mut p = xanadu(ExecutionMode::Speculative, 3);
        p.deploy_implicit(dag).unwrap();
        let measured = learned_runs(&mut p, "c", 2, 3, SimDuration::from_mins(20));
        assert_eq!(measured.len(), 3);
    }

    #[test]
    fn mean_helpers() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty::<f64>()), 0.0);
        assert_eq!(ms_as_s(7620.0), "7.62");
        assert!(within(5.0, 4.0, 6.0));
        assert!(!within(7.0, 4.0, 6.0));
    }

    #[test]
    fn experiment_render_contains_findings() {
        let e = Experiment {
            id: "x",
            title: "t",
            output: "body".into(),
            findings: vec![Finding::new("a", "b", true)],
            audit: None,
        };
        let r = e.render();
        assert!(r.contains("# x — t"));
        assert!(r.contains("| a | b | yes |"));
        assert!(e.all_hold());
    }

    #[test]
    fn observability_probe_exports_are_populated_and_deterministic() {
        let (trace, metrics) = observability_probe(7, true);
        assert!(trace.contains("traceEvents"), "{trace}");
        assert!(metrics.contains("counters"), "{metrics}");
        assert!(metrics.contains("requests.completed"), "{metrics}");
        // Same seed, plan cache off: byte-identical exports.
        let (trace_nc, metrics_nc) = observability_probe(7, false);
        assert_eq!(trace, trace_nc, "plan cache changed the trace export");
        assert_eq!(metrics, metrics_nc, "plan cache changed the metrics export");
        // Probes fanned out across threads match the serial run.
        let probes = |width: usize| {
            set_jobs(width);
            let out = run_indexed(3, |i| observability_probe(100 + i as u64, true));
            set_jobs(1);
            out
        };
        assert_eq!(
            probes(1),
            probes(8),
            "exports diverged across --jobs widths"
        );
    }

    /// The fan-out contract of the repro harness: the same seed renders
    /// byte-identical experiment reports no matter the `--jobs` width,
    /// because each trigger owns an independent platform and results are
    /// collected in index order.
    #[test]
    fn jobs_width_does_not_change_rendered_output() {
        let render_with = |width: usize| {
            set_jobs(width);
            let out = (
                crate::experiments::fig1::run().render(),
                crate::experiments::fig4::run().render(),
            );
            set_jobs(1);
            out
        };
        let serial = render_with(1);
        let parallel = render_with(8);
        assert_eq!(serial.0, parallel.0, "fig1 diverged across --jobs widths");
        assert_eq!(serial.1, parallel.1, "fig4 diverged across --jobs widths");
    }
}
