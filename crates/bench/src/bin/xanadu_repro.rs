//! `xanadu-repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! xanadu-repro all            # every experiment (markdown to stdout)
//! xanadu-repro fig12 tab1    # a subset
//! xanadu-repro --list        # known experiment ids
//! ```

use std::process::ExitCode;
use xanadu_bench::experiments::{run_by_id, ALL_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: xanadu-repro [--list] <experiment-id>... | all");
        eprintln!("known ids: {}", ALL_IDS.join(", "));
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut all_hold = true;
    for arg in &args {
        match run_by_id(arg) {
            None => {
                eprintln!("unknown experiment id `{arg}` (try --list)");
                return ExitCode::FAILURE;
            }
            Some(experiments) => {
                for e in experiments {
                    println!("{}", e.render());
                    all_hold &= e.all_hold();
                }
            }
        }
    }
    if all_hold {
        ExitCode::SUCCESS
    } else {
        eprintln!("some findings did NOT hold — see the tables above");
        ExitCode::FAILURE
    }
}
